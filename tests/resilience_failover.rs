//! End-to-end fault tolerance: kill-a-rank recovery, elastic shrink→grow
//! round-trips, and post-failure communicator equivalence.

use dynmo::core::recovery::{
    run_elastic_rescale, run_resilient, ElasticRescaleConfig, RecoveryConfig,
    ResilientTrainingConfig, WorkloadConfig,
};
use dynmo::runtime::collectives::ReduceOp;
use dynmo::runtime::{launch, FaultPlan, Payload, RuntimeError};

fn recovery(interval: u64) -> RecoveryConfig {
    RecoveryConfig {
        checkpoint_interval: interval,
        ..RecoveryConfig::default()
    }
}

fn config(world: usize, iterations: u64, plan: FaultPlan) -> ResilientTrainingConfig {
    ResilientTrainingConfig {
        world_size: world,
        iterations,
        workload: WorkloadConfig::small(world * 4, 7),
        fault_plan: plan,
        recovery: recovery(15),
    }
}

/// The acceptance-criteria test: with a `FaultPlan` killing one rank
/// mid-training, the job recovers from the last checkpoint on the surviving
/// world, completes, and its final loss/imbalance metrics match a
/// failure-free run of the same seed within tolerance.
#[test]
fn killed_rank_recovers_and_matches_the_failure_free_run() {
    let iterations = 70;
    let clean = run_resilient(&config(4, iterations, FaultPlan::none())).unwrap();
    let faulty = run_resilient(&config(4, iterations, FaultPlan::none().kill(2, 37))).unwrap();

    // The job completed on the surviving world.
    assert_eq!(faulty.iterations, iterations);
    assert_eq!(faulty.initial_world_size, 4);
    assert_eq!(faulty.final_world_size, 3);
    assert_eq!(faulty.recoveries.len(), 1);
    let recovery_event = &faulty.recoveries[0];
    assert_eq!(recovery_event.failed_ranks, vec![2]);
    assert_eq!(recovery_event.resumed_from, 30);
    assert!(recovery_event.replayed >= 7);
    assert!(recovery_event.cost > 0.0);

    // Deterministic replay: the final trainer state is *identical* to the
    // uninterrupted run, so the loss agrees to floating-point-sum-order
    // tolerance and the per-layer state hashes to the same value.
    assert_eq!(faulty.weights_checksum, clean.weights_checksum);
    let loss_drift = (faulty.final_loss - clean.final_loss).abs() / clean.final_loss.max(1e-12);
    assert!(loss_drift < 1e-3, "loss drift {loss_drift}");

    // Imbalance stays comparable even though the survivor world has one
    // fewer stage (the balancer re-planned for it).
    assert!(faulty.final_imbalance.is_finite());
    assert!(
        faulty.final_imbalance < clean.final_imbalance + 0.25,
        "recovered imbalance {} vs clean {}",
        faulty.final_imbalance,
        clean.final_imbalance
    );

    // The recovery shows up in the overhead accounting and fleet ledger.
    assert!(faulty.overhead.recovery > clean.overhead.recovery);
    assert!(faulty.replayed_iterations >= 7);
    assert_eq!(faulty.fleet_events.len(), 1);
    assert_eq!(faulty.fleet_events[0].delta, 1);
}

/// Elastic shrink→grow round-trips the world size with layer-assignment
/// conservation intact (the second acceptance criterion).
#[test]
fn elastic_shrink_grow_round_trips_world_size_with_conservation() {
    let workload = WorkloadConfig::small(16, 23);
    let report = run_elastic_rescale(&ElasticRescaleConfig {
        world_size: 4,
        iterations: 48,
        workload,
        shrink_at: 16,
        shrink_to: 2,
        grow_at: 32,
        recovery: recovery(8),
    })
    .unwrap();

    assert_eq!(report.phase_world_sizes, vec![4, 2, 4]);
    assert!(report.layers_conserved, "a layer was lost or duplicated");
    // Fleet round trip: +2 released at shrink, -2 re-acquired at grow.
    assert_eq!(report.fleet_events.len(), 2);
    assert_eq!(report.fleet_events[0].delta, 2);
    assert_eq!(report.fleet_events[1].delta, -2);
    assert_eq!(report.fleet_events[1].allocated_after, 4);
    assert!(report.average_allocated > 2.0 && report.average_allocated < 4.0);

    // Re-scaling must not change the training trajectory at all.
    let static_run = run_resilient(&ResilientTrainingConfig {
        world_size: 4,
        iterations: 48,
        workload,
        fault_plan: FaultPlan::none(),
        recovery: recovery(8),
    })
    .unwrap();
    assert_eq!(report.weights_checksum, static_run.weights_checksum);
}

/// Collectives on a post-failure rebuilt communicator agree with a fresh
/// communicator over the same survivor set (the third acceptance
/// criterion): same results, bit for bit, for allreduce and allgather.
#[test]
fn post_failure_communicator_agrees_with_a_fresh_survivor_communicator() {
    let contribution = |global_rank: usize| -> Vec<f32> {
        vec![
            global_rank as f32 + 0.5,
            (global_rank as f32 + 1.0) * 0.25,
            1.0 / (global_rank as f32 + 2.0),
        ]
    };

    // Run 1: four ranks, rank 1 dies, survivors {0, 2, 3} rebuild and run
    // the collectives on the rebuilt communicator.
    let rebuilt_results = launch(4, |ctx| {
        let world = ctx.world();
        if ctx.rank() == 1 {
            ctx.fabric().detector().mark_failed(1);
            return None;
        }
        // Force the failure to surface the way it does in training: a
        // poisoned world collective.
        let err = world
            .allreduce_sum_f32(&contribution(ctx.rank()))
            .unwrap_err();
        assert_eq!(err, RuntimeError::RankFailed { rank: 1 });
        let comm = world.rebuild_survivors().unwrap().unwrap();
        assert_eq!(comm.members(), &[0, 2, 3]);
        let my = contribution(ctx.rank());
        let sum = comm.allreduce_sum_f32(&my).unwrap();
        let max = comm.allreduce_f32(&my, ReduceOp::Max).unwrap();
        let gathered: Vec<Vec<f32>> = comm
            .allgather(Payload::F32(my))
            .unwrap()
            .into_iter()
            .map(|p| p.into_f32().unwrap())
            .collect();
        Some((sum, max, gathered))
    })
    .unwrap();

    // Run 2: a fresh three-rank job whose ranks stand in for the survivors
    // {0, 2, 3}, contributing the same values.
    let survivor_globals = [0usize, 2, 3];
    let fresh_results = launch(3, move |ctx| {
        let comm = ctx.world();
        let my = contribution(survivor_globals[ctx.rank()]);
        let sum = comm.allreduce_sum_f32(&my).unwrap();
        let max = comm.allreduce_f32(&my, ReduceOp::Max).unwrap();
        let gathered: Vec<Vec<f32>> = comm
            .allgather(Payload::F32(my))
            .unwrap()
            .into_iter()
            .map(|p| p.into_f32().unwrap())
            .collect();
        (sum, max, gathered)
    })
    .unwrap();

    // Survivor i of the rebuilt world corresponds to fresh rank i.
    let rebuilt: Vec<_> = rebuilt_results.into_iter().flatten().collect();
    assert_eq!(rebuilt.len(), 3);
    for (from_rebuilt, from_fresh) in rebuilt.iter().zip(fresh_results.iter()) {
        assert_eq!(from_rebuilt, from_fresh);
    }
}

/// A failure striking in the middle of the *shrunken* world still recovers
/// (resilience composes with smaller worlds).
#[test]
fn failure_on_a_small_world_still_recovers() {
    let report = run_resilient(&config(3, 50, FaultPlan::none().kill(0, 21))).unwrap();
    assert_eq!(report.final_world_size, 2);
    assert_eq!(report.recoveries.len(), 1);
    let clean = run_resilient(&config(3, 50, FaultPlan::none())).unwrap();
    assert_eq!(report.weights_checksum, clean.weights_checksum);
}
