//! Integration tests for the distributed pieces: Algorithm 1 over the
//! simulated runtime, layer migration between ranks, and the communicator
//! split used to release GPUs after re-packing.

use dynmo::core::migration::MigrationPlan;
use dynmo::core::repack::{plan_repack, RepackConfig};
use dynmo::dynamics::distributed_global_prune;
use dynmo::pipeline::{LayerLoad, StageAssignment};
use dynmo::runtime::{launch, Payload};
use dynmo::sparse::prune_to_sparsity;

fn synthetic_shards(ranks: usize, per_rank: usize) -> Vec<Vec<f32>> {
    (0..ranks)
        .map(|r| {
            (0..per_rank)
                .map(|i| {
                    let x = ((r * per_rank + i) as f32 * 37.0 + 11.0).sin();
                    x * (1.0 + r as f32 * 0.3)
                })
                .collect()
        })
        .collect()
}

#[test]
fn algorithm1_matches_single_process_pruning_at_multiple_sparsities() {
    for &(ranks, sparsity) in &[(2usize, 0.5f64), (4, 0.9), (8, 0.79)] {
        let shards = synthetic_shards(ranks, 64);
        let shards_for_ranks = shards.clone();
        let results = launch(ranks, move |ctx| {
            let comm = ctx.world();
            distributed_global_prune(&comm, &shards_for_ranks[ctx.rank()], sparsity).unwrap()
        })
        .unwrap();

        // Reference: prune the concatenation in one process.
        let mut concat: Vec<f32> = shards.iter().flatten().copied().collect();
        prune_to_sparsity(&mut concat, sparsity);
        let mut offset = 0;
        for (rank, shard) in shards.iter().enumerate() {
            let expected = &concat[offset..offset + shard.len()];
            assert_eq!(
                results[rank], expected,
                "rank {rank} mismatch at sparsity {sparsity} with {ranks} ranks"
            );
            offset += shard.len();
        }
    }
}

#[test]
fn migration_plan_executes_over_the_runtime_and_preserves_layer_data() {
    // 6 layers over 3 stages; a rebalance moves the boundary layers.
    let loads: Vec<LayerLoad> = (0..6)
        .map(|i| LayerLoad {
            layer_id: i,
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 100,
            static_bytes: 64,
            activation_bytes: 0,
            migration_bytes: 64,
        })
        .collect();
    let from = StageAssignment::uniform(6, 3);
    let mut to = from.clone();
    to.move_layer(2, 2).unwrap();
    to.move_layer(3, 0).unwrap();
    let plan = MigrationPlan::between(&from, &to, &loads);
    assert_eq!(plan.num_moves(), 2);

    let results = launch(3, move |ctx| {
        let comm = ctx.world();
        // Each stage serves its layers' "weights" as a recognizable pattern.
        let data = |layer: usize| vec![layer as f32 * 10.0; 8];
        plan.execute(&comm, ctx.rank(), &data).unwrap()
    })
    .unwrap();

    // Stage 2 received layer 2's weights; stage 0 received layer 3's.
    assert_eq!(results[2], vec![(2, vec![20.0; 8])]);
    assert_eq!(results[0], vec![(3, vec![30.0; 8])]);
    assert!(results[1].is_empty());
}

#[test]
fn repack_then_comm_split_releases_idle_ranks() {
    // Plan a re-pack on 4 workers whose load fits on 2, then enact the
    // paper's §3.4.2 release protocol: split the world communicator into an
    // active sub-communicator and let the idle ranks drop out.
    let loads: Vec<LayerLoad> = (0..8)
        .map(|i| LayerLoad {
            layer_id: i,
            fwd_time: 0.5,
            bwd_time: 1.0,
            param_count: 10,
            static_bytes: 100,
            activation_bytes: 0,
            migration_bytes: 100,
        })
        .collect();
    let assignment = StageAssignment::uniform(8, 4);
    let plan = plan_repack(
        &assignment,
        &loads,
        &[1; 4],
        &RepackConfig {
            max_memory: 450,
            target_num_workers: 1,
            utilization_cap: 1.0,
        },
    );
    assert_eq!(plan.active_workers.len(), 2);
    let active = plan.active_workers.clone();

    let results = launch(4, move |ctx| {
        let comm = ctx.world();
        let sub = comm.split_subset(&active).unwrap();
        match sub {
            Some(active_comm) => {
                // Active ranks keep working: a barrier and a reduction on the
                // new communicator must involve only the active ranks.
                active_comm.barrier().unwrap();
                let sum = active_comm.allreduce_sum_f32(&[1.0]).unwrap()[0];
                Some((active_comm.size(), sum as usize))
            }
            None => {
                // Idle ranks are released; they simply stop participating.
                None
            }
        }
    })
    .unwrap();

    let active_results: Vec<_> = results.iter().flatten().collect();
    assert_eq!(active_results.len(), 2);
    for (size, sum) in active_results {
        assert_eq!(*size, 2);
        assert_eq!(*sum, 2);
    }
}

#[test]
fn gather_scatter_pattern_handles_unequal_shard_sizes() {
    // The paper implements Algorithm 1's gather/scatter with P2P because
    // per-rank sizes differ; verify the collective handles ragged payloads.
    let results = launch(4, |ctx| {
        let comm = ctx.world();
        let mine: Vec<f32> = vec![ctx.rank() as f32; ctx.rank() + 1];
        let gathered = comm.gather(0, Payload::F32(mine)).unwrap();
        if ctx.rank() == 0 {
            let sizes: Vec<usize> = gathered
                .unwrap()
                .into_iter()
                .map(|p| p.into_f32().unwrap().len())
                .collect();
            Some(sizes)
        } else {
            None
        }
    })
    .unwrap();
    assert_eq!(results[0], Some(vec![1, 2, 3, 4]));
}
