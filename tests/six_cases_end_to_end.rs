//! Integration tests spanning every crate: run the end-to-end trainer for
//! each of the paper's six dynamic-model cases, with a static baseline and
//! with DynMo, and check the qualitative claims of the paper hold:
//! DynMo never loses to the static baseline, reduces the measured imbalance,
//! and keeps its overhead in the low single-digit percent range.

use dynmo::baselines::static_controller;
use dynmo::core::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{
    AttentionMode, DynamismEngine, EarlyExitEngine, EarlyExitMethod, FreezingEngine,
    FreezingPolicy, GradualPruningEngine, MixtureOfDepthsEngine, ModConfig, MoeEngine,
    PruningSchedule, RebalanceFrequency, RoutingStrategy, SparseAttentionEngine,
};
use dynmo::model::{ClusterConfig, Model, ModelPreset};

const ITERATIONS: u64 = 250;
const STAGES: usize = 8;

fn gpt(layers: usize) -> Model {
    Model::from_preset(ModelPreset::Gpt { layers })
}

fn trainer_config() -> TrainerConfig {
    TrainerConfig::paper_defaults(ClusterConfig::single_node(STAGES), ITERATIONS)
}

fn run_static(model: &Model, engine: &mut dyn DynamismEngine) -> TrainingReport {
    let mut trainer = Trainer::new(model.clone(), trainer_config(), static_controller());
    trainer.run(engine)
}

fn run_dynmo(
    model: &Model,
    engine: &mut dyn DynamismEngine,
    diffusion: bool,
    frequency: Option<RebalanceFrequency>,
) -> TrainingReport {
    let policy = RebalancePolicy {
        enabled: true,
        frequency,
        repack: None,
    };
    let controller = if diffusion {
        RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            policy,
        )
    } else {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            policy,
        )
    };
    let mut trainer = Trainer::new(model.clone(), trainer_config(), controller);
    trainer.run(engine)
}

/// DynMo must not lose to the static baseline by more than noise, and the
/// balancing overhead must stay within the paper's single-digit-percent
/// claim.
fn assert_dynmo_sane(case: &str, dynmo: &TrainingReport, baseline: &TrainingReport) {
    assert!(
        dynmo.tokens_per_second >= baseline.tokens_per_second * 0.97,
        "{case}: DynMo ({:.0} tok/s) lost to static ({:.0} tok/s)",
        dynmo.tokens_per_second,
        baseline.tokens_per_second
    );
    assert!(
        dynmo.overhead_fraction < 0.15,
        "{case}: overhead fraction {} too high",
        dynmo.overhead_fraction
    );
    assert!(dynmo.rebalance_events > 0, "{case}: DynMo never rebalanced");
    assert_eq!(baseline.rebalance_events, 0);
}

#[test]
fn moe_case_partition_balancer() {
    let model = Model::from_preset(ModelPreset::Mixtral8x7b);
    let mut static_engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 3);
    let mut dynmo_engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 3);
    let baseline = run_static(&model, &mut static_engine);
    let dynmo = run_dynmo(&model, &mut dynmo_engine, false, None);
    assert_dynmo_sane("moe", &dynmo, &baseline);
    assert!(dynmo.mean_imbalance <= baseline.mean_imbalance + 1e-9);
}

#[test]
fn pruning_case_diffusion_balancer() {
    let model = gpt(32);
    let schedule = PruningSchedule {
        initial_sparsity: 0.0,
        final_sparsity: 0.9,
        start_iteration: 50,
        frequency: 40,
        num_steps: 4,
    };
    let mut static_engine = GradualPruningEngine::new(&model, schedule, 5);
    let mut dynmo_engine = GradualPruningEngine::new(&model, schedule, 5);
    let baseline = run_static(&model, &mut static_engine);
    let dynmo = run_dynmo(
        &model,
        &mut dynmo_engine,
        true,
        Some(RebalanceFrequency::EveryN(40)),
    );
    assert_dynmo_sane("pruning", &dynmo, &baseline);
    // Once pruning has created imbalance, DynMo's speedup must be visible.
    assert!(
        dynmo.tokens_per_second > baseline.tokens_per_second * 1.05,
        "pruning: expected a clear win, got {:.0} vs {:.0}",
        dynmo.tokens_per_second,
        baseline.tokens_per_second
    );
}

#[test]
fn freezing_case_partition_balancer() {
    let model = gpt(32);
    let policy = FreezingPolicy {
        check_interval: 20,
        first_freeze_iteration: 30,
        stagger_per_layer: 6,
        never_freeze_fraction: 0.25,
        jitter: 0.1,
    };
    let mut static_engine = FreezingEngine::new(&model, policy, 9);
    let mut dynmo_engine = FreezingEngine::new(&model, policy, 9);
    let baseline = run_static(&model, &mut static_engine);
    let dynmo = run_dynmo(
        &model,
        &mut dynmo_engine,
        false,
        Some(RebalanceFrequency::EveryN(20)),
    );
    assert_dynmo_sane("freezing", &dynmo, &baseline);
    assert!(dynmo.tokens_per_second > baseline.tokens_per_second * 1.05);
}

#[test]
fn sparse_attention_case_partition_balancer() {
    let model = gpt(32);
    let mut static_engine = SparseAttentionEngine::new(&model, AttentionMode::DynamicSparse, 13);
    let mut dynmo_engine = SparseAttentionEngine::new(&model, AttentionMode::DynamicSparse, 13);
    let baseline = run_static(&model, &mut static_engine);
    let dynmo = run_dynmo(&model, &mut dynmo_engine, false, None);
    assert_dynmo_sane("sparse-attention", &dynmo, &baseline);
    assert!(dynmo.mean_imbalance < baseline.mean_imbalance);
}

#[test]
fn early_exit_case_both_balancers_agree() {
    let model = gpt(32);
    let mut static_engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 17);
    let baseline = run_static(&model, &mut static_engine);

    let mut partition_engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 17);
    let partition = run_dynmo(
        &model,
        &mut partition_engine,
        false,
        Some(RebalanceFrequency::EveryN(50)),
    );
    let mut diffusion_engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 17);
    let diffusion = run_dynmo(
        &model,
        &mut diffusion_engine,
        true,
        Some(RebalanceFrequency::EveryN(50)),
    );

    assert_dynmo_sane("early-exit/partition", &partition, &baseline);
    assert_dynmo_sane("early-exit/diffusion", &diffusion, &baseline);
    // The paper: both balancers converge to similar quality.
    let ratio = partition.tokens_per_second / diffusion.tokens_per_second;
    assert!(ratio > 0.85 && ratio < 1.18, "ratio {ratio}");
    // Early exit is one of the biggest winners in the paper.
    assert!(partition.tokens_per_second > baseline.tokens_per_second * 1.15);
}

#[test]
fn mixture_of_depths_case_partition_balancer() {
    let model = gpt(24);
    let mut static_engine = MixtureOfDepthsEngine::new(&model, ModConfig::paper_default(), 23);
    let mut dynmo_engine = MixtureOfDepthsEngine::new(&model, ModConfig::paper_default(), 23);
    let baseline = run_static(&model, &mut static_engine);
    let dynmo = run_dynmo(&model, &mut dynmo_engine, false, None);
    assert_dynmo_sane("mod", &dynmo, &baseline);
}

#[test]
fn dynmo_does_not_change_the_learning_process() {
    // The paper stresses DynMo has no impact on model accuracy because it
    // only moves layers.  The observable analogue in the reproduction: the
    // dynamism engine's per-layer load trajectory is identical whether or
    // not rebalancing is enabled (the balancer never feeds back into the
    // engine).
    let model = gpt(24);
    let mut engine_a = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 99);
    let mut engine_b = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 99);
    let _ = run_static(&model, &mut engine_a);
    let _ = run_dynmo(&model, &mut engine_b, false, None);
    // Both engines advanced the same number of iterations with the same
    // seed; their final survival profiles must be bit-identical.
    assert_eq!(engine_a.last_survival(), engine_b.last_survival());
}
