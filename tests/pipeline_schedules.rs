//! Workspace-level tests for the event-driven pipeline engine:
//!
//! * a property test pinning the engine bit-for-bit to the legacy
//!   busy-poll simulator (`PipelineSimulator::simulate_reference`) across
//!   random stage loads for the schedules the legacy loop supported, and
//! * integration tests for the claims the new schedules exist to make —
//!   interleaved 1F1B and ZB-H1 strictly beat 1F1B's bubble on balanced
//!   stages once `m ≥ 4·p`, and released stages are bypassed end-to-end.

use dynmo::model::{ClusterConfig, DeviceSpec, ModelConfig};
use dynmo::pipeline::load::StageLoad;
use dynmo::pipeline::{CommCostModel, PipelineSimulator, ScheduleKind};
use proptest::prelude::*;

fn cluster(stages: usize, gpus_per_node: usize) -> ClusterConfig {
    ClusterConfig::homogeneous(gpus_per_node, stages, 1, DeviceSpec::h100_sxm5())
}

/// Stage loads with per-stage compute times and boundary tensors, all
/// non-empty (the legacy reference does not model the empty-stage bypass).
/// `boundary_scales` shrink each stage's outgoing hidden-state tensor
/// relative to the model's flat residual stream, exercising the
/// per-boundary cost path.
fn stage_loads(fwd_times: &[f64], boundary_scales: &[f64]) -> Vec<StageLoad> {
    let model = ModelConfig::gpt(24);
    let flat =
        (model.micro_batch_size * model.seq_len * model.hidden_size * model.param_bytes) as f64;
    fwd_times
        .iter()
        .zip(boundary_scales.iter())
        .map(|(&fwd, &scale)| StageLoad {
            fwd_time: fwd,
            bwd_time: 2.0 * fwd,
            param_count: 1_000_000,
            static_bytes: 1 << 24,
            activation_bytes: 1 << 20,
            boundary_bytes: (flat * scale) as u64,
            num_layers: 4,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven engine reproduces the legacy rescan loop exactly —
    /// same makespan bits, same per-worker busy times — for GPipe and 1F1B
    /// over random loads, micro-batch counts, and link localities.
    #[test]
    fn engine_matches_legacy_simulator_bit_for_bit(
        fwd_times in prop::collection::vec(0.001f64..2.0, 1..12),
        boundary_scales in prop::collection::vec(0.05f64..2.0, 12..13),
        microbatches in 1usize..24,
        gpus_per_node in 1usize..5,
    ) {
        let model = ModelConfig::gpt(24);
        let loads = stage_loads(&fwd_times, &boundary_scales[..fwd_times.len()]);
        for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let sim = PipelineSimulator::new(
                CommCostModel::new(cluster(loads.len(), gpus_per_node)),
                schedule,
            );
            let engine = sim.simulate(&model, &loads, microbatches);
            let reference = sim.simulate_reference(&model, &loads, microbatches);
            prop_assert_eq!(
                engine.makespan.to_bits(),
                reference.makespan.to_bits(),
                "{:?}: engine {} vs reference {}",
                schedule,
                engine.makespan,
                reference.makespan
            );
            prop_assert_eq!(engine.per_worker_busy.len(), reference.per_worker_busy.len());
            for (e, r) in engine.per_worker_busy.iter().zip(reference.per_worker_busy.iter()) {
                prop_assert_eq!(e.to_bits(), r.to_bits());
            }
        }
    }

    /// Bypassing a released stage is exactly equivalent to simulating the
    /// compressed pipeline of its real stages at their physical positions.
    #[test]
    fn released_stage_bypass_matches_the_compressed_pipeline(
        fwd_times in prop::collection::vec(0.01f64..2.0, 2..8),
        microbatches in 1usize..16,
    ) {
        let model = ModelConfig::gpt(24);
        let scales = vec![1.0; fwd_times.len()];
        let mut loads = stage_loads(&fwd_times, &scales);
        // Release the middle stage.
        let released = loads.len() / 2;
        loads[released] = StageLoad::default();
        let sim = PipelineSimulator::new(
            CommCostModel::new(cluster(loads.len(), loads.len())),
            ScheduleKind::OneFOneB,
        );
        let bypassed = sim.simulate(&model, &loads, microbatches);
        prop_assert!(bypassed.timelines[released].spans.is_empty());
        prop_assert_eq!(bypassed.per_worker_busy[released], 0.0);
        // Same pipeline with the released stage dropped outright (all
        // links intra-node here, so physical re-indexing is cost-neutral).
        let compressed: Vec<StageLoad> = loads
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != released)
            .map(|(_, l)| *l)
            .collect();
        let direct = PipelineSimulator::new(
            CommCostModel::new(cluster(compressed.len(), loads.len())),
            ScheduleKind::OneFOneB,
        )
        .simulate(&model, &compressed, microbatches);
        prop_assert_eq!(bypassed.makespan.to_bits(), direct.makespan.to_bits());
    }
}

/// Interleaved 1F1B and ZB-H1 must show strictly lower bubble ratios than
/// non-interleaved 1F1B on balanced stages with `m ≥ 4·p`.
#[test]
fn advanced_schedules_beat_1f1b_bubble_on_balanced_stages() {
    let model = ModelConfig::gpt(24);
    for p in [4usize, 8] {
        let m = 4 * p;
        let loads = stage_loads(&vec![1.0e-3; p], &vec![1.0; p]);
        let run = |schedule: ScheduleKind| {
            PipelineSimulator::new(CommCostModel::new(cluster(p, 4)), schedule)
                .simulate(&model, &loads, m)
        };
        let base = run(ScheduleKind::OneFOneB);
        for schedule in [
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let report = run(schedule);
            assert!(
                report.bubble_ratio() < base.bubble_ratio(),
                "p={p}: {schedule:?} bubble {} vs 1F1B {}",
                report.bubble_ratio(),
                base.bubble_ratio()
            );
            assert!(report.makespan < base.makespan);
        }
    }
}

/// The sweep artifact's headline claim holds through the public API: more
/// virtual stages keep shrinking the balanced interleaved bubble.
#[test]
fn deeper_interleaving_keeps_shrinking_the_bubble() {
    let model = ModelConfig::gpt(24);
    let p = 4;
    let m = 8 * p;
    let loads = stage_loads(&vec![1.0e-3; p], &vec![1.0; p]);
    let bubble = |v: usize| {
        PipelineSimulator::new(
            CommCostModel::new(cluster(p, p)),
            ScheduleKind::Interleaved1F1B { virtual_stages: v },
        )
        .simulate(&model, &loads, m)
        .bubble_ratio()
    };
    let b1 = bubble(1);
    let b2 = bubble(2);
    let b4 = bubble(4);
    assert!(b2 < b1, "v=2 bubble {b2} vs v=1 {b1}");
    assert!(b4 < b2, "v=4 bubble {b4} vs v=2 {b2}");
}

// ---------------------------------------------------------------------------
// Sharded wavefront engine: bit-identical twin of the sequential Kahn engine.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sharded wavefront engine (forced via `with_shard_threshold(0)`
    /// under a multi-thread pool) reproduces the sequential Kahn engine's
    /// full `IterationReport` exactly — every span bit, every busy/idle
    /// value — across random loads, schedules, and micro-batch counts.
    #[test]
    fn sharded_engine_is_bit_identical_to_sequential(
        fwd_times in prop::collection::vec(0.001f64..2.0, 2..10),
        boundary_scales in prop::collection::vec(0.05f64..2.0, 10..11),
        microbatches in 1usize..20,
        gpus_per_node in 1usize..5,
        schedule_pick in 0usize..4,
    ) {
        let model = ModelConfig::gpt(24);
        let loads = stage_loads(&fwd_times, &boundary_scales[..fwd_times.len()]);
        let schedule = match schedule_pick {
            0 => ScheduleKind::GPipe,
            1 => ScheduleKind::OneFOneB,
            2 => ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            _ => ScheduleKind::ZeroBubbleH1,
        };
        let sim = PipelineSimulator::new(
            CommCostModel::new(cluster(loads.len(), gpus_per_node)),
            schedule,
        );
        let sequential = sim.simulate(&model, &loads, microbatches);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sharded = pool.install(|| {
            sim.clone()
                .with_shard_threshold(0)
                .simulate(&model, &loads, microbatches)
        });
        prop_assert_eq!(&sharded, &sequential);
    }

    /// Same pin for the forward-only (inference) pass.
    #[test]
    fn sharded_forward_pass_is_bit_identical_to_sequential(
        fwd_times in prop::collection::vec(0.001f64..2.0, 2..10),
        microbatches in 1usize..24,
    ) {
        let model = ModelConfig::gpt(24);
        let scales = vec![1.0; fwd_times.len()];
        let loads = stage_loads(&fwd_times, &scales);
        let sim = PipelineSimulator::new(
            CommCostModel::new(cluster(loads.len(), 2)),
            ScheduleKind::OneFOneB,
        );
        let sequential = sim.simulate_forward(&model, &loads, microbatches);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sharded = pool.install(|| {
            sim.clone()
                .with_shard_threshold(0)
                .simulate_forward(&model, &loads, microbatches)
        });
        prop_assert_eq!(&sharded, &sequential);
    }
}

/// One deep pin at genuinely large scale: p = 128 stages × m = 1024
/// micro-batches (393k graph nodes under 1F1B) — the regime the sharded
/// engine exists for — must agree with the sequential engine exactly.
#[test]
fn sharded_engine_matches_sequential_at_very_large_scale() {
    let model = ModelConfig::gpt(24);
    let p = 128;
    let m = 1024;
    let fwd_times: Vec<f64> = (0..p).map(|i| 0.5 + 0.01 * (i % 7) as f64).collect();
    let scales = vec![1.0; p];
    let loads = stage_loads(&fwd_times, &scales);
    let sim = PipelineSimulator::new(CommCostModel::new(cluster(p, 8)), ScheduleKind::OneFOneB);
    let sequential = sim
        .clone()
        .with_shard_threshold(usize::MAX)
        .simulate(&model, &loads, m);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    // 3·p·m = 393_216 nodes ≥ the default threshold, so the default-config
    // simulator also takes the sharded path here — assert both routes.
    let sharded = pool.install(|| sim.simulate(&model, &loads, m));
    assert_eq!(sharded, sequential);
}
