//! Property tests for the composite dynamics engine: merge algebra,
//! order-independence of commuting mechanisms, and checkpoint → restore →
//! replay determinism for a 3-mechanism stack under a mid-run kill.

use dynmo::core::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
use dynmo::core::composite::{run_composite_with_recovery, CompositeRunSpec};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::trainer::TrainerConfig;
use dynmo::dynamics::rng::Prng;
use dynmo::dynamics::{
    merge_updates, AttentionMode, ComposedEngine, DynamismEngine, EarlyExitEngine, EarlyExitMethod,
    FreezingEngine, FreezingPolicy, GradualPruningEngine, LoadUpdate, MoeEngine, PruningSchedule,
    RoutingStrategy, SparseAttentionEngine,
};
use dynmo::model::{ClusterConfig, DeviceSpec, Model, ModelPreset};
use dynmo::pipeline::ScheduleKind;
use proptest::prelude::*;

/// One structurally valid pseudo-random `LoadUpdate` over `n` layers:
/// compute scales in [0, 3] with occasional exact zeros (frozen layers),
/// memory scales in [0, 2], retentions in [0, 1].
fn random_update(rng: &mut Prng, n: usize) -> LoadUpdate {
    let mut scale = |zero_chance: f64, max: f64| -> f64 {
        if rng.next_f64() < zero_chance {
            0.0
        } else {
            rng.next_f64() * max
        }
    };
    let fwd_scale: Vec<f64> = (0..n).map(|_| scale(0.1, 3.0)).collect();
    let bwd_scale: Vec<f64> = (0..n).map(|_| scale(0.25, 3.0)).collect();
    let memory_scale: Vec<f64> = (0..n).map(|_| scale(0.0, 2.0)).collect();
    let param_retention: Vec<f64> = (0..n).map(|_| scale(0.0, 1.0)).collect();
    let token_retention: Vec<f64> = (0..n).map(|_| scale(0.0, 1.0)).collect();
    let changed = rng.next_f64() < 0.5;
    LoadUpdate {
        fwd_scale,
        bwd_scale,
        memory_scale,
        param_retention,
        token_retention,
        changed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merged update is the element-wise product of the sub-engine
    /// updates (and the OR of their `changed` flags), for any number of
    /// structurally valid sub-updates.
    #[test]
    fn merged_multipliers_equal_the_product_of_sub_engine_multipliers(
        seed in 0u64..1_000_000,
        num_updates in 1usize..5,
    ) {
        let mut rng = Prng::seed_from(seed);
        let updates: Vec<LoadUpdate> =
            (0..num_updates).map(|_| random_update(&mut rng, 12)).collect();
        let merged = merge_updates(&updates).unwrap();
        for l in 0..12 {
            let product = |f: &dyn Fn(&LoadUpdate) -> f64| -> f64 {
                updates.iter().map(f).product()
            };
            prop_assert_eq!(merged.fwd_scale[l], product(&|u| u.fwd_scale[l]));
            prop_assert_eq!(merged.bwd_scale[l], product(&|u| u.bwd_scale[l]));
            prop_assert_eq!(merged.memory_scale[l], product(&|u| u.memory_scale[l]));
            prop_assert_eq!(merged.param_retention[l], product(&|u| u.param_retention[l]));
            prop_assert_eq!(merged.token_retention[l], product(&|u| u.token_retention[l]));
            // A layer frozen by any sub-engine is frozen in the merge.
            if updates.iter().any(|u| u.bwd_scale[l] == 0.0) {
                prop_assert_eq!(merged.bwd_scale[l], 0.0);
            }
        }
        prop_assert_eq!(merged.changed, updates.iter().any(|u| u.changed));
        merged.validate().unwrap();
    }

    /// Raw merges commute up to f64 rounding (products are commutative but
    /// fold rounding is not reorder-stable); exact zeros — frozen layers —
    /// stay exactly zero in every order.  Bit-exact order independence is
    /// the `ComposedEngine`'s job (it folds in canonical case order) and is
    /// checked by `commuting_real_engine_stacks_are_order_independent`.
    #[test]
    fn merge_is_order_independent_up_to_rounding(
        seed in 0u64..1_000_000,
        num_updates in 2usize..5,
    ) {
        let mut rng = Prng::seed_from(seed ^ 0xDEAD_BEEF);
        let updates: Vec<LoadUpdate> =
            (0..num_updates).map(|_| random_update(&mut rng, 8)).collect();
        let forward = merge_updates(&updates).unwrap();
        let mut reversed_inputs = updates.clone();
        reversed_inputs.reverse();
        let reversed = merge_updates(&reversed_inputs).unwrap();
        let close = |a: f64, b: f64| {
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
        };
        for l in 0..8 {
            prop_assert!(close(forward.fwd_scale[l], reversed.fwd_scale[l]));
            prop_assert!(close(forward.bwd_scale[l], reversed.bwd_scale[l]));
            prop_assert!(close(forward.memory_scale[l], reversed.memory_scale[l]));
            prop_assert!(close(forward.param_retention[l], reversed.param_retention[l]));
            prop_assert!(close(forward.token_retention[l], reversed.token_retention[l]));
            if updates.iter().any(|u| u.bwd_scale[l] == 0.0) {
                prop_assert_eq!(forward.bwd_scale[l].to_bits(), reversed.bwd_scale[l].to_bits());
            }
        }
        prop_assert_eq!(forward.changed, reversed.changed);
    }

    /// Real engines commute inside a stack: pruning/freezing/sparse-
    /// attention stacks merged in either order step to bit-identical
    /// updates for any seeds (each engine's RNG is seeded independently
    /// and never observes stack order).
    #[test]
    fn commuting_real_engine_stacks_are_order_independent(
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
        iterations in 5u64..25,
    ) {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let build = |order_swapped: bool| -> ComposedEngine {
            let pruning: Box<dyn DynamismEngine + Send> = Box::new(GradualPruningEngine::new(
                &model,
                PruningSchedule {
                    initial_sparsity: 0.0,
                    final_sparsity: 0.9,
                    start_iteration: 5,
                    frequency: 5,
                    num_steps: 3,
                },
                seed_a,
            ));
            let attention: Box<dyn DynamismEngine + Send> = Box::new(SparseAttentionEngine::new(
                &model,
                AttentionMode::DynamicSparse,
                seed_b,
            ));
            let engines = if order_swapped {
                vec![attention, pruning]
            } else {
                vec![pruning, attention]
            };
            ComposedEngine::new(engines).unwrap()
        };
        let mut ab = build(false);
        let mut ba = build(true);
        for it in 0..iterations {
            let u = ab.step(it);
            let v = ba.step(it);
            prop_assert_eq!(&u.fwd_scale, &v.fwd_scale, "iteration {}", it);
            prop_assert_eq!(&u.bwd_scale, &v.bwd_scale);
            prop_assert_eq!(&u.memory_scale, &v.memory_scale);
            prop_assert_eq!(&u.param_retention, &v.param_retention);
            prop_assert_eq!(&u.token_retention, &v.token_retention);
            prop_assert_eq!(u.changed, v.changed);
        }
    }
}

fn three_mechanism_stack(model: &Model, seed: u64) -> Vec<Box<dyn DynamismEngine + Send>> {
    vec![
        Box::new(MoeEngine::new(
            model,
            RoutingStrategy::TokenChoiceAuxLoss,
            seed,
        )),
        Box::new(GradualPruningEngine::new(
            model,
            PruningSchedule {
                initial_sparsity: 0.0,
                final_sparsity: 0.9,
                start_iteration: 15,
                frequency: 15,
                num_steps: 3,
            },
            seed + 1,
        )),
        Box::new(EarlyExitEngine::new(model, EarlyExitMethod::Calm, seed + 2)),
    ]
}

/// Checkpoint → restore → replay determinism for the acceptance stack
/// (MoE + gradual pruning + early exit) under mid-run kills at several
/// points, through both balancer families.
#[test]
fn three_mechanism_stack_replays_bit_identically_after_mid_run_kills() {
    let model = Model::from_preset(ModelPreset::Mixtral8x7b);
    let cluster = ClusterConfig::homogeneous(4, 4, 1, DeviceSpec::h100_sxm5());
    let config = TrainerConfig {
        schedule: ScheduleKind::OneFOneB,
        ..TrainerConfig::paper_defaults(cluster, 70)
    };
    let make_partition = || {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    };
    let make_diffusion = || {
        RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    };
    let make_stack = || three_mechanism_stack(&model, 99);
    for make_controller in [
        &make_partition as &dyn Fn() -> RebalanceController,
        &make_diffusion,
    ] {
        let spec = CompositeRunSpec {
            model: &model,
            config: &config,
            make_controller,
            make_stack: &make_stack,
        };
        // Kills on and off the checkpoint grid (interval 20).
        for kill_at in [20, 33, 59] {
            let report = run_composite_with_recovery(&spec, 20, kill_at).unwrap();
            assert!(
                report.bit_identical,
                "kill at {kill_at}: recovered {:#018x} vs baseline {:#018x}",
                report.recovered.trajectory_checksum, report.baseline.trajectory_checksum,
            );
            assert_eq!(report.resumed_from, (kill_at / 20) * 20);
        }
    }
}

/// A freezing-bearing stack (no per-iteration noise once schedules quiesce)
/// also replays bit-identically — the resume path re-profiles and
/// re-simulates mid-cache, which must reproduce the cached values exactly.
#[test]
fn quiescent_stacks_replay_bit_identically_too() {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
    let cluster = ClusterConfig::homogeneous(4, 4, 1, DeviceSpec::h100_sxm5());
    let config = TrainerConfig {
        schedule: ScheduleKind::ZeroBubbleH1,
        ..TrainerConfig::paper_defaults(cluster, 80)
    };
    let make_controller = || {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    };
    let make_stack = || -> Vec<Box<dyn DynamismEngine + Send>> {
        vec![
            Box::new(GradualPruningEngine::new(
                &model,
                PruningSchedule {
                    initial_sparsity: 0.0,
                    final_sparsity: 0.9,
                    start_iteration: 20,
                    frequency: 20,
                    num_steps: 2,
                },
                7,
            )),
            Box::new(FreezingEngine::new(
                &model,
                FreezingPolicy {
                    check_interval: 10,
                    first_freeze_iteration: 15,
                    stagger_per_layer: 3,
                    never_freeze_fraction: 0.25,
                    jitter: 0.1,
                },
                8,
            )),
        ]
    };
    let spec = CompositeRunSpec {
        model: &model,
        config: &config,
        make_controller: &make_controller,
        make_stack: &make_stack,
    };
    // Kill in a quiet stretch between dynamism events.
    let report = run_composite_with_recovery(&spec, 25, 68).unwrap();
    assert!(report.bit_identical);
    assert_eq!(report.resumed_from, 50);
    assert_eq!(report.replayed, 18);
}
