//! Property-based tests (proptest) for DynMo's core invariants:
//! the partition and diffusion balancers, the re-packing pass, and the
//! sparse-tensor primitives used by global pruning.

use dynmo::core::balancer::{
    stage_weights, BalanceObjective, BalanceRequest, DiffusionBalancer, LoadBalancer,
    PartitionBalancer,
};
use dynmo::core::load_imbalance;
use dynmo::core::repack::{plan_repack, RepackConfig};
use dynmo::model::{ClusterConfig, DeviceSpec, ModelConfig};
use dynmo::pipeline::{
    CommCostModel, LayerLoad, PipelineSimulator, ScheduleKind, StageAssignment, StageLoad,
};
use dynmo::sparse::{prune_to_sparsity, spmm, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn loads_from_times(times: &[f64]) -> Vec<LayerLoad> {
    times
        .iter()
        .enumerate()
        .map(|(id, &t)| LayerLoad {
            layer_id: id,
            fwd_time: t / 3.0,
            bwd_time: 2.0 * t / 3.0,
            param_count: (t * 1.0e6) as u64 + 1,
            static_bytes: ((t * 1.0e6) as u64 + 1) * 16,
            activation_bytes: 1_000,
            migration_bytes: ((t * 1.0e6) as u64 + 1) * 16,
        })
        .collect()
}

fn arbitrary_times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..5.0, 4..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partition balancer covers every layer exactly once, keeps the
    /// assignment contiguous, and never does worse than the uniform split.
    #[test]
    fn partition_balancer_invariants(times in arbitrary_times(), stages in 2usize..12) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime);
        let outcome = PartitionBalancer::new().rebalance(&request);

        prop_assert_eq!(outcome.assignment.num_layers(), loads.len());
        prop_assert!(outcome.assignment.is_contiguous());
        prop_assert_eq!(outcome.assignment.num_stages(), stages);
        // Every layer appears exactly once (counts sum to the layer count).
        prop_assert_eq!(outcome.assignment.counts().iter().sum::<usize>(), loads.len());

        // Bottleneck is never worse than the uniform split's bottleneck.
        let uniform = StageAssignment::uniform(loads.len(), stages);
        let uniform_bottleneck = stage_weights(&uniform, &loads, BalanceObjective::ByTime)
            .into_iter()
            .fold(0.0f64, f64::max);
        prop_assert!(outcome.bottleneck <= uniform_bottleneck + 1e-9);

        // Bottleneck can never go below the theoretical lower bound
        // max(total/stages, heaviest layer).
        let total: f64 = times.iter().sum();
        let heaviest = times.iter().copied().fold(0.0f64, f64::max);
        let lower = (total / stages as f64).max(heaviest);
        prop_assert!(outcome.bottleneck >= lower - 1e-9);
    }

    /// The diffusion balancer improves (or preserves) the imbalance of its
    /// starting assignment, preserves every layer, stays contiguous, and
    /// finishes within the Lemma 2 round bound.
    #[test]
    fn diffusion_balancer_invariants(times in arbitrary_times(), stages in 2usize..10) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let current = StageAssignment::uniform(loads.len(), stages);
        let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let balancer = DiffusionBalancer::new();
        let outcome = balancer.rebalance(&request);

        prop_assert_eq!(outcome.assignment.num_layers(), loads.len());
        prop_assert!(outcome.assignment.is_contiguous());
        prop_assert_eq!(outcome.assignment.counts().iter().sum::<usize>(), loads.len());

        let before = load_imbalance(&stage_weights(&current, &loads, BalanceObjective::ByTime));
        let after = load_imbalance(&stage_weights(
            &outcome.assignment,
            &loads,
            BalanceObjective::ByTime,
        ));
        prop_assert!(after <= before + 1e-9, "imbalance got worse: {} -> {}", before, after);

        let total: f64 = times.iter().sum();
        let bound = balancer.lemma2_round_bound(stages, total);
        prop_assert!((outcome.rounds as f64) <= bound);
    }

    /// Re-packing never loses a layer, never violates the memory budget on
    /// the destination workers, and never increases the active worker count.
    #[test]
    fn repack_invariants(
        times in arbitrary_times(),
        stages in 2usize..10,
        budget_scale in 1.0f64..6.0,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let assignment = StageAssignment::uniform(loads.len(), stages);
        let inflight = vec![2usize; stages];
        // Budget between one stage's worth and several stages' worth.
        let per_stage: u64 = loads.iter().map(|l| l.static_bytes + 2 * l.activation_bytes).sum::<u64>()
            / stages as u64;
        let config = RepackConfig {
            max_memory: ((per_stage as f64) * budget_scale) as u64 + 1,
            target_num_workers: 1,
            utilization_cap: 1.0,
        };
        let plan = plan_repack(&assignment, &loads, &inflight, &config);

        // No layer lost or duplicated, and every layer maps to a real stage.
        prop_assert_eq!(plan.new_assignment.num_layers(), loads.len());
        for layer in 0..loads.len() {
            prop_assert!(plan.new_assignment.stage_of(layer) < stages);
        }

        // Re-packing never pushes a worker over the budget *by merging*: a
        // worker may only exceed the budget if its original (pre-repack)
        // load already did, since Algorithm 2 never splits a worker's load.
        let memory_before: Vec<u64> = (0..stages)
            .map(|s| {
                assignment
                    .layers_of(s)
                    .iter()
                    .map(|&l| loads[l].static_bytes + loads[l].activation_bytes * 2)
                    .sum()
            })
            .collect();
        for (stage, &bytes) in plan.memory_after.iter().enumerate() {
            prop_assert!(
                bytes <= config.max_memory.max(memory_before[stage]),
                "stage {} holds {} bytes over budget {} (was {} before)",
                stage, bytes, config.max_memory, memory_before[stage]
            );
        }

        // Active workers never increase, and released + active partitions
        // the original actives.
        prop_assert!(plan.active_workers.len() <= stages);
        for worker in &plan.released_workers {
            prop_assert!(!plan.active_workers.contains(worker));
        }
    }

    /// CSR round-trips and SpMM agrees with the dense reference.
    #[test]
    fn csr_spmm_matches_dense(
        rows in 1usize..12,
        inner in 1usize..12,
        cols in 1usize..8,
        values in prop::collection::vec(-2.0f32..2.0, 1..144),
        mask in prop::collection::vec(0u8..4, 1..144),
    ) {
        let a_data: Vec<f32> = (0..rows * inner)
            .map(|i| {
                let v = values[i % values.len()];
                if mask[i % mask.len()] == 0 { 0.0 } else { v }
            })
            .collect();
        let b_data: Vec<f32> = (0..inner * cols)
            .map(|i| values[(i * 7 + 3) % values.len()])
            .collect();
        let a = DenseMatrix::from_vec(rows, inner, a_data);
        let b = DenseMatrix::from_vec(inner, cols, b_data);
        let csr = CsrMatrix::from_dense(&a);
        // Round trip.
        prop_assert_eq!(csr.to_dense(), a.clone());
        // SpMM vs dense GEMM.
        let sparse_result = spmm(&csr, &b);
        let dense_result = a.matmul(&b);
        prop_assert!(sparse_result.max_abs_diff(&dense_result) < 1e-3);
    }

    /// Global magnitude pruning hits its sparsity target (within rounding)
    /// and only ever zeroes the smallest-magnitude entries.
    #[test]
    fn pruning_hits_target_and_keeps_largest(
        values in prop::collection::vec(-5.0f32..5.0, 8..256),
        sparsity in 0.0f64..1.0,
    ) {
        let mut pruned = values.clone();
        let achieved = prune_to_sparsity(&mut pruned, sparsity);
        let expected_zeros = (sparsity * values.len() as f64).round() as usize;
        let zeros = pruned.iter().filter(|v| **v == 0.0).count();
        let original_zeros = values.iter().filter(|v| **v == 0.0).count();
        // Achieved zero count is within 1 of the target (ties / existing
        // zeros can push it slightly over).
        prop_assert!(zeros + 1 >= expected_zeros.max(original_zeros));
        prop_assert!((achieved - zeros as f64 / values.len() as f64).abs() < 1e-9);
        // Every surviving value has magnitude >= every pruned (non-zero
        // originally) value's magnitude... checked via threshold ordering.
        let kept_min = pruned
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        for (original, now) in values.iter().zip(pruned.iter()) {
            if *now == 0.0 && *original != 0.0 {
                prop_assert!(original.abs() <= kept_min + 1e-6);
            }
        }
    }

    /// Partition conservation: whatever the objective, the per-stage layer
    /// counts always sum to the model size and the assignment stays
    /// contiguous.  Empty stages are allowed by design (idle workers that
    /// re-packing later releases) but only ever as a trailing suffix.
    #[test]
    fn partition_conserves_layers_across_objectives(
        times in arbitrary_times(),
        stages in 2usize..12,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        for objective in [BalanceObjective::ByTime, BalanceObjective::ByParams] {
            let request = BalanceRequest::new(&loads, stages, u64::MAX, objective);
            let outcome = PartitionBalancer::new().rebalance(&request);
            let counts = outcome.assignment.counts();
            prop_assert_eq!(counts.iter().sum::<usize>(), loads.len());
            prop_assert!(outcome.assignment.is_contiguous());
            let first_empty = counts.iter().position(|&c| c == 0).unwrap_or(counts.len());
            prop_assert!(
                counts[first_empty..].iter().all(|&c| c == 0),
                "non-trailing empty stage in {:?}", counts
            );
        }
    }

    /// Rebalancing moves work around but never creates or destroys it: the
    /// stage weights of any balanced assignment sum to the per-layer total.
    #[test]
    fn balancers_conserve_total_stage_weight(
        times in arbitrary_times(),
        stages in 2usize..12,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let current = StageAssignment::uniform(loads.len(), stages);
        let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let expected: f64 = times.iter().sum();
        for outcome in [
            PartitionBalancer::new().rebalance(&request),
            DiffusionBalancer::new().rebalance(&request),
        ] {
            let total: f64 = stage_weights(&outcome.assignment, &loads, BalanceObjective::ByTime)
                .iter()
                .sum();
            prop_assert!(
                (total - expected).abs() <= 1e-6 * expected.max(1.0),
                "stage weights sum to {} but layers sum to {}", total, expected
            );
        }
    }

    /// Applying the diffusion balancer repeatedly is monotone: each round
    /// starts from the previous assignment and the imbalance never
    /// increases from one application to the next.
    #[test]
    fn diffusion_is_monotone_over_repeated_applications(
        times in arbitrary_times(),
        stages in 2usize..10,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let balancer = DiffusionBalancer::new();
        let mut assignment = StageAssignment::uniform(loads.len(), stages);
        let mut last = load_imbalance(&stage_weights(&assignment, &loads, BalanceObjective::ByTime));
        for round in 0..4 {
            let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime)
                .with_current(&assignment);
            let outcome = balancer.rebalance(&request);
            let now = load_imbalance(&stage_weights(
                &outcome.assignment,
                &loads,
                BalanceObjective::ByTime,
            ));
            prop_assert!(
                now <= last + 1e-9,
                "imbalance increased on application {}: {} -> {}", round, last, now
            );
            last = now;
            assignment = outcome.assignment;
        }
    }

    /// The O(p) incremental potential update is bit-equal to the O(p²)
    /// full recompute whenever the loads are exactly representable
    /// (integer-valued f64s keep every sum and difference exact), for any
    /// move of any weight between any two stages.
    #[test]
    fn incremental_potential_is_bit_equal_to_full_recompute(
        loads in prop::collection::vec(0u32..10_000, 2..64),
        from_index in 0usize..64,
        to_index in 0usize..64,
        weight in 0u32..5_000,
    ) {
        let loads: Vec<f64> = loads.into_iter().map(f64::from).collect();
        let from = from_index % loads.len();
        // The shim has no prop_assume: fold the degenerate from == to case
        // into a neighbouring pair instead of skipping it.
        let to = if to_index % loads.len() == from {
            (from + 1) % loads.len()
        } else {
            to_index % loads.len()
        };
        let phi = dynmo::core::balancer::diffusion::potential(&loads);
        let w = f64::from(weight);
        let incremental =
            dynmo::core::balancer::diffusion::potential_after_move(&loads, phi, from, to, w);
        let mut moved = loads.clone();
        moved[from] -= w;
        moved[to] += w;
        let full = dynmo::core::balancer::diffusion::potential(&moved);
        prop_assert_eq!(
            incremental.to_bits(),
            full.to_bits(),
            "incremental {} vs full {}",
            incremental,
            full
        );
    }

    /// Heterogeneous balancing with all-equal `DeviceSpec`s is bit-identical
    /// to the homogeneous path: both balancers produce the same assignments
    /// and bottlenecks, and the explicit-device cluster simulates the same
    /// makespan bit-for-bit under all four pipeline schedules.
    #[test]
    fn equal_device_hetero_path_matches_homogeneous_bit_for_bit(
        times in arbitrary_times(),
        stages in 2usize..8,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let current = StageAssignment::uniform(loads.len(), stages);
        let base = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let weighted = base
            .clone()
            .with_stage_speeds(Some(vec![1.0; stages]))
            .with_stage_capacities(Some(vec![u64::MAX; stages]));

        let homogeneous_cluster =
            ClusterConfig::homogeneous(2, stages, 1, DeviceSpec::h100_sxm5());
        let explicit_cluster = homogeneous_cluster
            .clone()
            .with_devices(vec![DeviceSpec::h100_sxm5(); stages]);

        for (homogeneous, hetero) in [
            (
                PartitionBalancer::new().rebalance(&base),
                PartitionBalancer::new().rebalance(&weighted),
            ),
            (
                DiffusionBalancer::new().rebalance(&base),
                DiffusionBalancer::new().rebalance(&weighted),
            ),
        ] {
            prop_assert_eq!(&homogeneous.assignment, &hetero.assignment);
            prop_assert_eq!(homogeneous.bottleneck.to_bits(), hetero.bottleneck.to_bits());

            // Same assignment simulated on the homogeneous cluster and on
            // the explicit equal-device cluster: identical makespans under
            // every schedule.
            let mut stage_loads = vec![StageLoad::default(); stages];
            for (layer, &stage) in homogeneous.assignment.layer_to_stage().iter().enumerate() {
                stage_loads[stage].add_layer(&loads[layer]);
            }
            let model = ModelConfig::gpt(loads.len());
            for schedule in [
                ScheduleKind::GPipe,
                ScheduleKind::OneFOneB,
                ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
                ScheduleKind::ZeroBubbleH1,
            ] {
                let on_homogeneous = PipelineSimulator::new(
                    CommCostModel::new(homogeneous_cluster.clone()),
                    schedule,
                )
                .simulate(&model, &stage_loads, 2 * stages);
                let on_explicit = PipelineSimulator::new(
                    CommCostModel::new(explicit_cluster.clone()),
                    schedule,
                )
                .simulate(&model, &stage_loads, 2 * stages);
                prop_assert_eq!(
                    on_homogeneous.makespan.to_bits(),
                    on_explicit.makespan.to_bits(),
                    "schedule {:?}: homogeneous {} vs explicit equal-device {}",
                    schedule,
                    on_homogeneous.makespan,
                    on_explicit.makespan
                );
            }
        }
    }

    /// The incremental-potential fast path commits exactly the moves the
    /// legacy full-recompute path commits: identical assignments, round
    /// counts, and bottlenecks on arbitrary workloads.
    #[test]
    fn diffusion_incremental_path_matches_full_path(
        times in arbitrary_times(),
        stages in 2usize..12,
    ) {
        let loads = loads_from_times(&times);
        let stages = stages.min(loads.len());
        let current = StageAssignment::uniform(loads.len(), stages);
        let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let incremental = DiffusionBalancer::new().rebalance(&request);
        let full = DiffusionBalancer {
            use_incremental_potential: false,
            ..DiffusionBalancer::new()
        }
        .rebalance(&request);
        prop_assert_eq!(incremental.assignment, full.assignment);
        prop_assert_eq!(incremental.rounds, full.rounds);
        prop_assert_eq!(incremental.bottleneck.to_bits(), full.bottleneck.to_bits());
    }
}
