//! Property-based tests (proptest) for the continuous-batching serving
//! subsystem: under random arrival traces, random prompt/output lengths,
//! random replica counts and random early-exit dynamism, the scheduler
//! conserves requests and tokens (no drops, no duplicates), keeps every
//! request's lifecycle timestamps monotone, and never overdraws the KV
//! budget.

use dynmo::dynamics::{DynamismEngine, EarlyExitEngine, EarlyExitMethod};
use dynmo::model::{Model, ModelPreset};
use dynmo::serve::{serve, RequestTrace, ServingConfig};
use proptest::prelude::*;

/// Build a replayed trace from raw proptest-generated material: arrival
/// *gaps* (so arrivals are sorted by construction) plus token lengths.
fn trace_from_parts(gaps: &[f64], prompts: &[usize], outputs: &[usize]) -> RequestTrace {
    let mut t = 0.0f64;
    let requests: Vec<(f64, usize, usize)> = gaps
        .iter()
        .zip(prompts.iter().zip(outputs.iter()))
        .map(|(&gap, (&p, &o))| {
            t += gap;
            (t, p, o)
        })
        .collect();
    RequestTrace::replayed("proptest", requests).expect("construction is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Requests and tokens are conserved, timestamps are monotone, and the
    /// KV budget holds — for any trace, with and without early exit.
    #[test]
    fn the_scheduler_conserves_requests_and_tokens(
        gaps in prop::collection::vec(0.0f64..2.0, 5..40),
        prompts in prop::collection::vec(1usize..600, 40..41),
        outputs in prop::collection::vec(1usize..150, 40..41),
        replicas in 1usize..3,
        early_exit_seed in 0u64..1000,
    ) {
        let n = gaps.len();
        let trace = trace_from_parts(&gaps, &prompts[..n], &outputs[..n]);
        let config = ServingConfig::small(replicas);

        // Random early-exit retention on odd seeds; dense on even.
        let mut engine_storage;
        let engine: Option<&mut dyn DynamismEngine> = if early_exit_seed % 2 == 1 {
            let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
            engine_storage = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, early_exit_seed);
            Some(&mut engine_storage)
        } else {
            None
        };
        let report = serve(config, &trace, engine).expect("the deployment serves the trace");

        // No drops, no duplicates: every trace id completes exactly once.
        prop_assert_eq!(report.completed, trace.num_requests());
        prop_assert_eq!(report.records.len(), trace.num_requests());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..trace.num_requests() as u64).collect::<Vec<_>>());

        // Token conservation: exactly the requested prompt and output
        // tokens were processed — early exit shortens per-token *work*,
        // never the token count.
        prop_assert_eq!(report.total_output_tokens, trace.total_output_tokens());
        prop_assert_eq!(
            report.total_prefill_tokens + report.total_output_tokens,
            trace.total_tokens()
        );

        // Per-request lifecycle monotonicity.
        for record in &report.records {
            let original = trace.requests[record.id as usize];
            prop_assert_eq!(record.prompt_tokens, original.prompt_tokens);
            prop_assert_eq!(record.output_tokens, original.output_tokens);
            prop_assert!(record.admitted >= original.arrival);
            prop_assert!(record.first_token > record.admitted);
            prop_assert!(record.completion >= record.first_token);
            prop_assert!(record.completion <= report.makespan + 1e-9);
        }

        // Completion times are monotone in completion order (records are
        // appended as steps finish, and step end times never go backward
        // on a replica; across replicas the merged order may interleave,
        // but each replica's subsequence must be non-decreasing).
        for replica in 0..replicas {
            let times: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.replica == replica)
                .map(|r| r.completion)
                .collect();
            for w in times.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9);
            }
        }

        // The KV budget was never overdrawn.
        prop_assert!(report.peak_kv_tokens <= report.kv_capacity_tokens);
    }

    /// Serving is deterministic: the same trace, config and dynamism seed
    /// reproduce the identical report (the sweep's fixed-vs-elastic
    /// comparisons depend on this).
    #[test]
    fn serving_is_deterministic(
        gaps in prop::collection::vec(0.0f64..1.0, 5..20),
        prompts in prop::collection::vec(1usize..300, 20..21),
        outputs in prop::collection::vec(1usize..80, 20..21),
    ) {
        let n = gaps.len();
        let trace = trace_from_parts(&gaps, &prompts[..n], &outputs[..n]);
        let run = || {
            let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
            let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 5);
            serve(ServingConfig::small(1), &trace, Some(&mut engine)).expect("serves")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}
