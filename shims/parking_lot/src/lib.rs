//! Minimal stand-in for `parking_lot`, wrapping `std::sync` primitives with
//! parking_lot's poison-free API (`lock()` returns the guard directly).

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with parking_lot's panic-on-poison-free locking API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
