//! Minimal stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `#![proptest_config(..)]` and `arg in strategy` parameters,
//! range strategies over the primitive numeric types,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!`
//! macros.  Values are generated from a deterministic SplitMix64 stream
//! seeded by the test name, so failures reproduce across runs; there is no
//! shrinking — the failing values are printed by the assertion itself.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator handed to strategies by the `proptest!` macro.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash | 1 }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of arbitrary values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_in_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategy combinators namespace (`prop::collection`, ...).
pub mod strategies {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.next_in_range(self.size.start as u64, self.size.end as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The `proptest::prelude` the workspace imports with `use
/// proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert a condition inside a property (plain `assert!` here — no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `arg in strategy` parameter is generated
/// `cases` times from a deterministic per-test stream and the body re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($config); $($rest)*);
    };
    (@tests ($config:expr);) => {};
    (@tests ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@tests ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = (2usize..12).generate(&mut rng);
            assert!((2..12).contains(&x));
            let f = (0.05f64..5.0).generate(&mut rng);
            assert!((0.05..5.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_size(values in prop::collection::vec(0u8..4, 4..64)) {
            prop_assert!(values.len() >= 4 && values.len() < 64);
            prop_assert!(values.iter().all(|v| *v < 4));
        }
    }
}
