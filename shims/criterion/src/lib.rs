//! Minimal stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros — with a simple warmup + timed-loop
//! measurement instead of criterion's statistical machinery.  Output is one
//! `name/id: median-ish mean time` line per benchmark, which keeps
//! `cargo bench` runnable (and CI-smoke-testable) offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<N: fmt::Display, P: fmt::Display>(name: N, param: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timed iterations of a single benchmark.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then averaging over a fixed number
    /// of samples.
    // Benchmarking is a sanctioned wall-clock use (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that takes a
        // perceptible amount of time, capped so slow benches stay quick.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
        }
        self.mean = total / (self.samples as u32 * iters as u32).max(1);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        routine(&mut bencher, input);
        println!("{}/{}: {:?}", self.name, id, bencher.mean);
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<R>(&mut self, id: BenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        routine(&mut bencher);
        println!("{}/{}: {:?}", self.name, id, bencher.mean);
        self
    }

    /// Finish the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            mean: Duration::ZERO,
        };
        routine(&mut bencher);
        println!("{}: {:?}", name, bencher.mean);
        self
    }
}

/// Bundle benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given criterion groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
