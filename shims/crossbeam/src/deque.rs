//! Work-stealing deques, mirroring the `crossbeam-deque` API.
//!
//! [`Worker`] is the single-owner end of a Chase–Lev deque: the owner
//! pushes and pops at the bottom (LIFO, keeping hot tasks cache-local),
//! while any number of [`Stealer`] handles take from the top (FIFO) — the
//! classic work-stealing discipline, with the C11 orderings of Lê et al.,
//! "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//! [`Injector`] is the shared global queue new work enters through before a
//! worker adopts it.
//!
//! Two deliberate simplifications versus `crossbeam-deque`:
//!
//! * Elements live behind one heap pointer each and the ring's slots are
//!   `AtomicPtr`s, so the racy slot read a failed steal performs is an
//!   atomic load of a pointer never dereferenced — no torn reads, no
//!   epoch-based reclamation machinery.
//! * Buffers retired by a grow are kept until the deque drops (each grow
//!   doubles, so retired buffers total less than the live one).  A stealer
//!   that loaded the old buffer therefore always reads valid memory; its
//!   subsequent CAS on `top` decides ownership.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Lost a race with another thread; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A ring of `AtomicPtr` slots; capacity is always a power of two.
struct Buffer<T> {
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Buffer {
            slots: (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, index: isize) -> &AtomicPtr<T> {
        &self.slots[index as usize & (self.cap() - 1)]
    }
}

struct Inner<T> {
    /// Next slot the owner pushes to (owner-written only).
    bottom: AtomicIsize,
    /// Next slot thieves steal from (CAS-advanced).
    top: AtomicIsize,
    /// The live ring.
    buffer: AtomicPtr<Buffer<T>>,
    /// Rings retired by grows, freed at drop so in-flight stealers always
    /// read valid memory.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Relaxed);
        let buffer = self.buffer.load(Ordering::Relaxed);
        unsafe {
            // Remaining elements exist exactly once, in the live buffer.
            for index in top..bottom {
                let ptr = (*buffer).slot(index).load(Ordering::Relaxed);
                drop(Box::from_raw(ptr));
            }
            drop(Box::from_raw(buffer));
            for retired in self
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                drop(Box::from_raw(retired));
            }
        }
    }
}

/// The owner end of a work-stealing deque.  `Worker` is `Send` but not
/// `Sync`: exactly one thread pushes and pops.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync` (single owner) while staying `Send`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

/// A handle that steals from the top of a [`Worker`]'s deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Worker<T> {
    /// Create an empty deque (FIFO/LIFO distinction follows crossbeam's
    /// `new_fifo`/`new_lifo`; this deque is LIFO for the owner, like
    /// rayon's).
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Inner {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Box::into_raw(Buffer::new(64))),
                retired: Mutex::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Whether the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        let bottom = self.inner.bottom.load(Ordering::Relaxed);
        let top = self.inner.top.load(Ordering::Relaxed);
        top >= bottom
    }

    /// Push a task onto the owner (bottom) end.
    pub fn push(&self, task: T) {
        let inner = &*self.inner;
        let bottom = inner.bottom.load(Ordering::Relaxed);
        let top = inner.top.load(Ordering::Acquire);
        let mut buffer = inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if bottom - top >= (*buffer).cap() as isize {
                buffer = self.grow(bottom, top, buffer);
            }
            (*buffer)
                .slot(bottom)
                .store(Box::into_raw(Box::new(task)), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        inner.bottom.store(bottom + 1, Ordering::Relaxed);
    }

    /// Pop a task from the owner (bottom) end.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let bottom = inner.bottom.load(Ordering::Relaxed) - 1;
        let buffer = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(bottom, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let top = inner.top.load(Ordering::Relaxed);
        if top <= bottom {
            let ptr = unsafe { (*buffer).slot(bottom).load(Ordering::Relaxed) };
            if top == bottom {
                // Racing thieves for the last element: the CAS on `top`
                // decides ownership either way.
                let won = inner
                    .top
                    .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(bottom + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            Some(unsafe { *Box::from_raw(ptr) })
        } else {
            // Already empty; restore bottom.
            inner.bottom.store(bottom + 1, Ordering::Relaxed);
            None
        }
    }

    /// Double the ring, copying live slots; the old ring is retired (kept
    /// allocated) so concurrent stealers never read freed memory.
    unsafe fn grow(&self, bottom: isize, top: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Box::into_raw(Buffer::new((*old).cap() * 2));
        for index in top..bottom {
            let ptr = (*old).slot(index).load(Ordering::Relaxed);
            (*new).slot(index).store(ptr, Ordering::Relaxed);
        }
        self.inner
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        self.inner.buffer.store(new, Ordering::Release);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Whether the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        let top = self.inner.top.load(Ordering::Acquire);
        let bottom = self.inner.bottom.load(Ordering::Acquire);
        top >= bottom
    }

    /// Steal a task from the top (FIFO) end.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let top = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let bottom = inner.bottom.load(Ordering::Acquire);
        if top < bottom {
            let buffer = inner.buffer.load(Ordering::Acquire);
            // This load may race with the owner overwriting the slot after
            // a wrap — but a wrap past `top` forces a grow first, and a
            // concurrent pop of this element moves `top`; either way the
            // CAS below fails and the pointer is discarded unread.
            let ptr = unsafe { (*buffer).slot(top).load(Ordering::Relaxed) };
            if inner
                .top
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            Steal::Success(unsafe { *Box::from_raw(ptr) })
        } else {
            Steal::Empty
        }
    }
}

/// A shared FIFO queue feeding the worker pool from outside: tasks are
/// pushed by any thread and stolen by idle workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the queue.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Steal the oldest task.  Returns [`Steal::Retry`] when the queue is
    /// momentarily contended rather than blocking the thief.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut queue) => match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
            Err(std::sync::TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of queued tasks at the instant of observation.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(stealer.steal().success(), Some(1)); // oldest
        assert_eq!(worker.pop(), Some(3)); // newest
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert!(stealer.steal().is_empty());
    }

    #[test]
    fn grow_preserves_contents_and_order() {
        let worker: Worker<usize> = Worker::new_lifo();
        let stealer = worker.stealer();
        for i in 0..1000 {
            worker.push(i);
        }
        for i in 0..500 {
            assert_eq!(stealer.steal().success(), Some(i));
        }
        for i in (500..1000).rev() {
            assert_eq!(worker.pop(), Some(i));
        }
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn unconsumed_elements_are_dropped_with_the_deque() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let worker = Worker::new_lifo();
            for _ in 0..100 {
                worker.push(Counted);
            }
            drop(worker.pop()); // one dropped by consumption
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 100);
    }

    /// Stress the owner-pop vs. thief-steal race: every pushed value must
    /// be extracted exactly once across the owner and several thieves.
    #[test]
    fn concurrent_steal_stress_conserves_every_task() {
        const TASKS: usize = 20_000;
        const THIEVES: usize = 3;
        let worker: Worker<usize> = Worker::new_lifo();
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let stealer = worker.stealer();
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    loop {
                        match stealer.steal() {
                            Steal::Success(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                count += 1;
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    count
                })
            })
            .collect();

        let mut owner_count = 0usize;
        for v in 0..TASKS {
            worker.push(v);
            // Interleave pops so the last-element CAS race is exercised.
            if v % 3 == 0 {
                if let Some(got) = worker.pop() {
                    seen[got].fetch_add(1, Ordering::SeqCst);
                    owner_count += 1;
                }
            }
        }
        while let Some(got) = worker.pop() {
            seen[got].fetch_add(1, Ordering::SeqCst);
            owner_count += 1;
        }
        done.store(true, Ordering::SeqCst);
        let stolen: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(owner_count + stolen, TASKS);
        for (v, count) in seen.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "task {v} seen wrong number of times"
            );
        }
    }
}
