//! Work-stealing deques, mirroring the `crossbeam-deque` API.
//!
//! [`Worker`] is the single-owner end of a Chase–Lev deque: the owner
//! pushes and pops at the bottom (LIFO, keeping hot tasks cache-local),
//! while any number of [`Stealer`] handles take from the top (FIFO) — the
//! classic work-stealing discipline, with the C11 orderings of Lê et al.,
//! "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//! [`Injector`] is the shared global queue new work enters through before a
//! worker adopts it.
//!
//! Two deliberate simplifications versus `crossbeam-deque`:
//!
//! * Elements live behind one heap pointer each and the ring's slots are
//!   `AtomicPtr`s, so the racy slot read a failed steal performs is an
//!   atomic load of a pointer never dereferenced — no torn reads, no
//!   epoch-based reclamation machinery.
//! * Buffers retired by a grow are kept allocated until a quiescent point
//!   instead of being epoch-reclaimed: a stealer that loaded the old buffer
//!   always reads valid memory, and its subsequent CAS on `top` decides
//!   ownership.  Retention is bounded (see [`MAX_RETIRED_BUFFERS`]): when a
//!   grow finds more retired generations than the cap and the SeqCst
//!   `active` stealer counter reads zero, no stealer can be holding any
//!   retired pointer (a stealer increments `active` *before* loading the
//!   buffer pointer, so by the SC total order it would either have been
//!   visible to the counter read or load the new buffer), and all retired
//!   generations are freed.
//!
//! Every type is built on the cfg-switched primitives in
//! [`crate::primitives`], so `RUSTFLAGS="--cfg dynmo_loom"` model-checks
//! this exact implementation under the `loom` shim.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::primitives::{
    fence, AtomicIsize, AtomicPtr, AtomicUsize, Mutex, Ordering, TryLockError,
};

/// Retired-buffer generations kept before a quiescent-point reclaim is
/// attempted.  Grows double the ring, so `n` retained generations cost less
/// than `2^-(n-1)` of the live buffer in total — the cap bounds the
/// worst-case footprint at roughly 2x the live ring while keeping reclaims
/// (and their SeqCst counter traffic) rare.
const MAX_RETIRED_BUFFERS: usize = 4;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Lost a race with another thread; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A ring of `AtomicPtr` slots; capacity is always a power of two.
struct Buffer<T> {
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Buffer {
            slots: (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, index: isize) -> &AtomicPtr<T> {
        &self.slots[index as usize & (self.cap() - 1)]
    }

    fn bytes(&self) -> usize {
        self.cap() * std::mem::size_of::<AtomicPtr<T>>()
    }
}

struct Inner<T> {
    /// Next slot the owner pushes to (owner-written only).
    bottom: AtomicIsize,
    /// Next slot thieves steal from (CAS-advanced).
    top: AtomicIsize,
    /// The live ring.
    buffer: AtomicPtr<Buffer<T>>,
    /// Number of stealers currently between their `active` increment and
    /// decrement; the quiescent-point reclaim in [`Worker::grow`] frees
    /// retired rings only when this reads zero under SeqCst.
    active: AtomicUsize,
    /// Rings retired by grows; freed at the next quiescent point once more
    /// than [`MAX_RETIRED_BUFFERS`] accumulate (and always at drop).
    retired: Mutex<Vec<*mut Buffer<T>>>,
    /// Model-check bookkeeping: rings the reclaim has logically freed are
    /// parked here (still allocated) so [`Stealer::steal`] can assert it
    /// never loads one — a reclaim-protocol bug becomes a clean model
    /// failure instead of undefined behavior.  Deliberately a *std* mutex:
    /// it is instrumentation, not part of the modeled protocol.
    #[cfg(dynmo_loom)]
    freed_log: std::sync::Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the raw buffer pointers in `retired` (and `buffer`) own heap
// allocations whose transfer between threads is governed by the Chase–Lev
// protocol above; `T: Send` is required because elements cross threads.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: shared access is exactly the owner/stealer protocol: `bottom` is
// owner-written, `top` is CAS-advanced, buffer retirement is quiescent-point
// gated.  No `&self` method hands out unsynchronized references.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    #[cfg(dynmo_loom)]
    fn assert_not_freed(&self, buffer: *mut Buffer<T>) {
        let freed = self
            .freed_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(
            !freed.contains(&buffer),
            "stealer loaded a reclaimed ring buffer: quiescent-point protocol violated"
        );
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // ORDERING: Relaxed everywhere — `&mut self` proves no other thread
        // still holds a handle, so these loads cannot race.
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Relaxed);
        let buffer = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `&mut self` gives exclusive access to every ring; the
        // individual frees below are each justified at their site.
        unsafe {
            // SAFETY: remaining elements exist exactly once, in the live
            // buffer between `top` and `bottom`; every slot pointer in that
            // range came from `Box::into_raw` in `push` and was never
            // extracted (extraction advances `top` or `bottom` past it).
            for index in top..bottom {
                // ORDERING: Relaxed — exclusive access, nothing to
                // synchronize with.
                let ptr = (*buffer).slot(index).load(Ordering::Relaxed);
                drop(Box::from_raw(ptr));
            }
            // SAFETY: `buffer` came from `Box::into_raw` in `new_lifo` /
            // `grow` and ownership of the live ring ends here.
            drop(Box::from_raw(buffer));
            // SAFETY: retired rings came from `Box::into_raw` in `grow`,
            // hold no element ownership (elements live once, reachable from
            // the live ring), and no stealer can exist during drop.
            for retired in self
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                drop(Box::from_raw(retired));
            }
            #[cfg(dynmo_loom)]
            // SAFETY: under the model checker, "freed" rings are parked in
            // the log instead of dropped (see `freed_log`); they are
            // genuinely released here.
            for parked in self
                .freed_log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .drain(..)
            {
                drop(Box::from_raw(parked));
            }
        }
    }
}

/// The owner end of a work-stealing deque.  `Worker` is `Send` but not
/// `Sync`: exactly one thread pushes and pops.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync` (single owner) while staying `Send`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

/// A handle that steals from the top of a [`Worker`]'s deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Worker<T> {
    /// Create an empty deque (FIFO/LIFO distinction follows crossbeam's
    /// `new_fifo`/`new_lifo`; this deque is LIFO for the owner, like
    /// rayon's).
    pub fn new_lifo() -> Self {
        Self::with_min_capacity(64)
    }

    /// Create an empty deque whose initial ring holds at least `cap`
    /// elements (rounded up to a power of two).  Small capacities make
    /// buffer growth reachable within a handful of operations, which the
    /// loom model-check suite depends on; production callers want the
    /// [`Worker::new_lifo`] default.
    pub fn with_min_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        Worker {
            inner: Arc::new(Inner {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
                active: AtomicUsize::new(0),
                retired: Mutex::new(Vec::new()),
                #[cfg(dynmo_loom)]
                freed_log: std::sync::Mutex::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Whether the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        // ORDERING: Relaxed — an emptiness probe is advisory by nature; the
        // caller must tolerate staleness in either direction, and the owner
        // reads its own `bottom` writes regardless.
        let bottom = self.inner.bottom.load(Ordering::Relaxed);
        let top = self.inner.top.load(Ordering::Relaxed);
        top >= bottom
    }

    /// Bytes currently held by retired (not yet reclaimed) ring buffers.
    /// Exposed so tests and telemetry can bound the retention backlog.
    pub fn retired_bytes(&self) -> usize {
        self.inner
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            // SAFETY: pointers in `retired` stay allocated until drained by
            // the reclaim in `grow` or by `Inner::drop`, both of which hold
            // this same lock; holding it here keeps them alive.
            .map(|&retired| unsafe { (*retired).bytes() })
            .sum()
    }

    /// Number of retired (not yet reclaimed) ring buffers.
    pub fn retired_generations(&self) -> usize {
        self.inner
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Push a task onto the owner (bottom) end.
    pub fn push(&self, task: T) {
        let inner = &*self.inner;
        // ORDERING: Relaxed — only the owner writes `bottom`, and this is
        // the owner reading its own last write.
        let bottom = inner.bottom.load(Ordering::Relaxed);
        // ORDERING: Acquire pairs with the stealers' SeqCst CAS on `top`:
        // observing an advanced `top` here must also make the thieves'
        // consumption of those slots visible before the owner reuses them.
        let top = inner.top.load(Ordering::Acquire);
        // ORDERING: Relaxed — only the owner stores `buffer` (in `grow`);
        // this is the owner reading its own last write.
        let mut buffer = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` is the live ring (owner-only writes); the grow
        // and slot store inside are each justified at their site.
        unsafe {
            if bottom - top >= (*buffer).cap() as isize {
                // SAFETY: `bottom`/`top` were read above and only the owner
                // moves `bottom`; `buffer` is the live ring.
                buffer = self.grow(bottom, top, buffer);
            }
            // SAFETY: the ring has a free slot at `bottom` (grown above if
            // needed); stealers never read past `bottom`, which is not yet
            // published to include this slot.
            (*buffer)
                .slot(bottom)
                // ORDERING: Relaxed — publication of the slot's contents is
                // ordered by the Release fence below, before the `bottom`
                // store that makes the slot visible to thieves.
                .store(Box::into_raw(Box::new(task)), Ordering::Relaxed);
        }
        // Publishes the slot store above to any thief whose Acquire load of
        // `bottom` observes the new value.
        fence(Ordering::Release);
        // ORDERING: Relaxed — made visible by the Release fence above; Lê
        // et al. fig. 1 uses exactly this fence+relaxed-store pair.
        inner.bottom.store(bottom + 1, Ordering::Relaxed);
    }

    /// Pop a task from the owner (bottom) end.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        // ORDERING: Relaxed — owner reads its own `bottom` write.
        let bottom = inner.bottom.load(Ordering::Relaxed) - 1;
        // ORDERING: Relaxed — owner reads its own `buffer` write.
        let buffer = inner.buffer.load(Ordering::Relaxed);
        // ORDERING: Relaxed — the SeqCst fence below globally orders this
        // reservation against the thieves' steal sequence.
        inner.bottom.store(bottom, Ordering::Relaxed);
        // The heart of Chase–Lev: totally orders the owner's `bottom`
        // reservation against every thief's `top` read (their SeqCst fence
        // in `steal`), so owner and thief cannot both miss each other on
        // the last element.
        fence(Ordering::SeqCst);
        // ORDERING: Relaxed — ordered by the SeqCst fence above.
        let top = inner.top.load(Ordering::Relaxed);
        if top <= bottom {
            // SAFETY: `bottom` was reserved above, so no thief will read
            // slot `bottom` unless it already advanced `top` past it — and
            // then the CAS below fails and we do not use `ptr`.
            // ORDERING: Relaxed — the slot was written by this same thread
            // in `push` (program order suffices).
            let ptr = unsafe { (*buffer).slot(bottom).load(Ordering::Relaxed) };
            if top == bottom {
                // Racing thieves for the last element: the CAS on `top`
                // decides ownership either way.
                // ORDERING: SeqCst success keeps the last-element handoff in
                // the single total order with both SeqCst fences; Relaxed
                // failure is enough because losing means a thief's SeqCst
                // CAS already won and we discard `ptr` unread.
                let won = inner
                    .top
                    .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // ORDERING: Relaxed — un-reserving; only the owner reads
                // `bottom` non-advisorily.
                inner.bottom.store(bottom + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            // SAFETY: ownership of the element at `bottom` is decided: the
            // fast path reserved it below every thief's reach, and the
            // last-element path won the CAS.  `ptr` came from `Box::into_raw`
            // in `push` and is extracted exactly once.
            Some(unsafe { *Box::from_raw(ptr) })
        } else {
            // Already empty; restore bottom.
            // ORDERING: Relaxed — owner-only bookkeeping.
            inner.bottom.store(bottom + 1, Ordering::Relaxed);
            None
        }
    }

    /// Double the ring, copying live slots; the old ring is retired (kept
    /// allocated) so concurrent stealers never read freed memory, and the
    /// backlog is reclaimed at a quiescent point (no active stealers) once
    /// it exceeds [`MAX_RETIRED_BUFFERS`] generations.
    ///
    /// # Safety
    ///
    /// Caller must be the owner thread, `bottom`/`top` must be the values
    /// just read in `push`, and `old` must be the live ring.
    unsafe fn grow(&self, bottom: isize, top: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Box::into_raw(Buffer::new((*old).cap() * 2));
        for index in top..bottom {
            // ORDERING: Relaxed on both — the owner wrote every live slot
            // (or copied it in an earlier grow) and is the only writer of
            // slots; thieves that race with the copy re-check via their CAS
            // on `top`.
            let ptr = (*old).slot(index).load(Ordering::Relaxed);
            (*new).slot(index).store(ptr, Ordering::Relaxed);
        }
        self.inner
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        // ORDERING: SeqCst (not merely Release) — the quiescent-point
        // reclaim below argues in the SC total order: any stealer whose
        // `active` increment is ordered after the counter read here must
        // also order its `buffer` load after this store, so it can only
        // load the new ring, never a reclaimed one.
        self.inner.buffer.store(new, Ordering::SeqCst);
        self.reclaim_retired();
        new
    }

    /// Free every retired ring if the backlog exceeds the cap and no
    /// stealer is active (Dekker-style SC argument; see `grow`).
    fn reclaim_retired(&self) {
        let mut retired = self.inner.retired.lock().unwrap_or_else(|e| e.into_inner());
        if retired.len() <= MAX_RETIRED_BUFFERS {
            return;
        }
        // ORDERING: SeqCst — pairs with the stealers' SeqCst `active`
        // increment/decrement and the SeqCst `buffer` store above; reading
        // zero here proves every stealer either completed (its loads are
        // done) or will increment after this read, forcing its subsequent
        // SeqCst `buffer` load to observe the new ring.
        if self.inner.active.load(Ordering::SeqCst) != 0 {
            return;
        }
        for old in retired.drain(..) {
            #[cfg(dynmo_loom)]
            // Under the model checker, park instead of freeing so a
            // protocol violation is a caught assertion, not UB.
            self.inner
                .freed_log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(old);
            #[cfg(not(dynmo_loom))]
            // SAFETY: `old` came from `Box::into_raw` in `grow`, owns no
            // elements (the live ring does), is no longer reachable from
            // `buffer` (overwritten by a later SeqCst store), and the
            // quiescence check above proves no stealer still holds it.
            unsafe {
                drop(Box::from_raw(old))
            };
        }
    }
}

impl<T: Send> Stealer<T> {
    /// Whether the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        // ORDERING: Acquire on both so the probe observes a consistent
        // prefix of the owner's publications; still only advisory.
        let top = self.inner.top.load(Ordering::Acquire);
        let bottom = self.inner.bottom.load(Ordering::Acquire);
        top >= bottom
    }

    /// Steal a task from the top (FIFO) end.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        // ORDERING: SeqCst — announces this stealer to the quiescent-point
        // reclaim *before* the `buffer` load below; see `reclaim_retired`.
        inner.active.fetch_add(1, Ordering::SeqCst);
        let result = self.steal_inner();
        // ORDERING: SeqCst — the matching retreat; after this the stealer
        // holds no ring pointer, so a reclaim observing zero may free.
        inner.active.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn steal_inner(&self) -> Steal<T> {
        let inner = &*self.inner;
        // ORDERING: Acquire pairs with competing thieves' SeqCst CAS on
        // `top` so a successful earlier steal's consumption is visible.
        let top = inner.top.load(Ordering::Acquire);
        // Totally orders this thief's `bottom` read against the owner's
        // `bottom` reservation in `pop` (its SeqCst fence).
        fence(Ordering::SeqCst);
        // ORDERING: Acquire pairs with the owner's Release fence in `push`,
        // making the slot contents for everything below `bottom` visible.
        let bottom = inner.bottom.load(Ordering::Acquire);
        if top < bottom {
            // ORDERING: SeqCst — must observe at least the ring published
            // by the SeqCst store in any `grow` whose reclaim could not see
            // our `active` increment; Acquire would allow an older (possibly
            // reclaimed) ring.  See `reclaim_retired`.
            let buffer = inner.buffer.load(Ordering::SeqCst);
            #[cfg(dynmo_loom)]
            self.inner.assert_not_freed(buffer);
            // This load may race with the owner overwriting the slot after
            // a wrap — but a wrap past `top` forces a grow first, and a
            // concurrent pop of this element moves `top`; either way the
            // CAS below fails and the pointer is discarded unread.
            // SAFETY: `buffer` is the live ring or a retired-but-retained
            // one (the `active` counter blocks reclaim while we hold it);
            // either way the allocation is valid and the slot read is an
            // atomic pointer load, never a dereference.
            // ORDERING: Relaxed slot load — the value is used only if the
            // CAS below succeeds, whose SeqCst success edge (with the
            // owner's Release fence in `push`) orders the slot write before
            // this read.
            let ptr = unsafe { (*buffer).slot(top).load(Ordering::Relaxed) };
            if inner
                .top
                // ORDERING: SeqCst success joins the total order deciding
                // element ownership against `pop`'s CAS and both SeqCst
                // fences; Relaxed failure — losers discard `ptr` unread.
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            // SAFETY: the CAS advanced `top` over this element, so this
            // thief owns it exclusively; `ptr` came from `Box::into_raw` in
            // `push` and is extracted exactly once.
            Steal::Success(unsafe { *Box::from_raw(ptr) })
        } else {
            Steal::Empty
        }
    }
}

/// A shared FIFO queue feeding the worker pool from outside: tasks are
/// pushed by any thread and stolen by idle workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the queue.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Steal the oldest task.  Returns [`Steal::Retry`] when the queue is
    /// momentarily contended rather than blocking the thief.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut queue) => match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
            Err(TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of queued tasks at the instant of observation.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(stealer.steal().success(), Some(1)); // oldest
        assert_eq!(worker.pop(), Some(3)); // newest
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert!(stealer.steal().is_empty());
    }

    #[test]
    fn grow_preserves_contents_and_order() {
        let worker: Worker<usize> = Worker::new_lifo();
        let stealer = worker.stealer();
        for i in 0..1000 {
            worker.push(i);
        }
        for i in 0..500 {
            assert_eq!(stealer.steal().success(), Some(i));
        }
        for i in (500..1000).rev() {
            assert_eq!(worker.pop(), Some(i));
        }
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn unconsumed_elements_are_dropped_with_the_deque() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let worker = Worker::new_lifo();
            for _ in 0..100 {
                worker.push(Counted);
            }
            drop(worker.pop()); // one dropped by consumption
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 100);
    }

    /// Regression for unbounded retired-buffer retention: repeated grows
    /// with no stealer in flight must reclaim at the quiescent point, so
    /// the retained backlog stays under the generation cap and the
    /// retained bytes stay a small multiple of the live ring.
    #[test]
    fn retired_buffers_are_bounded_across_grows() {
        let worker: Worker<usize> = Worker::with_min_capacity(2);
        let mut peak_generations = 0;
        let mut peak_bytes = 0;
        // 2 -> 4 -> ... -> 2^14: thirteen grows, enough to trip the cap
        // several times over.
        for i in 0..(1 << 13) {
            worker.push(i);
            peak_generations = peak_generations.max(worker.retired_generations());
            peak_bytes = peak_bytes.max(worker.retired_bytes());
        }
        assert!(
            peak_generations <= MAX_RETIRED_BUFFERS + 1,
            "retention cap breached: {peak_generations} generations retained"
        );
        // Retained generations are the geometric tail below the live ring:
        // with the cap they can never exceed the live ring's own size.
        let live_bytes = (1usize << 13) * std::mem::size_of::<AtomicPtr<usize>>();
        assert!(
            peak_bytes <= live_bytes,
            "retained {peak_bytes} bytes exceeds live ring {live_bytes}"
        );
        // Quiescent reclaim actually ran: the backlog ends below the cap.
        assert!(worker.retired_generations() <= MAX_RETIRED_BUFFERS);
        // Contents survived every grow + reclaim.
        for i in (0..(1 << 13)).rev() {
            assert_eq!(worker.pop(), Some(i));
        }
    }

    /// An in-flight stealer must block the quiescent-point reclaim (the
    /// `active` counter is what keeps its loaded ring alive).
    #[test]
    fn reclaim_is_blocked_while_a_stealer_is_active() {
        let worker: Worker<usize> = Worker::with_min_capacity(2);
        let stealer = worker.stealer();
        // Hold `active` high by running steals concurrently with grows.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thief = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    if stealer.steal().success().is_some() {
                        got += 1;
                    }
                }
                got
            })
        };
        let mut owner_got = 0usize;
        for i in 0..(1 << 12) {
            worker.push(i);
        }
        while worker.pop().is_some() {
            owner_got += 1;
        }
        stop.store(true, Ordering::SeqCst);
        let stolen = thief.join().unwrap();
        assert_eq!(owner_got + stolen, 1 << 12);
    }

    /// Stress the owner-pop vs. thief-steal race: every pushed value must
    /// be extracted exactly once across the owner and several thieves.
    #[test]
    fn concurrent_steal_stress_conserves_every_task() {
        const TASKS: usize = 20_000;
        const THIEVES: usize = 3;
        let worker: Worker<usize> = Worker::new_lifo();
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let stealer = worker.stealer();
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    loop {
                        match stealer.steal() {
                            Steal::Success(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                count += 1;
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    count
                })
            })
            .collect();

        let mut owner_count = 0usize;
        for v in 0..TASKS {
            worker.push(v);
            // Interleave pops so the last-element CAS race is exercised.
            if v % 3 == 0 {
                if let Some(got) = worker.pop() {
                    seen[got].fetch_add(1, Ordering::SeqCst);
                    owner_count += 1;
                }
            }
        }
        while let Some(got) = worker.pop() {
            seen[got].fetch_add(1, Ordering::SeqCst);
            owner_count += 1;
        }
        done.store(true, Ordering::SeqCst);
        let stolen: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(owner_count + stolen, TASKS);
        for (v, count) in seen.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "task {v} seen wrong number of times"
            );
        }
    }
}
