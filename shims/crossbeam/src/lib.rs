//! Minimal stand-in for the parts of the `crossbeam` family the workspace
//! uses: multi-consumer channels (`crossbeam::channel`) and work-stealing
//! deques (`crossbeam::deque`).
//!
//! The channel is its own `Mutex<VecDeque>` + `Condvar` queue rather than a
//! wrapper over `std::sync::mpsc`: crossbeam receivers are cloneable and
//! shareable across threads, and — crucially for the worker pool built on
//! top — a receiver parked in [`channel::Receiver::recv`] must not hold any
//! lock while it waits, or one blocked consumer would starve every other.
//! The condvar releases the queue lock for the whole park, so any number of
//! consumers can block, poll, and drain concurrently.
//!
//! The [`deque`] module provides Chase–Lev-style work-stealing deques
//! (single-owner LIFO end, multi-thief FIFO end) plus a shared FIFO
//! [`deque::Injector`], mirroring `crossbeam-deque`'s API surface.  The
//! `rayon` shim's thread pool is built on these primitives.

#![warn(missing_docs)]

pub mod deque;
pub(crate) mod primitives;

/// Multi-producer multi-consumer channels with timeouts (the
/// `crossbeam::channel` surface the workspace uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;
    // LINT: allow(wall-clock) — Instant feeds only `recv_timeout` deadline
    // arithmetic, never message contents or artifact data.
    use std::time::{Duration, Instant};

    use crate::primitives::{Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake every parked receiver so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel (cloneable, like
    /// crossbeam's).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`] — distinct from
    /// [`RecvTimeoutError`], matching real crossbeam: an empty channel is
    /// not a timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.  The
        /// queue lock is released for the whole wait, so other receivers
        /// (and senders) are never starved by a parked consumer.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block up to `timeout` for the next message.  Like
        /// [`Receiver::recv`], the lock is not held while parked.
        // Deadline bookkeeping is a sanctioned wall-clock use (see
        // clippy.toml) — the reading never reaches message contents.
        #[allow(clippy::disallowed_methods)]
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            // LINT: allow(wall-clock) — deadline bookkeeping only.
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                // LINT: allow(wall-clock) — deadline bookkeeping only.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Receive without blocking, if a message is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Timeout
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            drop(tx);
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        }

        #[test]
        fn send_fails_once_all_receivers_are_gone() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(1).unwrap();
            drop(rx2);
            assert_eq!(tx.send(2).unwrap_err(), SendError(2));
        }

        #[test]
        fn receiver_is_cloneable_across_threads() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let handle = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(42u64).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }

        /// The regression the rework exists for: a receiver parked in a
        /// blocking `recv` must not hold the queue lock, or every other
        /// consumer (even non-blocking `try_recv`) deadlocks behind it.
        #[test]
        // Test needs real sleeps to let the other thread actually park.
        #[allow(clippy::disallowed_methods)]
        fn parked_receiver_does_not_starve_other_consumers() {
            let (tx, rx) = unbounded::<u32>();
            let rx_parked = rx.clone();
            let parked = std::thread::spawn(move || rx_parked.recv().unwrap());
            // Give the thread time to park inside recv().
            std::thread::sleep(Duration::from_millis(50));
            // With the old Mutex-over-recv design this call blocked until
            // the parked receiver returned; now it must answer immediately.
            // LINT: allow(wall-clock) — test-only latency bound.
            let start = Instant::now();
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
            assert!(start.elapsed() < Duration::from_millis(500));
            tx.send(9).unwrap();
            assert_eq!(parked.join().unwrap(), 9);
        }

        #[test]
        // Test needs a real sleep to let the receivers actually park.
        #[allow(clippy::disallowed_methods)]
        fn two_parked_receivers_each_get_a_message() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)).unwrap())
                })
                .collect();
            std::thread::sleep(Duration::from_millis(20));
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
