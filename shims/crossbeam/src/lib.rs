//! Minimal stand-in for `crossbeam`'s channel module, built on
//! `std::sync::mpsc`.
//!
//! Crossbeam receivers are cloneable and shareable across threads; std's are
//! not, so the shim wraps the receiver in `Arc<Mutex<..>>`.  The runtime
//! fabric uses one receiver per rank with modest message rates, so the extra
//! lock is irrelevant to the simulation results.

#![warn(missing_docs)]

/// Multi-producer channels with timeouts (the `crossbeam::channel` surface
/// the workspace uses).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel (cloneable, like
    /// crossbeam's).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Block up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receive without blocking, if a message is already queued.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Timeout
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }

        #[test]
        fn receiver_is_cloneable_across_threads() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let handle = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(42u64).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }
    }
}
