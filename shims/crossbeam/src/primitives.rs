//! cfg-switched concurrency primitives.
//!
//! Normal builds alias straight to `std::sync`; building the workspace with
//! `RUSTFLAGS="--cfg dynmo_loom"` swaps every primitive the deque and
//! channel are made of for its `loom` model-checked twin, so the loom test
//! suites explore all interleavings of the *real* implementation code, not
//! a copy.  The loom types degrade to plain std behavior when constructed
//! outside a `loom::model` closure, so the ordinary unit/stress tests keep
//! working under either cfg.

#[cfg(dynmo_loom)]
pub(crate) use loom::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
#[cfg(dynmo_loom)]
pub(crate) use loom::sync::{Condvar, Mutex, TryLockError};

#[cfg(not(dynmo_loom))]
pub(crate) use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
#[cfg(not(dynmo_loom))]
pub(crate) use std::sync::{Condvar, Mutex, TryLockError};
