//! MPMC stress tests for the channel: many producers and many consumers
//! hammering one unbounded channel, checking conservation (every message
//! delivered exactly once) and clean disconnection.  Runs under the normal
//! cfg and under `--cfg dynmo_loom` (where the loom types degrade to std
//! behavior outside a model).

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, RecvTimeoutError};

#[test]
fn mpmc_stress_conserves_every_message() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: usize = 5_000;

    let (tx, rx) = unbounded::<usize>();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.send(p * PER_PRODUCER + i).unwrap();
                }
            })
        })
        .collect();
    // Drop the original so the channel disconnects once producers finish.
    drop(tx);

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);

    for p in producers {
        p.join().unwrap();
    }
    let mut seen = HashSet::new();
    let mut total = 0usize;
    for c in consumers {
        for v in c.join().unwrap() {
            assert!(seen.insert(v), "message {v} delivered twice");
            total += 1;
        }
    }
    assert_eq!(total, PRODUCERS * PER_PRODUCER, "messages lost");
}

#[test]
fn mpmc_timeout_consumers_drain_bursty_producers() {
    const CONSUMERS: usize = 3;
    const MESSAGES: usize = 3_000;

    let (tx, rx) = unbounded::<usize>();
    let delivered = Arc::new(AtomicUsize::new(0));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let rx = rx.clone();
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || loop {
                match rx.recv_timeout(std::time::Duration::from_secs(10)) {
                    Ok(_) => {
                        delivered.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {
                        panic!("spurious timeout with live senders")
                    }
                }
            })
        })
        .collect();
    drop(rx);

    // Bursty producer: batches separated by yields so consumers park and
    // re-wake repeatedly.
    for burst in 0..30 {
        for i in 0..(MESSAGES / 30) {
            tx.send(burst * 100 + i).unwrap();
        }
        std::thread::yield_now();
    }
    drop(tx);

    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(delivered.load(Ordering::SeqCst), MESSAGES);
}
