//! Exhaustive model checks of the MPMC channel under the `loom` shim.
//!
//! Build with `RUSTFLAGS="--cfg dynmo_loom"`.  The channel's whole reason to
//! exist (see `lib.rs`) is the park/unpark discipline: a receiver blocked in
//! `recv` must hold no lock while parked, and no notify may be lost between
//! the emptiness check and the park.  These tests explore every interleaving
//! of that protocol; `mutation_*` proves the model has teeth by seeding the
//! pre-rework bug (mutex held across the park) into a faithful mirror and
//! requiring a reported deadlock.
#![cfg(dynmo_loom)]

use crossbeam::channel::{unbounded, RecvError, TryRecvError};

/// Run `body` under the model expecting a failure; returns the panic text.
fn expect_model_failure(body: impl Fn() + Send + Sync + 'static) -> String {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loom::model(body);
    }));
    match result {
        Ok(_) => panic!("model unexpectedly passed"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("non-string model failure payload")
            }
        }
    }
}

/// One sender, one parked receiver: in every interleaving — receiver checks
/// first and parks, or the send lands first — the message arrives.  A lost
/// wakeup would park the receiver forever and be reported as a deadlock.
#[test]
fn send_never_loses_the_wakeup() {
    let report = loom::model(|| {
        let (tx, rx) = unbounded::<u32>();
        let receiver = loom::thread::spawn(move || rx.recv());
        tx.send(7).unwrap();
        assert_eq!(receiver.join().unwrap(), Ok(7));
    });
    println!(
        "send/recv no-lost-wakeup: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// Dropping the last sender must wake a parked receiver into `RecvError`
/// (disconnection is delivered through the same condvar as data).
#[test]
fn disconnect_wakes_parked_receiver() {
    let report = loom::model(|| {
        let (tx, rx) = unbounded::<u32>();
        let receiver = loom::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(receiver.join().unwrap(), Err(RecvError));
    });
    println!(
        "disconnect-wakes-receiver: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// Two parked receivers, two messages: `notify_one` routing must deliver
/// both messages whichever waiter each notify picks (the model branches over
/// the waiter choice).
#[test]
fn two_receivers_both_get_a_message() {
    let report = loom::Builder {
        preemption_bound: Some(2),
        ..loom::Builder::new()
    }
    .check(|| {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let first = loom::thread::spawn(move || rx.recv().unwrap());
        let second = loom::thread::spawn(move || rx2.recv().unwrap());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut got = vec![first.join().unwrap(), second.join().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "a message was lost or duplicated");
    });
    println!(
        "two-receivers-two-messages: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// The regression the rework fixed, as a model property: while one receiver
/// is parked in `recv`, a sibling's `try_recv` must complete (the park holds
/// no lock).  If the parked receiver kept the queue lock, `try_recv` would
/// block behind it and the model would report the deadlock.
#[test]
fn parked_receiver_does_not_block_try_recv() {
    let report = loom::model(|| {
        let (tx, rx) = unbounded::<u32>();
        let rx_parked = rx.clone();
        let parked = loom::thread::spawn(move || rx_parked.recv().unwrap());
        // Runs concurrently with the parked receiver; must always return.
        let result = rx.try_recv();
        assert!(matches!(result, Err(TryRecvError::Empty) | Ok(9)));
        if result.is_err() {
            tx.send(9).unwrap();
            assert_eq!(parked.join().unwrap(), 9);
        } else {
            // try_recv raced the send below it in program order — impossible
            // here since we had not sent yet.
            unreachable!("received before any send");
        }
    });
    println!(
        "parked-receiver-try-recv: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

// ---------------------------------------------------------------------------
// Mutation teeth-check: mirror of the recv park protocol, with the
// pre-rework bug (mutex held across the park) seeded back in.
// ---------------------------------------------------------------------------

mod mirror {
    //! The park/unpark skeleton of `channel::Receiver::recv`, with the data
    //! queue reduced to an `Option<u32>` in a mutex.  `recv_holding_lock`
    //! reintroduces the bug the rework removed: the receiver keeps the
    //! queue mutex and parks on a condvar tied to a *different* mutex, so
    //! the sender can never acquire the queue and deliver — exactly the
    //! shape of a lock held across a park.

    use loom::sync::{Arc, Condvar, Mutex};

    pub struct Mirror {
        pub queue: Mutex<Option<u32>>,
        pub ready: Condvar,
        pub side: Mutex<()>,
    }

    impl Mirror {
        pub fn new() -> Arc<Self> {
            Arc::new(Mirror {
                queue: Mutex::new(None),
                ready: Condvar::new(),
                side: Mutex::new(()),
            })
        }

        pub fn send(&self, value: u32) {
            *self.queue.lock().unwrap() = Some(value);
            self.ready.notify_one();
        }

        /// Faithful protocol: the condvar atomically releases the queue
        /// mutex for the whole park.
        pub fn recv(&self) -> u32 {
            let mut queue = self.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.take() {
                    return value;
                }
                queue = self.ready.wait(queue).unwrap();
            }
        }

        /// Seeded mutation: park on a side mutex while still holding the
        /// queue mutex.
        pub fn recv_holding_lock(&self) -> u32 {
            let mut queue = self.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.take() {
                    return value;
                }
                let side = self.side.lock().unwrap();
                drop(self.ready.wait(side).unwrap());
            }
        }
    }
}

/// Faithful mirror passes exhaustively.
#[test]
fn mutation_baseline_park_releases_lock() {
    let report = loom::model(|| {
        let channel = mirror::Mirror::new();
        let receiver = {
            let channel = loom::sync::Arc::clone(&channel);
            loom::thread::spawn(move || channel.recv())
        };
        channel.send(5);
        assert_eq!(receiver.join().unwrap(), 5);
    });
    println!(
        "mirror baseline: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated);
}

/// Seeded mutation #2 (mutex held across the park — the pre-PR-6 channel
/// bug): the model must report the deadlock where the parked receiver still
/// owns the queue mutex the sender needs.
#[test]
fn mutation_lock_held_across_park_is_caught() {
    let failure = expect_model_failure(|| {
        let channel = mirror::Mirror::new();
        let receiver = {
            let channel = loom::sync::Arc::clone(&channel);
            loom::thread::spawn(move || channel.recv_holding_lock())
        };
        channel.send(5);
        assert_eq!(receiver.join().unwrap(), 5);
    });
    println!("mutation #2 caught: {failure}");
    assert!(
        failure.contains("deadlock"),
        "expected a reported deadlock, got: {failure}"
    );
}
