//! Exhaustive model checks of the Chase–Lev deque under the `loom` shim.
//!
//! Build with `RUSTFLAGS="--cfg dynmo_loom"`; under the normal cfg this file
//! compiles to nothing.  Each test prints the number of interleavings the
//! model explored so CI logs show the state space was actually covered.
//!
//! The `mutation_*` tests are the teeth-check required by the issue: a
//! faithful mirror of the deque's publication protocol passes exhaustively,
//! and a seeded memory-ordering downgrade (the classic Acquire→Relaxed slip
//! in `steal`) is proven to make the model fail.
#![cfg(dynmo_loom)]

use std::collections::HashSet;
use std::sync::{Arc, Mutex as StdMutex};

use crossbeam::deque::{Steal, Worker};

/// Run `body` under the model expecting a failure; returns the panic text.
fn expect_model_failure(body: impl Fn() + Send + Sync + 'static) -> String {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loom::model(body);
    }));
    match result {
        Ok(_) => panic!("model unexpectedly passed"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("non-string model failure payload")
            }
        }
    }
}

/// The fundamental Chase–Lev race: owner pop and thief steal compete for the
/// last element.  Exactly one must win in every interleaving, and both
/// outcomes must be reachable.
#[test]
fn last_element_goes_to_exactly_one_of_pop_and_steal() {
    let outcomes: Arc<StdMutex<HashSet<&'static str>>> = Arc::default();
    let seen = Arc::clone(&outcomes);
    let report = loom::Builder {
        preemption_bound: Some(3),
        ..loom::Builder::new()
    }
    .check(move || {
        let worker = Worker::with_min_capacity(2);
        worker.push(41usize);
        let stealer = worker.stealer();
        let thief = loom::thread::spawn(move || stealer.steal().success());
        let popped = worker.pop();
        let stolen = thief.join().unwrap();
        assert_eq!(
            popped.is_some() as usize + stolen.is_some() as usize,
            1,
            "last element must be extracted exactly once (popped={popped:?} stolen={stolen:?})"
        );
        assert_eq!(popped.or(stolen), Some(41));
        seen.lock()
            .unwrap()
            .insert(if popped.is_some() { "owner" } else { "thief" });
    });
    println!(
        "pop-vs-steal last element: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
    let outcomes = outcomes.lock().unwrap();
    assert!(outcomes.contains("owner"), "owner never won the race");
    assert!(outcomes.contains("thief"), "thief never won the race");
}

/// Two elements, concurrent pop and steal: every element is extracted
/// exactly once across both ends, in every interleaving.
#[test]
fn pop_and_steal_conserve_two_elements() {
    let report = loom::Builder {
        preemption_bound: Some(2),
        ..loom::Builder::new()
    }
    .check(|| {
        let worker = Worker::with_min_capacity(2);
        worker.push(1usize);
        worker.push(2usize);
        let stealer = worker.stealer();
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                match stealer.steal() {
                    Steal::Success(v) => got.push(v),
                    Steal::Empty | Steal::Retry => {}
                }
            }
            got
        });
        let mut got = Vec::new();
        while let Some(v) = worker.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "elements lost or duplicated");
    });
    println!(
        "two-element conservation: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// Buffer growth racing a steal: the owner's push doubles the ring (retiring
/// the old buffer) while a thief holds a pointer to the old one.  The retire
/// list (not freeing) plus the top CAS must keep every element intact; the
/// freed-log assertion inside `steal` additionally proves the quiescent
/// reclaim never frees a ring a stealer can still observe.
#[test]
fn growth_during_steal_preserves_elements() {
    let report = loom::Builder {
        preemption_bound: Some(2),
        ..loom::Builder::new()
    }
    .check(|| {
        let worker = Worker::with_min_capacity(2);
        worker.push(1usize);
        worker.push(2usize); // ring now full (cap 2)
        let stealer = worker.stealer();
        let thief = loom::thread::spawn(move || stealer.steal().success());
        worker.push(3usize); // forces grow while the thief may hold the old ring
        let mut got = Vec::new();
        while let Some(v) = worker.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "growth lost or duplicated an element");
    });
    println!(
        "growth-during-steal: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

// ---------------------------------------------------------------------------
// Mutation teeth-check: a faithful mirror of the deque's publication protocol
// passes; seeded ordering downgrades must fail.
// ---------------------------------------------------------------------------

mod mirror {
    //! A value-carrying mirror of the push/steal publication protocol (the
    //! exact fence/ordering skeleton of `deque.rs`, with `usize` slots in
    //! place of pointers so a visibility bug shows up as a wrong value
    //! instead of undefined behavior).  The `steal_bottom` ordering is a
    //! parameter so the mutation test can downgrade exactly one edge.

    use loom::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

    pub struct Mirror {
        bottom: AtomicIsize,
        top: AtomicIsize,
        slots: [AtomicUsize; 4],
    }

    pub const EMPTY: usize = 0;

    impl Mirror {
        pub fn new() -> Self {
            Mirror {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                slots: [
                    AtomicUsize::new(EMPTY),
                    AtomicUsize::new(EMPTY),
                    AtomicUsize::new(EMPTY),
                    AtomicUsize::new(EMPTY),
                ],
            }
        }

        /// `Worker::push` skeleton: relaxed slot store published by a
        /// Release fence before the relaxed `bottom` store.
        pub fn push(&self, value: usize) {
            let bottom = self.bottom.load(Ordering::Relaxed);
            self.slots[(bottom & 3) as usize].store(value, Ordering::Relaxed);
            fence(Ordering::Release);
            self.bottom.store(bottom + 1, Ordering::Relaxed);
        }

        /// `Stealer::steal` skeleton.  The faithful protocol loads `bottom`
        /// with Acquire (pairing with the push-side Release fence); the
        /// mutation passes Relaxed here, which permits stealing a slot whose
        /// contents are not yet visible.
        pub fn steal(&self, bottom_order: Ordering) -> Option<usize> {
            let top = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let bottom = self.bottom.load(bottom_order);
            if top < bottom {
                let value = self.slots[(top & 3) as usize].load(Ordering::Relaxed);
                if self
                    .top
                    .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    return Some(value);
                }
            }
            None
        }
    }
}

/// Faithful mirror: the Acquire `bottom` load makes the pushed value visible
/// before the steal can observe the published index — in every interleaving.
#[test]
fn mutation_baseline_acquire_steal_is_correct() {
    let report = loom::model(|| {
        let deque = loom::sync::Arc::new(mirror::Mirror::new());
        let thief = {
            let deque = loom::sync::Arc::clone(&deque);
            loom::thread::spawn(move || deque.steal(loom::sync::atomic::Ordering::Acquire))
        };
        deque.push(41);
        if let Some(stolen) = thief.join().unwrap() {
            assert_ne!(stolen, mirror::EMPTY, "stole an unpublished slot");
            assert_eq!(stolen, 41);
        }
    });
    println!(
        "mirror baseline: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated);
}

/// Seeded mutation #1 (Acquire→Relaxed downgrade on steal's `bottom` load,
/// the deque analogue of dropping the Lê et al. read fence): the model must
/// find the interleaving where the thief observes the new `bottom` but stale
/// slot contents.
#[test]
fn mutation_relaxed_steal_bottom_load_is_caught() {
    let failure = expect_model_failure(|| {
        let deque = loom::sync::Arc::new(mirror::Mirror::new());
        let thief = {
            let deque = loom::sync::Arc::clone(&deque);
            loom::thread::spawn(move || deque.steal(loom::sync::atomic::Ordering::Relaxed))
        };
        deque.push(41);
        if let Some(stolen) = thief.join().unwrap() {
            assert_ne!(stolen, mirror::EMPTY, "stole an unpublished slot");
            assert_eq!(stolen, 41);
        }
    });
    println!("mutation #1 caught: {failure}");
    assert!(
        failure.contains("stole an unpublished slot"),
        "unexpected failure mode: {failure}"
    );
}
