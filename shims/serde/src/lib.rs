//! Minimal API-compatible stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the small surface the workspace actually uses: the `Serialize` /
//! `Deserialize` traits (importable alongside the derive macros of the same
//! names) and a self-describing [`Value`] tree that `serde_json`'s shim
//! renders and parses.  Unlike real serde there is no
//! `Serializer`/`Deserializer` abstraction: `Serialize` converts directly
//! into a [`Value`], and `Deserialize` reconstructs a type from a [`Value`].
//!
//! Swapping this for the real crate is a one-line change in the workspace
//! manifest; the derive invocations and trait imports are source-compatible.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
///
/// The derive macro (`#[derive(Serialize)]`) generates this impl for plain
/// structs and enums, mirroring serde's externally-tagged representation.
pub trait Serialize {
    /// Convert `self` into the shim's serialized [`Value`] representation.
    fn to_value(&self) -> Value;
}

/// Deserialization error: what was expected, what was found, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error with a free-form message.
    pub fn message(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, while_deserializing: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {while_deserializing}, found {}",
            found.kind_name()
        ))
    }

    /// An enum tag that matches no variant of the target type.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }

    /// Prefix the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be reconstructed from a [`Value`] tree, mirroring
/// `serde::Deserialize` (the lifetime parameter is kept for source
/// compatibility; the shim always deserializes from an owned tree).
///
/// The derive macro (`#[derive(Deserialize)]`) generates this impl for the
/// same shapes the `Serialize` derive supports, inverting the
/// externally-tagged representation.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct `Self` from a serialized [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Value {
    /// Short name of the value's variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "unsigned integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Borrow the map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Look up `field` in a struct's map entries and deserialize it.  A missing
/// field deserializes from `Null`, which lets `Option` fields default to
/// `None` the way real serde does.  Used by the `Deserialize` derive.
pub fn de_field<T: for<'de> Deserialize<'de>>(
    entries: &[(String, Value)],
    field: &str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(value).map_err(|e| e.in_field(field))
}

/// Deserialize element `index` of a tuple's sequence representation.  Used
/// by the `Deserialize` derive for tuple structs and tuple enum variants.
pub fn de_element<T: for<'de> Deserialize<'de>>(
    items: &[Value],
    index: usize,
    ty: &str,
) -> Result<T, DeError> {
    let value = items.get(index).ok_or_else(|| {
        DeError::message(format!(
            "missing tuple element {index} while deserializing {ty}"
        ))
    })?;
    T::from_value(value).map_err(|e| e.in_field(&format!("{ty}.{index}")))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError::message(format!("{n} overflows {}", stringify!($t)))
                    })?,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::message(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n).map_err(|_| {
                        DeError::message(format!("{n} is negative for {}", stringify!($t)))
                    })?,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::message(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);
impl_deserialize_uint!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(n) => Ok(*n),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // Serialization widened the f32 exactly into an f64, so narrowing it
        // back is lossless for values that originated as f32.
        f64::from_value(value).map(|n| n as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", "char", other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<'de, A, B> Deserialize<'de> for (A, B)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element sequence", "tuple", other)),
        }
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
    C: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("3-element sequence", "tuple", other)),
        }
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(DeError::expected("map", "BTreeMap", other)),
        }
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(DeError::expected("map", "HashMap", other)),
        }
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_into_values() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".to_string()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
    }

    #[test]
    fn primitives_deserialize_back_from_values() {
        assert_eq!(u32::from_value(&Value::U64(3)).unwrap(), 3);
        assert_eq!(i32::from_value(&Value::I64(-3)).unwrap(), -3);
        assert_eq!(usize::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::F64(1.5)).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(
            String::from_value(&Value::Str("hi".into())).unwrap(),
            "hi".to_string()
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)).unwrap(), Some(9));
        assert_eq!(
            Vec::<u8>::from_value(&Value::Seq(vec![Value::U64(1), Value::U64(2)])).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            <(u64, f64)>::from_value(&Value::Seq(vec![Value::U64(1), Value::F64(0.5)])).unwrap(),
            (1, 0.5)
        );
    }

    #[test]
    fn deserialize_errors_are_descriptive() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
        let err = u8::from_value(&Value::U64(300)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = u32::from_value(&Value::I64(-1)).unwrap_err();
        assert!(err.to_string().contains("negative"));
        let err: DeError = de_field::<u32>(&[], "missing").unwrap_err();
        assert!(err.to_string().starts_with("missing:"));
    }

    #[test]
    fn float_values_survive_a_value_round_trip_bit_for_bit() {
        for x in [0.1f64, -1.0 / 3.0, 1e-15, 6.02214076e23, f64::MIN_POSITIVE] {
            let v = x.to_value();
            assert_eq!(f64::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
        for x in [0.1f32, -7.25f32, f32::MIN_POSITIVE] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }
}
