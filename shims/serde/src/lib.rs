//! Minimal API-compatible stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the small surface the workspace actually uses: the `Serialize` /
//! `Deserialize` traits (importable alongside the derive macros of the same
//! names) and a self-describing [`Value`] tree that `serde_json`'s shim
//! renders.  Unlike real serde there is no `Serializer`/`Deserializer`
//! abstraction: `Serialize` converts directly into a [`Value`].
//!
//! Swapping this for the real crate is a one-line change in the workspace
//! manifest; the derive invocations and trait imports are source-compatible.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
///
/// The derive macro (`#[derive(Serialize)]`) generates this impl for plain
/// structs and enums, mirroring serde's externally-tagged representation.
pub trait Serialize {
    /// Convert `self` into the shim's serialized [`Value`] representation.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Nothing in the workspace deserializes at runtime yet, so the derive only
/// emits an empty impl to keep `#[derive(Deserialize)]` compiling.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_into_values() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".to_string()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
    }
}
