//! Exhaustive model checks of the pool's sleep and latch protocols under
//! the `loom` shim.
//!
//! Build with `RUSTFLAGS="--cfg dynmo_loom"`.  These drive the *real*
//! `Sleep`, `SpinLatch`, and `LockLatch` implementations (re-exported via
//! `rayon::loom_support`) — whole-pool model checking would blow up the
//! interleaving space, so the suite isolates the three protocols the pool's
//! liveness rests on.  In the model, `wait_timeout` never times out: the 5ms
//! backstop that hides a lost wakeup in production is stripped away, and a
//! protocol hole becomes a reported deadlock.
//!
//! The `mutation_*` tests seed two classic breakages into faithful mirrors
//! (notify without a generation bump; a Relaxed latch) and require the model
//! to catch each.
#![cfg(dynmo_loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;

use rayon::loom_support::{Latch, LockLatch, Sleep, SpinLatch};

/// Run `body` under the model expecting a failure; returns the panic text.
fn expect_model_failure(body: impl Fn() + Send + Sync + 'static) -> String {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loom::model(body);
    }));
    match result {
        Ok(_) => panic!("model unexpectedly passed"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("non-string model failure payload")
            }
        }
    }
}

/// The worker main-loop skeleton against the real `Sleep`: read the
/// generation, scan for work, park if nothing moved.  In every interleaving
/// of scan vs. publish — including publish landing between the scan and the
/// park — the worker must observe the work.  A lost wakeup parks the worker
/// forever and is reported as a deadlock.
#[test]
fn sleep_generation_protocol_never_loses_a_wakeup() {
    let report = loom::model(|| {
        let sleep = Arc::new(Sleep::new());
        let work = Arc::new(AtomicBool::new(false));
        let worker = {
            let sleep = Arc::clone(&sleep);
            let work = Arc::clone(&work);
            loom::thread::spawn(move || {
                // Bounded retries keep the state space finite; the protocol
                // guarantees progress after one spurious-free park, and a
                // genuine lost wakeup still exhausts the loop and fails.
                for _ in 0..3 {
                    let generation = sleep.generation();
                    if work.load(Ordering::Acquire) {
                        return;
                    }
                    sleep.sleep(generation);
                }
                assert!(
                    work.load(Ordering::Acquire),
                    "worker retired without observing published work"
                );
            })
        };
        work.store(true, Ordering::Release);
        sleep.notify();
        worker.join().unwrap();
    });
    println!(
        "sleep generation protocol: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// The `StackJob` handoff shape against the real `SpinLatch`: executor
/// writes the result cell then sets the latch; owner spins on `probe` and
/// reads the cell.  The latch's Release/Acquire pair is the only thing
/// ordering the unsynchronized cell accesses — the race detector verifies
/// it in every interleaving.
#[test]
fn spin_latch_release_acquire_publishes_the_result() {
    let report = loom::model(|| {
        let latch = Arc::new(SpinLatch::new());
        let result = Arc::new(UnsafeCell::new(0u32));
        let executor = {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            loom::thread::spawn(move || {
                // SAFETY: the owner reads only after probe() observes the
                // latch; the model's race detector checks exactly this.
                result.with_mut(|slot| unsafe { *slot = 42 });
                latch.set();
            })
        };
        while !latch.probe() {
            loom::thread::yield_now();
        }
        // SAFETY: ordered after the executor's write by Release/Acquire.
        let value = result.with(|slot| unsafe { *slot });
        assert_eq!(value, 42);
        executor.join().unwrap();
    });
    println!(
        "spin latch handoff: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

/// The `in_worker_cold` shape against the real `LockLatch`: an external
/// thread blocks in `wait` while the pool side runs the job and `set`s.
/// Whichever side reaches the mutex first, `wait` must return.
#[test]
fn lock_latch_wait_always_returns_after_set() {
    let report = loom::model(|| {
        let latch = Arc::new(LockLatch::new());
        let setter = {
            let latch = Arc::clone(&latch);
            loom::thread::spawn(move || latch.set())
        };
        latch.wait();
        setter.join().unwrap();
    });
    println!(
        "lock latch wait/set: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated, "state space not exhausted");
}

// ---------------------------------------------------------------------------
// Mutation teeth-checks against faithful protocol mirrors.
// ---------------------------------------------------------------------------

mod mirror {
    //! Skeletons of the sleep and latch protocols with one seeded breakage
    //! each, plus the faithful versions for baseline comparison.

    use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use loom::sync::{Condvar, Mutex};

    /// Mirror of `registry::Sleep` where `notify` can skip the generation
    /// bump — the exact hole the two-phase protocol exists to close: a
    /// notify landing between a sleeper's generation read and its park is
    /// only survivable because the bump makes the sleeper re-check.
    pub struct SleepMirror {
        sleepers: AtomicUsize,
        generation: AtomicU64,
        lock: Mutex<()>,
        wake: Condvar,
    }

    impl SleepMirror {
        pub fn new() -> Self {
            SleepMirror {
                sleepers: AtomicUsize::new(0),
                generation: AtomicU64::new(0),
                lock: Mutex::new(()),
                wake: Condvar::new(),
            }
        }

        pub fn generation(&self) -> u64 {
            self.generation.load(Ordering::SeqCst)
        }

        pub fn notify(&self, bump_generation: bool) {
            if bump_generation {
                self.generation.fetch_add(1, Ordering::SeqCst);
            }
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _guard = self.lock.lock().unwrap();
                self.wake.notify_all();
            }
        }

        pub fn sleep(&self, seen: u64) {
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let guard = self.lock.lock().unwrap();
            if self.generation.load(Ordering::SeqCst) == seen {
                // The model's wait never times out: parking here with a
                // wakeup already spent is a permanent deadlock.
                drop(self.wake.wait(guard).unwrap());
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Mirror of `SpinLatch` with the store/load orderings as parameters so
    /// the mutation test can downgrade Release/Acquire to Relaxed.
    pub struct LatchMirror {
        set: AtomicBool,
    }

    impl LatchMirror {
        pub fn new() -> Self {
            LatchMirror {
                set: AtomicBool::new(false),
            }
        }

        pub fn set(&self, order: Ordering) {
            self.set.store(true, order);
        }

        pub fn probe(&self, order: Ordering) -> bool {
            self.set.load(order)
        }
    }
}

/// Faithful sleep mirror (notify bumps the generation) passes exhaustively.
#[test]
fn mutation_baseline_sleep_with_generation_bump() {
    let report = loom::model(|| {
        let sleep = Arc::new(mirror::SleepMirror::new());
        let work = Arc::new(AtomicBool::new(false));
        let worker = {
            let sleep = Arc::clone(&sleep);
            let work = Arc::clone(&work);
            loom::thread::spawn(move || {
                let generation = sleep.generation();
                if !work.load(Ordering::Acquire) {
                    sleep.sleep(generation);
                }
                // After one park the wakeup's generation bump guarantees
                // the work is visible.
                assert!(work.load(Ordering::Acquire), "woke without work");
            })
        };
        work.store(true, Ordering::Release);
        sleep.notify(true);
        worker.join().unwrap();
    });
    println!(
        "sleep mirror baseline: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated);
}

/// Seeded mutation #3 (notify without the generation bump): the notify that
/// lands between the sleeper's generation read and its park is spent on
/// nobody, the sleeper parks with no further wakeup coming, and the model
/// must report the deadlock.
#[test]
fn mutation_notify_without_generation_bump_is_caught() {
    let failure = expect_model_failure(|| {
        let sleep = Arc::new(mirror::SleepMirror::new());
        let work = Arc::new(AtomicBool::new(false));
        let worker = {
            let sleep = Arc::clone(&sleep);
            let work = Arc::clone(&work);
            loom::thread::spawn(move || {
                let generation = sleep.generation();
                if !work.load(Ordering::Acquire) {
                    sleep.sleep(generation);
                }
            })
        };
        work.store(true, Ordering::Release);
        sleep.notify(false);
        worker.join().unwrap();
    });
    println!("mutation #3 caught: {failure}");
    assert!(
        failure.contains("deadlock"),
        "expected a reported deadlock, got: {failure}"
    );
}

/// Faithful latch mirror (Release set / Acquire probe) passes exhaustively.
#[test]
fn mutation_baseline_release_acquire_latch() {
    let report = loom::model(|| {
        let latch = Arc::new(mirror::LatchMirror::new());
        let result = Arc::new(UnsafeCell::new(0u32));
        let executor = {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            loom::thread::spawn(move || {
                // SAFETY: ordered before the owner's read by the latch.
                result.with_mut(|slot| unsafe { *slot = 7 });
                latch.set(Ordering::Release);
            })
        };
        while !latch.probe(Ordering::Acquire) {
            loom::thread::yield_now();
        }
        // SAFETY: ordered after the executor's write by Release/Acquire.
        assert_eq!(result.with(|slot| unsafe { *slot }), 7);
        executor.join().unwrap();
    });
    println!(
        "latch mirror baseline: {} interleavings (depth {})",
        report.iterations, report.max_depth
    );
    assert!(!report.truncated);
}

/// Seeded mutation #4 (latch downgraded to Relaxed): nothing orders the
/// result write before the owner's read anymore; the vector-clock race
/// detector must flag the pair and name both access sites.
#[test]
fn mutation_relaxed_latch_data_race_is_caught() {
    let failure = expect_model_failure(|| {
        let latch = Arc::new(mirror::LatchMirror::new());
        let result = Arc::new(UnsafeCell::new(0u32));
        let executor = {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            loom::thread::spawn(move || {
                // SAFETY: under the mutation this write is deliberately
                // unordered with the owner's read — the race detector must
                // catch it.
                result.with_mut(|slot| unsafe { *slot = 7 });
                latch.set(Ordering::Relaxed);
            })
        };
        while !latch.probe(Ordering::Relaxed) {
            loom::thread::yield_now();
        }
        // SAFETY: racy by construction (see above).
        let _ = result.with(|slot| unsafe { *slot });
        executor.join().unwrap();
    });
    println!("mutation #4 caught: {failure}");
    assert!(
        failure.contains("data race"),
        "expected a reported data race, got: {failure}"
    );
    // The report must name both conflicting access sites in this file.
    assert!(
        failure.matches("loom_sleep.rs").count() >= 2,
        "race report must cite both access sites: {failure}"
    );
}
