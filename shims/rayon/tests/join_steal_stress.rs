//! Stress tests for nested `join` and the deque steal race, run on both a
//! single-worker pool (the `DYNMO_THREADS=1` configuration the sweep
//! binaries use for determinism baselines) and a multi-worker pool.  Under
//! `--cfg dynmo_loom` the instrumented primitives degrade to std behavior
//! outside a model, so this file exercises the exact same code CI
//! model-checks.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

fn pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
}

/// Deeply nested joins (parallel pseudo-fib) on 1 and 4 workers must agree
/// with the sequential result: work-stealing may reorder execution, never
/// results.
#[test]
fn nested_joins_agree_across_pool_sizes() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = rayon::join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    for threads in [1, 4] {
        assert_eq!(pool(threads).install(|| fib(18)), 2584, "pool({threads})");
    }
}

/// Unbalanced nested joins: one side fans out hard while the other returns
/// immediately, so the waiting side must steal to finish — every leaf runs
/// exactly once on both pool sizes.
#[test]
fn unbalanced_join_tree_runs_every_leaf_once() {
    fn fan_out(counter: &AtomicUsize, depth: usize) {
        if depth == 0 {
            counter.fetch_add(1, Ordering::SeqCst);
            return;
        }
        rayon::join(
            || fan_out(counter, depth - 1),
            || {
                fan_out(counter, depth - 1);
                // Extra busywork on the b-side so steals happen mid-tree.
                std::hint::black_box((0..100).sum::<u64>());
            },
        );
    }
    for threads in [1, 4] {
        let counter = AtomicUsize::new(0);
        pool(threads).install(|| fan_out(&counter, 10));
        assert_eq!(counter.load(Ordering::SeqCst), 1 << 10, "pool({threads})");
    }
}

/// Repeated fine-grained fan-outs hammer the pop-vs-steal race on the
/// workers' deques; every index must execute exactly once, every round, on
/// both pool sizes.
#[test]
fn steal_race_stress_across_pool_sizes() {
    for threads in [1, 4] {
        let pool = pool(threads);
        for round in 0..10 {
            let n = 8_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.install(|| {
                (0..n).into_par_iter().for_each(|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "pool({threads}) round {round}: an index ran zero or multiple times"
            );
        }
    }
}

/// Collect determinism under contention: the same skewed workload collected
/// on 1 and 4 workers must produce identical output vectors.
#[test]
fn collect_is_identical_across_pool_sizes() {
    let work: Vec<u64> = (0..512).map(|i| (i * 2654435761) % 1000).collect();
    let run = |threads: usize| -> Vec<u64> {
        pool(threads).install(|| {
            work.par_iter()
                .map(|&x| {
                    let mut acc = x;
                    for k in 0..x % 64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    acc
                })
                .collect()
        })
    };
    assert_eq!(run(1), run(4));
}
