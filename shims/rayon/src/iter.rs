//! Index-addressable parallel iterators.
//!
//! Every source here knows its exact length and can produce the element at
//! any index independently, so `map(...).collect::<Vec<_>>()` writes result
//! `i` into slot `i` no matter which worker computed it.  That is the
//! determinism contract the sweep binaries rely on: parallel output is
//! byte-identical to a single-threaded run, elements merely *arrive* in a
//! different order.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;

use crate::registry::{current_num_threads, join};

/// A finite, index-addressable parallel iterator.
pub trait ParallelIterator: Send + Sync + Sized {
    /// Element type.
    type Item: Send;

    /// Exact number of elements.
    fn len(&self) -> usize;

    /// Whether the iterator has no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the element at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in `0..self.len()` and each index must be produced
    /// at most once across the iterator's lifetime (sources that move
    /// elements out, like [`VecParIter`], rely on this).
    unsafe fn produce(&self, index: usize) -> Self::Item;

    /// Transform each element with `op`.
    fn map<F, R>(self, op: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, op }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `op` on every element, in parallel.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let len = self.len();
        // SAFETY: parallel_for_index visits each index in 0..len once.
        parallel_for_index(len, &|i| op(unsafe { self.produce(i) }));
    }

    /// Sum the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        let results: Vec<Self::Item> = self.collect();
        results.into_iter().sum()
    }

    /// Collect into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Types a [`ParallelIterator`] can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Build the collection from the iterator, preserving index order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

/// Slots shared across workers during an order-preserving collect.  Each
/// index is written by exactly one `parallel_for_index` call, so the
/// aliasing is disjoint by construction.
struct SyncSlots<T>(UnsafeCell<Vec<Option<T>>>);

// SAFETY: disjoint index writes only (see above).
unsafe impl<T: Send> Sync for SyncSlots<T> {}

impl<T> SyncSlots<T> {
    /// Write slot `index`.
    ///
    /// # Safety
    ///
    /// Each index must be written by at most one thread, at most once.
    unsafe fn write(&self, index: usize, value: T) {
        let slots: &mut Vec<Option<T>> = &mut *self.0.get();
        slots[index] = Some(value);
    }
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let len = iter.len();
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let slots = SyncSlots(slots.into());
        let slots_ref = &slots;
        parallel_for_index(len, &move |i| {
            // SAFETY: each index is produced and written exactly once, and
            // distinct indices touch distinct slots.
            unsafe {
                let item = iter.produce(i);
                slots_ref.write(i, item);
            }
        });
        slots
            .0
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("parallel collect missed an index"))
            .collect()
    }
}

/// `map` adaptor.
pub struct Map<I, F> {
    base: I,
    op: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn produce(&self, index: usize) -> R {
        (self.op)(self.base.produce(index))
    }
}

/// `enumerate` adaptor.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn produce(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.produce(index))
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn produce(&self, index: usize) -> &'a T {
        self.slice.get_unchecked(index)
    }
}

/// Parallel iterator over non-overlapping `&[T]` chunks.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn produce(&self, index: usize) -> &'a [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        self.slice.get_unchecked(start..end)
    }
}

/// Parallel iterator over non-overlapping `&mut [T]` chunks.  Stored as a
/// raw pointer so each produced chunk is independent; disjointness follows
/// from the at-most-once index contract.
pub struct ParChunksMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunks at distinct indices are disjoint, and each index is
// produced at most once, so no two live `&mut` chunks alias.
unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn produce(&self, index: usize) -> &'a mut [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// Owning parallel iterator over a `Vec<T>`; elements are moved out slot by
/// slot.
pub struct VecParIter<T: Send> {
    vec: ManuallyDrop<Vec<T>>,
}

// SAFETY: `produce` reads each slot at most once (iterator contract), so
// shared access across workers never aliases a move.
unsafe impl<T: Send> Sync for VecParIter<T> {}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.vec.len()
    }

    unsafe fn produce(&self, index: usize) -> T {
        std::ptr::read(self.vec.as_ptr().add(index))
    }
}

impl<T: Send> Drop for VecParIter<T> {
    fn drop(&mut self) {
        // Elements were moved out by `produce`; free only the allocation.
        // (If a consumer panicked mid-drive, unproduced elements leak —
        // the price of not tracking per-slot state; allocation is still
        // freed.)
        // SAFETY: setting the length to zero before the Vec drops makes the
        // drop free the allocation without touching the moved-out elements.
        unsafe {
            let mut vec = ManuallyDrop::take(&mut self.vec);
            vec.set_len(0);
        }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeParIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    unsafe fn produce(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Conversion into a [`ParallelIterator`] (the `into_par_iter()` entry
/// point).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter {
            vec: ManuallyDrop::new(self),
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Parallel views of shared slices (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over the elements.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Parallel iterator over `chunk_size`-sized chunks (last may be
    /// shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// Parallel views of mutable slices (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        }
    }
}

/// Drive `f(0), f(1), ..., f(len - 1)` across the pool by recursive binary
/// splitting down to a grain of `max(1, len / (threads * 8))` indices.
pub(crate) fn parallel_for_index<F>(len: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = current_num_threads();
    if threads <= 1 || len == 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let grain = (len / (threads * 8)).max(1);
    split_range(0, len, grain, f);
}

fn split_range<F>(start: usize, end: usize, grain: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if end - start <= grain {
        for i in start..end {
            f(i);
        }
        return;
    }
    let mid = start + (end - start) / 2;
    join(
        || split_range(start, mid, grain, f),
        || split_range(mid, end, grain, f),
    );
}

/// The traits user code imports (`use rayon::prelude::*`).
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}
