//! The work-stealing thread pool: worker threads, their deques, the global
//! injector, and the join/scope execution protocol.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::primitives::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

use crate::job::{HeapJob, JobRef, JobResult, StackJob};
use crate::latch::{LockLatch, SpinLatch};

/// Hard ceiling on pool size, guarding against absurd env-var values.
const MAX_THREADS: usize = 1024;

/// The thread count the global pool uses: `DYNMO_THREADS`, then
/// `RAYON_NUM_THREADS`, then the host's available parallelism.  A value of
/// `0` (or anything unparsable) falls through to the next source, matching
/// rayon's treatment of `RAYON_NUM_THREADS=0` as "default".
pub(crate) fn default_num_threads() -> usize {
    for var in ["DYNMO_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_THREADS);
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sleep coordination: workers with nothing to do park here; every push of
/// new work bumps the generation and wakes sleepers.  The two-phase
/// (register-then-recheck) protocol plus a short timeout backstop makes
/// missed wakeups impossible in the steady state and harmless otherwise —
/// and the loom suite in `tests/loom_sleep.rs` model-checks exactly that
/// claim (via [`crate::loom_support`]), where the model's `wait_timeout`
/// deliberately never times out so a lost wakeup is a reported deadlock,
/// not a 5ms hiccup.
pub struct Sleep {
    sleepers: AtomicUsize,
    generation: AtomicU64,
    lock: Mutex<()>,
    wake: Condvar,
}

impl Sleep {
    /// A fresh sleep/wake coordinator with no sleepers.
    pub fn new() -> Self {
        Sleep {
            sleepers: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// The current wakeup generation; pass the value observed *before* a
    /// work scan to [`Sleep::sleep`] so work published after the scan
    /// prevents the park.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Called after publishing new work.
    pub fn notify(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.wake.notify_all();
        }
    }

    /// Park unless the generation moved past `seen` since the caller's last
    /// work scan.
    pub fn sleep(&self, seen: u64) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.generation.load(Ordering::SeqCst) == seen {
            // Timeout backstop: even a (theoretically impossible) missed
            // wakeup only costs one poll interval.
            let _ = self
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Default for Sleep {
    fn default() -> Self {
        Sleep::new()
    }
}

/// One work-stealing thread pool: per-worker Chase–Lev deques plus a
/// global FIFO injector for work arriving from outside the pool.
pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep: Sleep,
    terminating: AtomicBool,
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

impl Registry {
    /// Build a pool with `num_threads` workers and spawn them.
    fn start(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let workers: Vec<Worker<JobRef>> = (0..num_threads).map(|_| Worker::new_lifo()).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers: workers.iter().map(|w| w.stealer()).collect(),
            sleep: Sleep::new(),
            terminating: AtomicBool::new(false),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("dynmo-rayon-{index}"))
                    .spawn(move || main_loop(registry, index, deque))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (registry, handles)
    }

    /// The process-wide pool, built on first use.
    pub(crate) fn global() -> &'static Arc<Registry> {
        GLOBAL.get_or_init(|| {
            let (registry, _detached) = Registry::start(default_num_threads());
            registry
        })
    }

    /// Install `registry` as the global pool.  Fails if the global pool was
    /// already built.
    fn set_global(registry: Arc<Registry>) -> Result<(), ()> {
        GLOBAL.set(registry).map_err(|_| ())
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.stealers.len()
    }

    /// Queue a job from outside the pool and wake a worker.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.sleep.notify();
    }

    /// Run `op` on a worker thread of *some* pool: inline when the caller
    /// already is a worker, otherwise injected into this pool and awaited
    /// on a blocking latch.
    pub(crate) fn in_worker<OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce(&WorkerThread) -> R + Send,
        R: Send,
    {
        if let Some(worker) = WorkerThread::current() {
            op(worker)
        } else {
            self.in_worker_cold(op)
        }
    }

    fn in_worker_cold<OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce(&WorkerThread) -> R + Send,
        R: Send,
    {
        let job = StackJob::new(
            || {
                let worker =
                    WorkerThread::current().expect("injected job must run on a pool worker");
                op(worker)
            },
            LockLatch::new(),
        );
        // SAFETY: we block on the latch below, so the frame outlives
        // execution and the ref is handed to exactly one executor.
        unsafe { self.inject(job.as_job_ref()) };
        job.latch.wait();
        match job.into_result() {
            JobResult::Ok(value) => value,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
            JobResult::None => unreachable!("latch set without a result"),
        }
    }
}

thread_local! {
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Per-worker state, stack-allocated in the worker's main loop.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    deque: Worker<JobRef>,
    /// xorshift state for randomized steal-victim selection.
    rng: Cell<u64>,
}

impl WorkerThread {
    /// The worker state of the calling thread, if it is a pool worker.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = CURRENT_WORKER.get();
        if ptr.is_null() {
            None
        } else {
            // SAFETY: the pointee lives for the whole worker main loop and
            // the pointer is only ever dereferenced from that same thread.
            Some(unsafe { &*ptr })
        }
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Push a job onto this worker's deque and wake a potential thief.
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.sleep.notify();
    }

    fn next_victim_seed(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    /// One full scan for work: own deque (LIFO), then the injector, then
    /// every other worker's deque (FIFO steal) from a random start.
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.deque.pop() {
            return Some(job);
        }
        loop {
            match self.registry.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.registry.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (self.next_victim_seed() % n as u64) as usize;
        let mut retry = true;
        while retry {
            retry = false;
            for offset in 0..n {
                let victim = (start + offset) % n;
                if victim == self.index {
                    continue;
                }
                match self.registry.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
        }
        None
    }

    /// Work-steal until `done` turns true (e.g. a join sibling's latch):
    /// execute whatever is available rather than blocking, so nested joins
    /// from inside workers can never deadlock the pool.
    pub(crate) fn wait_until<C: Fn() -> bool>(&self, done: C) {
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(job) = self.find_work() {
                // SAFETY: refs found in queues are live and executed once.
                unsafe { job.execute() };
                idle_spins = 0;
            } else if idle_spins < 64 {
                idle_spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

fn main_loop(registry: Arc<Registry>, index: usize, deque: Worker<JobRef>) {
    let worker = WorkerThread {
        registry,
        index,
        deque,
        rng: Cell::new(0x9e37_79b9_7f4a_7c15 ^ ((index as u64 + 1) << 17)),
    };
    CURRENT_WORKER.set(&worker as *const WorkerThread);
    loop {
        let generation = worker.registry.sleep.generation();
        if let Some(job) = worker.find_work() {
            // SAFETY: queue refs are live and executed exactly once.  Jobs
            // catch their own panics, but a stray unwind must not kill the
            // worker (a dead worker strands its deque), so belt-and-braces.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| unsafe { job.execute() }));
            continue;
        }
        if worker.registry.terminating.load(Ordering::SeqCst) {
            break;
        }
        worker.registry.sleep.sleep(generation);
    }
    CURRENT_WORKER.set(std::ptr::null());
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results.  The calling thread works on `oper_a`; `oper_b` is exposed for
/// stealing and reclaimed (or stolen back by working through the queue) if
/// nobody took it.  Panics in either closure propagate to the caller —
/// after both closures have finished, so borrowed data stays alive exactly
/// as long as with sequential execution.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    Registry::global().in_worker(|worker| {
        let job_b = StackJob::new(oper_b, SpinLatch::new());
        // SAFETY: this frame blocks (stealing work) until the latch is
        // set, and pushes the ref to exactly one queue.
        unsafe { worker.push(job_b.as_job_ref()) };
        let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));
        // Wait for B even when A panicked: B may borrow this frame.
        worker.wait_until(|| job_b.latch.probe());
        let result_b = job_b.into_result();
        match (result_a, result_b) {
            (Ok(ra), JobResult::Ok(rb)) => (ra, rb),
            // A's panic wins when both sides panicked, like rayon.
            (Err(payload), _) => panic::resume_unwind(payload),
            (Ok(_), JobResult::Panic(payload)) => panic::resume_unwind(payload),
            (Ok(_), JobResult::None) => unreachable!("latch set without a result"),
        }
    })
}

/// A scope for spawning borrowed work; see [`scope`].
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Invariant over `'scope`, like rayon's.
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// Create a scope whose spawned tasks may borrow non-`'static` data; all
/// tasks complete before `scope` returns.  The first panic among the
/// closure and its spawned tasks is resumed after everything finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    Registry::global().in_worker(|worker| {
        let s = Scope {
            registry: Arc::clone(worker.registry()),
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
        // Spawned tasks borrow 'scope data: always drain before returning.
        worker.wait_until(|| s.pending.load(Ordering::Acquire) == 0);
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(value) => {
                let spawned_panic = s.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
                match spawned_panic {
                    Some(payload) => panic::resume_unwind(payload),
                    None => value,
                }
            }
        }
    })
}

/// A raw `Scope` pointer that can ride inside a `Send` closure; validity is
/// guaranteed by the scope's pending counter.
struct ScopePtr(*const ());
// SAFETY: the pointer is only dereferenced inside jobs the scope itself
// spawned, and `scope` blocks until its pending counter drains — the
// pointee outlives every access.
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    // Accessor (rather than direct field use in the spawned closure) so
    // edition-2021 precise capture grabs the Send wrapper, not the raw ptr.
    fn get(&self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow data outliving the scope.  The task
    /// runs on the pool; a panic inside it is captured and resumed when the
    /// scope closes.
    pub fn spawn<F>(&self, func: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = HeapJob::new(move || {
            // SAFETY: the scope outlives all spawned jobs (pending counter
            // drained before `scope` returns).
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'_>) };
            let result = panic::catch_unwind(AssertUnwindSafe(|| func(scope)));
            if let Err(payload) = result {
                let mut slot = scope.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            // Final touch: after this the scope may be freed.
            scope.pending.fetch_sub(1, Ordering::Release);
        });
        // SAFETY: executed exactly once; the scope drains before 'scope
        // data dies.
        let job_ref = unsafe { job.into_job_ref() };
        match WorkerThread::current() {
            Some(worker) if Arc::ptr_eq(worker.registry(), &self.registry) => worker.push(job_ref),
            _ => self.registry.inject(job_ref),
        }
    }
}

/// Number of threads in the current pool: the enclosing worker's pool when
/// called from inside one, the global pool otherwise.
pub fn current_num_threads() -> usize {
    match WorkerThread::current() {
        Some(worker) => worker.registry().num_threads(),
        None => Registry::global().num_threads(),
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] /
/// [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`] (rayon-compatible
/// constructor used by tests and benches to pin thread counts).
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count (`0` = host default, like rayon).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    fn resolved_threads(&self) -> usize {
        match self.num_threads {
            Some(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_num_threads(),
        }
    }

    /// Build a dedicated pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, handles) = Registry::start(self.resolved_threads());
        Ok(ThreadPool {
            registry,
            handles: Mutex::new(handles),
        })
    }

    /// Build the process-global pool.  Fails if it was already built (by an
    /// earlier call or by first use).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let (registry, _detached) = Registry::start(self.resolved_threads());
        Registry::set_global(registry).map_err(|()| ThreadPoolBuildError {
            message: "the global thread pool has already been initialized",
        })
    }
}

/// An explicitly constructed work-stealing pool.  Work run via
/// [`ThreadPool::install`] — including every `par_*` call made inside —
/// executes on this pool's workers instead of the global pool's.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ThreadPool {
    /// Run `op` on this pool and return its result.  Parallel iterators and
    /// `join`/`scope` calls inside `op` use this pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(worker) = WorkerThread::current() {
            if Arc::ptr_eq(worker.registry(), &self.registry) {
                return op();
            }
        }
        self.registry.in_worker_cold(|_| op())
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminating.store(true, Ordering::SeqCst);
        self.registry.sleep.notify();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}
