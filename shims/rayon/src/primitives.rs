//! cfg-switched concurrency primitives (see `shims/crossbeam/src/primitives.rs`
//! for the pattern rationale).
//!
//! Normal builds alias straight to `std`; `RUSTFLAGS="--cfg dynmo_loom"`
//! swaps in the `loom` model-checked twins so the loom suites in
//! `tests/loom_sleep.rs` explore the real `Sleep`/latch/job implementations.
//! Worker threads themselves are still spawned with `std::thread` — the
//! model suite scopes to the sleep and latch protocols (model-checking an
//! entire pool would blow up the interleaving space), and outside a
//! `loom::model` closure every loom type degrades to plain std behavior, so
//! ordinary tests run unchanged under either cfg.

#[cfg(dynmo_loom)]
pub(crate) use loom::cell::UnsafeCell;
#[cfg(dynmo_loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(dynmo_loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(dynmo_loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(dynmo_loom))]
pub(crate) use std::sync::{Condvar, Mutex};

/// `std` twin of `loom::cell::UnsafeCell`: same `with`/`with_mut` access
/// surface (so instrumented code is written once), compiled down to the bare
/// pointer accesses of `std::cell::UnsafeCell`.
#[cfg(not(dynmo_loom))]
pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(dynmo_loom))]
impl<T> UnsafeCell<T> {
    pub(crate) fn new(data: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(data))
    }

    /// Shared access.  The caller promises the closure only reads.
    // Part of the loom UnsafeCell surface; current callers happen to use
    // only `with_mut`, but the twin mirrors the full API.
    #[allow(dead_code)]
    pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get() as *const T)
    }

    /// Exclusive access.  The caller promises no concurrent access.
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
