//! Type-erased units of work the pool's deques carry.
//!
//! A [`JobRef`] is a raw pointer plus an erased execute function.  Stack
//! jobs ([`StackJob`]) live in the frame of the `join`/`install` caller,
//! which keeps the frame alive until the job's latch is set; heap jobs
//! ([`HeapJob`]) carry scope-spawned closures whose completion the scope
//! counts before returning.
//!
//! The `func`/`result` slots use the cfg-switched [`crate::primitives`]
//! `UnsafeCell`, so under `RUSTFLAGS="--cfg dynmo_loom"` every access is
//! stamped into the model's happens-before race detector: an executor
//! writing `result` without the latch's Release/Acquire edge to the reader
//! is reported as a race with both source locations.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;
use crate::primitives::UnsafeCell;

/// A type-erased, sendable pointer to a job.  The creator guarantees the
/// pointee outlives execution (via latch or scope counter).
pub(crate) struct JobRef {
    ptr: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: jobs are executed exactly once, and their pointees are kept alive
// by the protocol described on the job types.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erase a job pointer.
    ///
    /// # Safety
    ///
    /// `job` must stay valid until `execute` has run, and `execute` must be
    /// called at most once.
    pub(crate) unsafe fn new<J: Job>(job: *const J) -> JobRef {
        JobRef {
            ptr: job as *const (),
            execute_fn: execute_erased::<J>,
        }
    }

    /// Run the job.
    ///
    /// # Safety
    ///
    /// Must be called exactly once, with the pointee still alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.ptr)
    }
}

unsafe fn execute_erased<J: Job>(ptr: *const ()) {
    J::execute(ptr as *const J)
}

/// A unit of work that knows how to run itself from an erased pointer.
pub(crate) trait Job {
    /// Run the job.
    ///
    /// # Safety
    ///
    /// `this` must point to a live instance and be executed at most once.
    unsafe fn execute(this: *const Self);
}

/// The outcome of a completed job.
pub(crate) enum JobResult<R> {
    /// Not executed yet.
    None,
    /// Completed normally.
    Ok(R),
    /// The closure panicked; the payload is propagated at the join point.
    Panic(Box<dyn Any + Send>),
}

/// A job allocated in the caller's stack frame: the caller blocks (or
/// steals) until `latch` is set, so the frame outlives execution.
pub(crate) struct StackJob<L: Latch, F, R> {
    /// Set once the job has executed (successfully or by panic).
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// Erase this job.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive until the latch is set, and hand
    /// the returned ref to at most one executor.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Consume the executed job, returning the closure's result.
    /// Must only be called after the latch is set.
    pub(crate) fn into_result(self) -> JobResult<R> {
        self.result.into_inner()
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        // SAFETY: the executor is the only thread touching `func` — the
        // owner wrote it before publishing the JobRef and only reads
        // `result` after the latch is set.
        let func = unsafe { this.func.with_mut(|slot| (*slot).take()) };
        let func = func.expect("stack job executed twice");
        // A panicking task must not hang the pool: catch, stash, and let
        // the join point rethrow.
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        // SAFETY: exclusive for the same reason as `func`; the owner's
        // read in `into_result` is ordered after this write by the latch's
        // Release store / Acquire probe pair set below.
        unsafe { this.result.with_mut(|slot| *slot = result) };
        // The latch is the last touch: after `set`, the owner may free the
        // frame.
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job (scope spawns).  Completion is
/// tracked by the spawning [`crate::Scope`]'s pending counter, which the
/// closure itself decrements as its final action.
pub(crate) struct HeapJob<F: FnOnce() + Send> {
    func: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Erase this job, transferring ownership to the eventual executor.
    ///
    /// # Safety
    ///
    /// The returned ref must be executed exactly once (it frees the box),
    /// and any borrows inside `func` must outlive that execution.
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef::new(Box::into_raw(self))
    }
}

impl<F: FnOnce() + Send> Job for HeapJob<F> {
    unsafe fn execute(this: *const Self) {
        // SAFETY: `this` came from `Box::into_raw` in `into_job_ref`, and
        // the exactly-once execution contract makes reclaiming the box here
        // sound.
        let this = unsafe { Box::from_raw(this as *mut Self) };
        // Scope spawns wrap `func` in their own catch_unwind; nothing to
        // catch here.
        (this.func)();
    }
}
