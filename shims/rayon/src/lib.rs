//! A real work-stealing thread pool behind rayon's API surface.
//!
//! Earlier revisions of this shim were a sequential stand-in: the `par_*`
//! entry points mapped straight onto `std` iterators.  This revision keeps
//! the exact same call-site surface — `par_iter().map(..).collect()`,
//! `par_chunks_mut(..).for_each(..)`, `join`, `scope` — but executes it on
//! a Chase–Lev work-stealing pool built from the deques in the `crossbeam`
//! shim:
//!
//! - one worker thread per configured slot, each owning a LIFO deque that
//!   other workers steal from FIFO;
//! - a global FIFO injector for work submitted from non-pool threads;
//! - `join(a, b)` runs `a` inline and exposes `b` for stealing, and the
//!   waiting side *works through the queues* instead of blocking, so
//!   arbitrarily nested joins cannot deadlock;
//! - parked workers sleep on a generation-counted condvar with a short
//!   timeout backstop, so an idle pool costs no CPU.
//!
//! # Thread count
//!
//! The global pool is sized on first use from, in order: `DYNMO_THREADS`,
//! `RAYON_NUM_THREADS`, then the host's available parallelism.  A value of
//! `1` gives fully sequential in-place execution (no worker round-trips).
//! Tests and benches that need a pinned size build their own pool:
//!
//! ```
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let doubled: Vec<i32> = pool.install(|| {
//!     use rayon::prelude::*;
//!     vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect()
//! });
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```
//!
//! # Determinism contract
//!
//! Every parallel iterator here is *index-addressable*: the element at
//! index `i` is computed from index `i` alone, and `collect` writes it into
//! slot `i` of the output.  Work-stealing only changes *when* each index
//! runs, never *where its result lands*, so `map(...).collect()` and
//! `par_chunks_mut(...).for_each(...)` produce output byte-identical to a
//! single-threaded run.  The sweep binaries in `crates/bench` rely on this:
//! their JSON artifacts must not depend on the machine's core count.
//!
//! # Panics
//!
//! A panicking task does not hang or poison the pool.  Panics are caught at
//! the job boundary, carried as payloads, and resumed on the thread that
//! called `join`/`install`/`scope` once all sibling work has finished (so
//! borrowed data stays alive exactly as long as with sequential execution).

#![warn(missing_docs)]

mod job;
mod latch;
mod primitives;
mod registry;

pub mod iter;

/// Model-checking access to the pool's internal synchronization protocols.
///
/// Only compiled under `RUSTFLAGS="--cfg dynmo_loom"`, for the loom suites
/// in `tests/loom_sleep.rs`: whole-pool model checking would blow up the
/// interleaving space, so the suites drive the sleep and latch protocols
/// directly through these re-exports.
#[cfg(dynmo_loom)]
pub mod loom_support {
    pub use crate::latch::{Latch, LockLatch, SpinLatch};
    pub use crate::registry::Sleep;
}

pub use iter::prelude;
pub use registry::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn par_chunks_mut_behaves_like_chunks_mut() {
        let mut data = [0u32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let input: Vec<usize> = (0..1000).collect();
        let seq: Vec<usize> = input.iter().map(|&x| x * 3 + 1).collect();
        let par: Vec<usize> = pool(4).install(|| input.par_iter().map(|&x| x * 3 + 1).collect());
        assert_eq!(par, seq);
    }

    /// Skewed task sizes: one huge cell plus many tiny ones.  The order of
    /// the collected output must still match index order exactly — stealing
    /// may reorder execution, never results.
    #[test]
    fn skewed_task_sizes_preserve_collect_order() {
        let pool = pool(4);
        let work: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 200_000 } else { 50 + i })
            .collect();
        let out: Vec<u64> = pool.install(|| {
            work.par_iter()
                .map(|&iters| {
                    // Busy work proportional to the cell's skewed size.
                    let mut acc = 0u64;
                    for k in 0..iters {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    // Return something that depends on the input only.
                    iters ^ (acc & 1)
                })
                .map(|v| v & !1)
                .collect()
        });
        let expected: Vec<u64> = work.iter().map(|&v| v & !1).collect();
        assert_eq!(out, expected);
    }

    /// A panicking closure must propagate to the caller and leave the pool
    /// usable, not hang a worker or deadlock the join.
    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let pool = pool(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let data: Vec<u32> = (0..100).collect();
                let _: Vec<u32> = data
                    .par_iter()
                    .map(|&x| {
                        if x == 57 {
                            panic!("boom at {x}");
                        }
                        x
                    })
                    .collect();
            })
        }));
        assert!(result.is_err(), "panic must reach the install caller");
        // The pool must still execute new work afterwards.
        let sum: u64 = pool.install(|| {
            let data: Vec<u64> = (0..1000).collect();
            let v: Vec<u64> = data.par_iter().map(|&x| x).collect();
            v.iter().sum()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn panic_in_join_branch_b_propagates() {
        let pool = pool(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| crate::join(|| 1 + 1, || -> u32 { panic!("b side") }))
        }));
        assert!(result.is_err());
        assert_eq!(pool.install(|| crate::join(|| 2, || 3)), (2, 3));
    }

    /// Nested joins from inside workers: a worker waiting on a sibling must
    /// keep executing queued work, or recursion deadlocks the pool.
    #[test]
    fn nested_joins_compute_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = pool(4);
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    /// Work-stealing proof: task A blocks until task B sends to it, so the
    /// test can only finish if another worker steals B while A's worker is
    /// occupied.  With a broken (non-stealing) pool this times out.
    #[test]
    fn steal_unblocks_dependent_tasks() {
        let pool = pool(2);
        let (tx, rx) = crossbeam::channel::unbounded::<u32>();
        pool.install(|| {
            crate::scope(|s| {
                s.spawn(move |_| {
                    let got = rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("B was never stolen/executed");
                    assert_eq!(got, 11);
                });
                s.spawn(move |_| {
                    tx.send(11).unwrap();
                });
            });
        });
    }

    #[test]
    fn scope_spawn_runs_all_tasks() {
        let pool = pool(4);
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            crate::scope(|s| {
                for _ in 0..100 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    /// Stress-loop for the deque steal race: many rounds of fine-grained
    /// fan-out where every index must be executed exactly once.
    #[test]
    fn steal_race_stress_executes_every_index_once() {
        let pool = pool(4);
        for _round in 0..20 {
            let n = 10_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.install(|| {
                let idx: Vec<usize> = (0..n).collect();
                idx.par_iter().for_each(|&i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "some index ran zero or multiple times"
            );
        }
    }

    #[test]
    fn single_thread_pool_is_fully_sequential_and_correct() {
        let pool = pool(1);
        let out: Vec<usize> = pool.install(|| {
            let v: Vec<usize> = (0..100).collect();
            v.par_iter().map(|&x| x + 1).collect()
        });
        assert_eq!(out, (1..101).collect::<Vec<_>>());
        assert_eq!(pool.current_num_threads(), 1);
    }

    #[test]
    fn into_par_iter_over_vec_and_range() {
        let pool = pool(2);
        let squares: Vec<usize> =
            pool.install(|| (0..50usize).into_par_iter().map(|x| x * x).collect());
        assert_eq!(squares, (0..50).map(|x| x * x).collect::<Vec<_>>());
        let owned: Vec<String> = pool.install(|| {
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
                .into_par_iter()
                .map(|s| s + "!")
                .collect()
        });
        assert_eq!(owned, vec!["a!", "b!", "c!"]);
    }
}
