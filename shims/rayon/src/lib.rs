//! Minimal sequential stand-in for `rayon`.
//!
//! The `par_*` entry points the workspace uses are mapped onto their
//! sequential `std` equivalents, which return ordinary iterators — all the
//! adapters (`enumerate`, `for_each`, ...) keep working, the work just runs
//! on one thread.  Swapping in real rayon restores parallelism with no
//! source changes.

#![warn(missing_docs)]

/// Parallel-iterator traits (sequential here).
pub mod prelude {
    /// Slices that can be traversed by mutable chunks "in parallel".
    pub trait ParallelSliceMut<T> {
        /// Sequential equivalent of rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Slices that can be traversed by shared reference "in parallel".
    pub trait ParallelSlice<T> {
        /// Sequential equivalent of rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;

        /// Sequential equivalent of rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Values convertible into a "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for rayon's parallel one.
        type Iter: Iterator;

        /// Sequential equivalent of rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_behaves_like_chunks_mut() {
        let mut data = [0u32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 1, 1, 2, 2]);
    }
}
