//! Completion signals between a job and the thread waiting on it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Set exactly once when a job finishes.
pub(crate) trait Latch {
    /// Signal completion.  The job's result is published before this.
    fn set(&self);
}

/// A latch polled by a worker that steals work while it waits.
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    /// Whether the latch has been set.
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch an external (non-pool) thread blocks on.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    done: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            done: Condvar::new(),
        }
    }

    /// Block until the latch is set.
    pub(crate) fn wait(&self) {
        let mut set = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*set {
            set = self.done.wait(set).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut set = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *set = true;
        drop(set);
        self.done.notify_all();
    }
}
