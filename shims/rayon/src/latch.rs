//! Completion signals between a job and the thread waiting on it.
//!
//! Built on the cfg-switched primitives in [`crate::primitives`] so the
//! latch protocols are model-checked verbatim by `tests/loom_sleep.rs`
//! under `RUSTFLAGS="--cfg dynmo_loom"`.

use crate::primitives::{AtomicBool, Condvar, Mutex, Ordering};

/// Set exactly once when a job finishes.
pub trait Latch {
    /// Signal completion.  The job's result is published before this.
    fn set(&self);
}

/// A latch polled by a worker that steals work while it waits.
pub struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    /// Whether the latch has been set.  Acquire pairs with the Release
    /// store in [`Latch::set`]: observing `true` makes the job's result
    /// writes visible to the prober.
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Default for SpinLatch {
    fn default() -> Self {
        SpinLatch::new()
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch an external (non-pool) thread blocks on.
pub struct LockLatch {
    state: Mutex<bool>,
    done: Condvar,
}

impl LockLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            done: Condvar::new(),
        }
    }

    /// Block until the latch is set.
    pub fn wait(&self) {
        let mut set = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*set {
            set = self.done.wait(set).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Default for LockLatch {
    fn default() -> Self {
        LockLatch::new()
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut set = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *set = true;
        drop(set);
        self.done.notify_all();
    }
}
