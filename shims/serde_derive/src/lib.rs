//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementation
//! for the vendored serde shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline build environment, so the item is parsed directly from the
//! `proc_macro` token stream.  Supported shapes — which cover every derive in
//! this workspace — are non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like.  `Serialize` produces the
//! externally-tagged representation serde uses by default; `Deserialize`
//! inverts it, reconstructing the type from a `serde::Value` tree (field
//! types are recovered by inference through the struct/variant literal, so
//! the parser never needs to understand type syntax).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    UnitStruct,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Split the top-level tokens of a brace/paren group on commas, ignoring
/// commas nested inside generic argument lists (`HashMap<String, u64>`).
/// `->` is recognized so a return-type arrow never closes a bracket.
fn split_on_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    let mut prev_char = ' ';
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    prev_char = ',';
                    continue;
                }
                '<' => angle_depth += 1,
                '>' if prev_char != '-' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
            prev_char = p.as_char();
        } else {
            prev_char = ' ';
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Drop leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` is always followed by the bracketed attribute body.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<Field> {
    split_on_commas(group_tokens)
        .into_iter()
        .filter_map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(Field {
                    name: id.to_string(),
                }),
                _ => None,
            }
        })
        .collect()
}

fn parse_variants(group_tokens: &[TokenTree]) -> Vec<Variant> {
    split_on_commas(group_tokens)
        .into_iter()
        .filter_map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let fields = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Tuple(split_on_commas(&inner).len())
                }
                _ => VariantFields::Unit,
            };
            Some(Variant { name, fields })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Option<Item> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = skip_attrs_and_vis(&tokens);
    let (kind, rest) = match rest.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &rest[1..]),
        _ => return None,
    };
    if kind != "struct" && kind != "enum" {
        return None;
    }
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    let rest = &rest[1..];
    // Generic items are not supported by the shim; bail out so the error
    // surfaces as a missing impl at the use site instead of bad codegen.
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return None;
    }
    let shape = if kind == "enum" {
        let body = rest.iter().find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })?;
        let body: Vec<TokenTree> = body.into_iter().collect();
        Shape::Enum(parse_variants(&body))
    } else {
        match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(split_on_commas(&body).len())
            }
            _ => Shape::UnitStruct,
        }
    };
    Some(Item { name, shape })
}

fn named_fields_to_map(fields: &[Field], accessor: &dyn Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{name}\"), ::serde::Serialize::to_value({access}))",
                name = f.name,
                access = accessor(&f.name),
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

/// Derive the shim's `Serialize` trait (externally-tagged enum encoding).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Some(item) = parse_item(input) else {
        return TokenStream::new();
    };
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => named_fields_to_map(fields, &|name| format!("&self.{name}")),
        Shape::TupleStruct(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let ty = &item.name;
                    let var = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{ty}::{var} => ::serde::Value::Str(::std::string::String::from(\"{var}\"))",
                        ),
                        VariantFields::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let inner = named_fields_to_map(fields, &|name| name.to_string());
                            format!(
                                "{ty}::{var} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{var}\"), {inner})])",
                                binds = binds.join(", "),
                            )
                        }
                        VariantFields::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{ty}::{var}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{var}\"), {inner})])",
                                binds = binds.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive shim produced invalid Rust")
}

fn named_fields_from_map(ty: &str, fields: &[Field], constructor: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{name}: ::serde::de_field(_entries, \"{name}\")?",
                name = f.name
            )
        })
        .collect();
    format!(
        "{{ let _entries = __value.as_map().ok_or_else(|| \
             ::serde::DeError::expected(\"map\", \"{ty}\", __value))?; \
           ::std::result::Result::Ok({constructor} {{ {inits} }}) }}",
        inits = inits.join(", "),
    )
}

fn tuple_fields_from_seq(ty: &str, arity: usize, constructor: &str) -> String {
    let inits: Vec<String> = (0..arity)
        .map(|i| format!("::serde::de_element(__items, {i}, \"{ty}\")?"))
        .collect();
    format!(
        "{{ let __items = __value.as_seq().ok_or_else(|| \
             ::serde::DeError::expected(\"sequence\", \"{ty}\", __value))?; \
           ::std::result::Result::Ok({constructor}({inits})) }}",
        inits = inits.join(", "),
    )
}

/// Derive the shim's `Deserialize` trait, inverting the externally-tagged
/// representation produced by the `Serialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Some(item) = parse_item(input) else {
        return TokenStream::new();
    };
    let ty = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!(
            "match __value {{ \
               ::serde::Value::Null => ::std::result::Result::Ok({ty}), \
               other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", \"{ty}\", other)) \
             }}",
        ),
        Shape::NamedStruct(fields) => named_fields_from_map(ty, fields, "Self"),
        Shape::TupleStruct(arity) => tuple_fields_from_seq(ty, *arity, "Self"),
        Shape::Enum(variants) => {
            // Unit variants are encoded as a bare string; payload-carrying
            // variants as a single-entry map keyed by the variant name.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{var}\" => ::std::result::Result::Ok({ty}::{var}),",
                        var = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let var = &v.name;
                    let full = format!("{ty}::{var}");
                    let body = match &v.fields {
                        VariantFields::Unit => return None,
                        VariantFields::Named(fields) => {
                            named_fields_from_map(&full, fields, &full)
                        }
                        VariantFields::Tuple(arity) => {
                            if *arity == 1 {
                                // A single payload is encoded without the
                                // sequence wrapper, mirroring Serialize.
                                format!(
                                    "::std::result::Result::Ok({full}(\
                                       ::serde::Deserialize::from_value(__value)\
                                       .map_err(|e| e.in_field(\"{full}\"))?))",
                                )
                            } else {
                                tuple_fields_from_seq(&full, *arity, &full)
                            }
                        }
                    };
                    Some(format!("\"{var}\" => {{ let __value = _payload; {body} }},"))
                })
                .collect();
            format!(
                "match __value {{ \
                   ::serde::Value::Str(__tag) => match __tag.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{ty}\")), \
                   }}, \
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, _payload) = &__entries[0]; \
                     match __tag.as_str() {{ \
                       {tagged_arms} \
                       other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{ty}\")), \
                     }} \
                   }}, \
                   other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-entry map\", \"{ty}\", other)), \
                 }}",
                unit_arms = unit_arms.join(" "),
                tagged_arms = tagged_arms.join(" "),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {ty} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
    )
    .parse()
    .expect("serde_derive shim produced invalid Rust")
}
