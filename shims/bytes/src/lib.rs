//! Minimal stand-in for the `bytes` crate: a cheaply-cloneable, immutable
//! byte buffer backed by `Arc<[u8]>`.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Create a buffer borrowing from a static slice (copied into the Arc;
    /// real `bytes` avoids the copy, which is irrelevant at this scale).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..], b"abc");
    }
}
