//! The model execution engine: a cooperative scheduler that serializes model
//! threads onto one visible operation at a time, records every scheduling and
//! value-visibility decision, and replays decision prefixes so the driver in
//! [`crate::model`] can DFS-enumerate the whole interleaving space.
//!
//! Model threads are real OS threads, but only one — the *active* thread —
//! ever runs between two visible operations.  Every visible operation
//! (atomic access, mutex/condvar op, spawn/join/yield) funnels through
//! [`Execution::op`], which mutates the shared [`State`] under a lock and
//! then hands the token to the next thread chosen by the explorer.
//!
//! Memory model: each atomic location keeps its full modification order.  A
//! load may read any store that coherence and happens-before allow, and the
//! choice of store is itself a recorded decision, so stale values permitted
//! by `Relaxed`/`Acquire` orderings are actually explored.  Release stores
//! (and `Release` fences) publish the writer's vector clock; acquire loads
//! (and `Acquire` fences) join it.  `SeqCst` operations additionally
//! synchronize through a global SC clock, approximating the single total
//! order — the same simplification loom itself uses.

use std::collections::VecDeque;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use crate::vclock::VClock;

/// Sentinel panic payload used to unwind model threads when an iteration is
/// aborted (error detected or panic elsewhere).  Caught and swallowed by the
/// model-thread trampoline.
pub(crate) struct AbortUnwind;

/// One recorded nondeterministic decision: `chosen` out of `options`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub options: u32,
    pub chosen: u32,
}

/// Why a thread is not currently runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Mutex(usize),
    Condvar(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSt {
    status: Status,
    /// Deprioritized until every non-yielded thread is blocked or done.
    yielded: bool,
    clock: VClock,
    /// Clock published by a later `Relaxed` store after a `Release` fence.
    rel_fence: Option<VClock>,
    /// Release clocks picked up by `Relaxed` loads, made visible by a later
    /// `Acquire` fence.
    acq_pending: VClock,
    /// Source location of the most recent visible op (for reports).
    last_site: Option<&'static Location<'static>>,
    /// Final clock, recorded at completion (joined by `join()`).
    final_clock: Option<VClock>,
    result: Option<Box<dyn std::any::Any + Send>>,
    /// Per-location coherence floor: smallest store index still readable.
    floors: Vec<usize>,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        ThreadSt {
            status: Status::Runnable,
            yielded: false,
            clock,
            rel_fence: None,
            acq_pending: VClock::new(),
            last_site: None,
            final_clock: None,
            result: None,
            floors: Vec::new(),
        }
    }

    fn floor(&self, loc: usize) -> usize {
        self.floors.get(loc).copied().unwrap_or(0)
    }

    fn set_floor(&mut self, loc: usize, index: usize) {
        if self.floors.len() <= loc {
            self.floors.resize(loc + 1, 0);
        }
        self.floors[loc] = self.floors[loc].max(index);
    }
}

/// One entry in an atomic location's modification order.
struct StoreSt {
    value: u64,
    /// Clock acquire-readers synchronize with (release store, or a relaxed
    /// store promoted by an earlier release fence, or a release sequence
    /// continued through an RMW).
    rel: Option<VClock>,
    /// The writer's full clock at store time; loads whose thread already
    /// happens-after this store may not read anything older.
    writer: VClock,
}

struct AtomicSt {
    stores: Vec<StoreSt>,
}

struct MutexSt {
    held_by: Option<usize>,
    /// Joined from each unlocking thread; acquiring threads join it.
    clock: VClock,
}

struct CondvarSt {
    waiters: VecDeque<usize>,
}

/// One recorded access to an [`crate::cell::UnsafeCell`].
struct CellAccess {
    tid: usize,
    clock: VClock,
    site: &'static Location<'static>,
}

struct CellSt {
    last_write: Option<CellAccess>,
    reads: Vec<CellAccess>,
}

/// Everything mutable about one iteration, behind [`Shared::mx`].
pub(crate) struct State {
    threads: Vec<ThreadSt>,
    active: Option<usize>,
    aborting: bool,
    all_done: bool,
    error: Option<String>,

    /// Prescribed decisions (replay prefix) for this iteration.
    prefix: Vec<u32>,
    /// Every decision actually taken.
    path: Vec<Choice>,
    preemptions: u32,
    preemption_bound: Option<u32>,
    ops_executed: u64,
    max_ops: u64,

    atomics: Vec<AtomicSt>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CondvarSt>,
    cells: Vec<CellSt>,
    sc_clock: VClock,
}

impl State {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(tid, _)| tid)
            .collect()
    }

    /// Record (or replay) one decision among `options` alternatives.
    fn choose(&mut self, options: u32) -> u32 {
        if options <= 1 {
            return 0;
        }
        let position = self.path.len();
        let chosen = if position < self.prefix.len() {
            let c = self.prefix[position];
            assert!(
                c < options,
                "loom internal error: replay diverged (choice {c} of {options} at {position})"
            );
            c
        } else {
            0
        };
        self.path.push(Choice { options, chosen });
        chosen
    }

    fn set_error(&mut self, message: String) {
        if self.error.is_none() {
            self.error = Some(message);
        }
        self.aborting = true;
    }

    /// Pick the next non-finished thread to unwind during an abort, or mark
    /// the iteration done when none remain.
    fn abort_advance(&mut self) {
        match self
            .threads
            .iter()
            .position(|t| t.status != Status::Finished)
        {
            Some(tid) => self.active = Some(tid),
            None => {
                self.active = None;
                self.all_done = true;
            }
        }
    }
}

/// The per-iteration execution shared between the driver and every model
/// thread.
pub(crate) struct Execution {
    mx: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's execution handle, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_context(ctx: Option<(Arc<Execution>, usize)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

type Guard<'a> = std::sync::MutexGuard<'a, State>;

impl Execution {
    pub(crate) fn new(
        prefix: Vec<u32>,
        preemption_bound: Option<u32>,
        max_ops: u64,
    ) -> Arc<Execution> {
        let mut state = State {
            threads: Vec::new(),
            active: Some(0),
            aborting: false,
            all_done: false,
            error: None,
            prefix,
            path: Vec::new(),
            preemptions: 0,
            preemption_bound,
            ops_executed: 0,
            max_ops,
            atomics: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            cells: Vec::new(),
            sc_clock: VClock::new(),
        };
        let mut root_clock = VClock::new();
        root_clock.bump(0);
        state.threads.push(ThreadSt::new(root_clock));
        Arc::new(Execution {
            mx: Mutex::new(state),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> Guard<'_> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Launch the root closure as model thread 0.  Detached: the iteration
    /// is over when every model thread has reached `Finished`.
    pub(crate) fn start_root(self: &Arc<Self>, body: Arc<dyn Fn() + Send + Sync>) {
        let exec = Arc::clone(self);
        std::thread::Builder::new()
            .name("loom-model-0".into())
            .spawn(move || {
                run_model_thread(exec, 0, move || {
                    body();
                    Box::new(()) as Box<dyn std::any::Any + Send>
                })
            })
            .expect("failed to spawn loom model thread");
    }

    /// Block the driver until the iteration completes, returning the decision
    /// path and any detected error.
    pub(crate) fn wait_done(&self) -> (Vec<Choice>, u32, Option<String>) {
        let mut st = self.lock();
        while !st.all_done {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let path = std::mem::take(&mut st.path);
        (path, st.preemptions, st.error.take())
    }

    // ------------------------------------------------------------------
    // Scheduling machinery
    // ------------------------------------------------------------------

    /// Hand the token to the next thread the explorer picks, then (if that
    /// is not the caller) park until the caller becomes active again.
    /// Panics with [`AbortUnwind`] when the iteration is being torn down.
    fn reschedule<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        st.ops_executed += 1;
        if st.ops_executed > st.max_ops {
            let site = st.threads[tid].last_site;
            let max_ops = st.max_ops;
            st.set_error(format!(
                "livelock: exceeded {max_ops} visible operations in one interleaving (last op at {})",
                fmt_site(site),
            ));
        }
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortUnwind);
        }

        let current_runnable = st.threads[tid].status == Status::Runnable;
        let current_yielded = st.threads[tid].yielded;
        let mut candidates: Vec<usize> = st
            .runnable()
            .into_iter()
            .filter(|&t| !st.threads[t].yielded)
            .collect();
        if candidates.is_empty() {
            // Every runnable thread has yielded; let them proceed anyway.
            candidates = st.runnable();
        }
        if candidates.is_empty() {
            self.report_deadlock(&mut st);
            st.abort_advance();
            self.cv.notify_all();
            return self.park(st, tid);
        }

        // Branch 0 continues the current thread when it may continue (a
        // yielded thread may not, unless everyone yielded); other branches
        // are preemptions, admitted only under the bound.  A switch away
        // from a yield point is voluntary and never counts as a preemption.
        if candidates.contains(&tid) {
            candidates.retain(|&t| t != tid);
            let bound_hit = !current_yielded
                && st
                    .preemption_bound
                    .is_some_and(|bound| st.preemptions >= bound);
            if bound_hit {
                candidates.clear();
            }
            candidates.insert(0, tid);
        }

        let chosen = candidates[st.choose(candidates.len() as u32) as usize];
        if current_runnable && !current_yielded && chosen != tid {
            st.preemptions += 1;
        }
        st.threads[chosen].yielded = false;
        st.active = Some(chosen);
        self.cv.notify_all();
        if chosen == tid {
            return st;
        }
        self.park(st, tid)
    }

    /// Park until this thread is active again (or unwind on abort).
    fn park<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        loop {
            if st.active == Some(tid) {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(AbortUnwind);
                }
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn report_deadlock(&self, st: &mut Guard<'_>) {
        let mut lines = Vec::new();
        for (tid, thread) in st.threads.iter().enumerate() {
            let what = match thread.status {
                Status::Blocked(Block::Mutex(m)) => format!("blocked locking mutex #{m}"),
                Status::Blocked(Block::Condvar(c)) => format!("parked on condvar #{c}"),
                Status::Blocked(Block::Join(t)) => format!("joining thread {t}"),
                Status::Runnable => "runnable".into(),
                Status::Finished => continue,
            };
            lines.push(format!(
                "  thread {tid}: {what} (last op at {})",
                fmt_site(thread.last_site)
            ));
        }
        st.set_error(format!(
            "deadlock: every live thread is blocked\n{}",
            lines.join("\n")
        ));
    }

    /// Common prologue for a visible op: asserts the caller holds the token,
    /// stamps the site, and advances the thread's clock by one event.
    fn begin_op<'a>(&'a self, tid: usize, site: &'static Location<'static>) -> Option<Guard<'a>> {
        let mut st = self.lock();
        if st.aborting {
            // Teardown mode: destructors run pass-through, serialized by the
            // abort token (exactly one non-finished thread is active).
            return None;
        }
        debug_assert_eq!(st.active, Some(tid), "visible op from non-active thread");
        st.threads[tid].last_site = Some(site);
        let mut clock = std::mem::take(&mut st.threads[tid].clock);
        clock.bump(tid);
        st.threads[tid].clock = clock;
        Some(st)
    }

    // ------------------------------------------------------------------
    // Atomics
    // ------------------------------------------------------------------

    pub(crate) fn register_atomic(&self, initial: u64) -> usize {
        let mut st = self.lock();
        let writer = VClock::new();
        st.atomics.push(AtomicSt {
            stores: vec![StoreSt {
                value: initial,
                rel: None,
                writer,
            }],
        });
        st.atomics.len() - 1
    }

    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        site: &'static Location<'static>,
    ) -> u64 {
        let Some(mut st) = self.begin_op(tid, site) else {
            return self.direct_load(loc);
        };
        if ord == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.threads[tid].clock.join(&sc);
        }
        let value = self.read_visible(&mut st, tid, loc, ord);
        if ord == Ordering::SeqCst {
            let clock = st.threads[tid].clock.clone();
            st.sc_clock.join(&clock);
        }
        let st = self.reschedule(st, tid);
        drop(st);
        value
    }

    /// Pick (as a recorded decision) which store in the modification order a
    /// load observes, respecting coherence and happens-before.
    fn read_visible(&self, st: &mut Guard<'_>, tid: usize, loc: usize, ord: Ordering) -> u64 {
        let clock = st.threads[tid].clock.clone();
        let newest_hb = st.atomics[loc]
            .stores
            .iter()
            .rposition(|s| s.writer.leq(&clock))
            .unwrap_or(0);
        let floor = st.threads[tid].floor(loc).max(newest_hb);
        let len = st.atomics[loc].stores.len();
        // Newest first: branch 0 is the fully coherent read.
        let n_candidates = (len - floor) as u32;
        let pick = st.choose(n_candidates) as usize;
        let index = len - 1 - pick;
        st.threads[tid].set_floor(loc, index);
        let store = &st.atomics[loc].stores[index];
        let value = store.value;
        let rel = store.rel.clone();
        if let Some(rel) = rel {
            if acquires(ord) {
                st.threads[tid].clock.join(&rel);
            } else {
                st.threads[tid].acq_pending.join(&rel);
            }
        }
        value
    }

    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        loc: usize,
        value: u64,
        ord: Ordering,
        site: &'static Location<'static>,
    ) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return self.direct_store(loc, value);
        };
        if ord == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.threads[tid].clock.join(&sc);
        }
        self.write_store(&mut st, tid, loc, value, ord, None);
        if ord == Ordering::SeqCst {
            let clock = st.threads[tid].clock.clone();
            st.sc_clock.join(&clock);
        }
        let st = self.reschedule(st, tid);
        drop(st);
    }

    /// Append to the modification order.  `sequence` carries the release
    /// clock of the store an RMW replaced, continuing its release sequence.
    fn write_store(
        &self,
        st: &mut Guard<'_>,
        tid: usize,
        loc: usize,
        value: u64,
        ord: Ordering,
        sequence: Option<VClock>,
    ) {
        let mut rel = if releases(ord) {
            Some(st.threads[tid].clock.clone())
        } else {
            st.threads[tid].rel_fence.clone()
        };
        if let Some(prev) = sequence {
            match &mut rel {
                Some(r) => r.join(&prev),
                None => rel = Some(prev),
            }
        }
        let writer = st.threads[tid].clock.clone();
        st.atomics[loc].stores.push(StoreSt { value, rel, writer });
        let index = st.atomics[loc].stores.len() - 1;
        st.threads[tid].set_floor(loc, index);
    }

    /// Atomic read-modify-write.  `op` returns `Some(new)` to commit a new
    /// value or `None` to leave the location unchanged (failed CAS).
    /// Returns the value read.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        failure_ord: Ordering,
        op: impl FnOnce(u64) -> Option<u64>,
        site: &'static Location<'static>,
    ) -> u64 {
        let Some(mut st) = self.begin_op(tid, site) else {
            let old = self.direct_load(loc);
            if let Some(new) = op(old) {
                self.direct_store(loc, new);
            }
            return old;
        };
        if ord == Ordering::SeqCst || failure_ord == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.threads[tid].clock.join(&sc);
        }
        // An RMW always reads the newest store in the modification order.
        let index = st.atomics[loc].stores.len() - 1;
        let old = st.atomics[loc].stores[index].value;
        let prev_rel = st.atomics[loc].stores[index].rel.clone();
        st.threads[tid].set_floor(loc, index);
        let new = op(old);
        let effective = if new.is_some() { ord } else { failure_ord };
        if let Some(rel) = &prev_rel {
            if acquires(effective) {
                st.threads[tid].clock.join(rel);
            } else {
                st.threads[tid].acq_pending.join(rel);
            }
        }
        if let Some(new) = new {
            self.write_store(&mut st, tid, loc, new, ord, prev_rel);
        }
        if ord == Ordering::SeqCst || failure_ord == Ordering::SeqCst {
            let clock = st.threads[tid].clock.clone();
            st.sc_clock.join(&clock);
        }
        let st = self.reschedule(st, tid);
        drop(st);
        old
    }

    pub(crate) fn fence(&self, tid: usize, ord: Ordering, site: &'static Location<'static>) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return;
        };
        if acquires(ord) {
            let pending = st.threads[tid].acq_pending.clone();
            st.threads[tid].clock.join(&pending);
        }
        if ord == Ordering::SeqCst {
            let sc = st.sc_clock.clone();
            st.threads[tid].clock.join(&sc);
        }
        if releases(ord) {
            let clock = st.threads[tid].clock.clone();
            st.threads[tid].rel_fence = Some(clock);
        }
        if ord == Ordering::SeqCst {
            let clock = st.threads[tid].clock.clone();
            st.sc_clock.join(&clock);
        }
        let st = self.reschedule(st, tid);
        drop(st);
    }

    /// Teardown-mode load: newest value, no clocks, no scheduling.  Keeps
    /// destructors that read atomics (e.g. a deque freeing its live buffer)
    /// sound while the iteration unwinds, and serves accesses from threads
    /// outside the model.
    pub(crate) fn direct_load(&self, loc: usize) -> u64 {
        let st = self.lock();
        st.atomics[loc]
            .stores
            .last()
            .map(|s| s.value)
            .expect("atomic location with empty modification order")
    }

    pub(crate) fn direct_store(&self, loc: usize, value: u64) {
        let mut st = self.lock();
        let writer = VClock::new();
        st.atomics[loc].stores.push(StoreSt {
            value,
            rel: None,
            writer,
        });
    }

    // ------------------------------------------------------------------
    // Mutexes and condvars
    // ------------------------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexSt {
            held_by: None,
            clock: VClock::new(),
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn mutex_lock(&self, tid: usize, mid: usize, site: &'static Location<'static>) {
        loop {
            let Some(mut st) = self.begin_op(tid, site) else {
                return; // teardown: pretend success, token serializes us
            };
            if st.mutexes[mid].held_by.is_none() {
                st.mutexes[mid].held_by = Some(tid);
                let clock = st.mutexes[mid].clock.clone();
                st.threads[tid].clock.join(&clock);
                let st = self.reschedule(st, tid);
                drop(st);
                return;
            }
            st.threads[tid].status = Status::Blocked(Block::Mutex(mid));
            let st = self.reschedule(st, tid);
            drop(st);
            // Woken because the holder unlocked; loop and retry the acquire.
        }
    }

    /// Returns false when the mutex is currently held (WouldBlock).
    pub(crate) fn mutex_try_lock(
        &self,
        tid: usize,
        mid: usize,
        site: &'static Location<'static>,
    ) -> bool {
        let Some(mut st) = self.begin_op(tid, site) else {
            return true;
        };
        let acquired = st.mutexes[mid].held_by.is_none();
        if acquired {
            st.mutexes[mid].held_by = Some(tid);
            let clock = st.mutexes[mid].clock.clone();
            st.threads[tid].clock.join(&clock);
        }
        let st = self.reschedule(st, tid);
        drop(st);
        acquired
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, mid: usize, site: &'static Location<'static>) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return;
        };
        debug_assert_eq!(st.mutexes[mid].held_by, Some(tid), "unlock of unheld mutex");
        let clock = st.threads[tid].clock.clone();
        st.mutexes[mid].clock.join(&clock);
        st.mutexes[mid].held_by = None;
        self.wake_mutex_waiters(&mut st, mid);
        let st = self.reschedule(st, tid);
        drop(st);
    }

    fn wake_mutex_waiters(&self, st: &mut Guard<'_>, mid: usize) {
        for thread in st.threads.iter_mut() {
            if thread.status == Status::Blocked(Block::Mutex(mid)) {
                thread.status = Status::Runnable;
            }
        }
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CondvarSt {
            waiters: VecDeque::new(),
        });
        st.condvars.len() - 1
    }

    /// Atomically release `mid`, park on `cid`, and (after being notified)
    /// re-acquire `mid`.  The model deliberately has no timeout path: a
    /// wakeup that never comes is a deadlock the checker reports, rather
    /// than a stall a timeout backstop would mask.
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cid: usize,
        mid: usize,
        site: &'static Location<'static>,
    ) {
        {
            let Some(mut st) = self.begin_op(tid, site) else {
                return;
            };
            debug_assert_eq!(st.mutexes[mid].held_by, Some(tid), "wait without the lock");
            let clock = st.threads[tid].clock.clone();
            st.mutexes[mid].clock.join(&clock);
            st.mutexes[mid].held_by = None;
            self.wake_mutex_waiters(&mut st, mid);
            st.condvars[cid].waiters.push_back(tid);
            st.threads[tid].status = Status::Blocked(Block::Condvar(cid));
            let st = self.reschedule(st, tid);
            drop(st);
        }
        // Notified: reacquire the mutex like any other contender.
        self.mutex_lock(tid, mid, site);
    }

    pub(crate) fn condvar_notify_one(
        &self,
        tid: usize,
        cid: usize,
        site: &'static Location<'static>,
    ) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return;
        };
        if !st.condvars[cid].waiters.is_empty() {
            // Which waiter wakes is a real nondeterminism: branch on it.
            let n = st.condvars[cid].waiters.len() as u32;
            let pick = st.choose(n) as usize;
            let woken = st.condvars[cid].waiters.remove(pick).unwrap();
            st.threads[woken].status = Status::Runnable;
        }
        let st = self.reschedule(st, tid);
        drop(st);
    }

    pub(crate) fn condvar_notify_all(
        &self,
        tid: usize,
        cid: usize,
        site: &'static Location<'static>,
    ) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return;
        };
        while let Some(woken) = st.condvars[cid].waiters.pop_front() {
            st.threads[woken].status = Status::Runnable;
        }
        let st = self.reschedule(st, tid);
        drop(st);
    }

    // ------------------------------------------------------------------
    // UnsafeCell race detection
    // ------------------------------------------------------------------

    pub(crate) fn register_cell(&self) -> usize {
        let mut st = self.lock();
        st.cells.push(CellSt {
            last_write: None,
            reads: Vec::new(),
        });
        st.cells.len() - 1
    }

    /// Record a shared (read) access; reports a race against any write not
    /// ordered before the reader by happens-before.
    pub(crate) fn cell_read(&self, tid: usize, cell: usize, site: &'static Location<'static>) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        let clock = st.threads[tid].clock.clone();
        if let Some(write) = &st.cells[cell].last_write {
            if write.tid != tid && !happens_before(write, &clock) {
                let message = format!(
                    "data race on UnsafeCell: read at {} races with write at {} (thread {})",
                    site, write.site, write.tid
                );
                self.fail_current(st, tid, message);
            }
        }
        st.cells[cell].reads.push(CellAccess { tid, clock, site });
    }

    /// Record an exclusive (write) access; reports a race against any prior
    /// read or write not ordered before the writer.
    pub(crate) fn cell_write(&self, tid: usize, cell: usize, site: &'static Location<'static>) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        let clock = st.threads[tid].clock.clone();
        let conflict = {
            let cell_st = &st.cells[cell];
            let write_conflict = cell_st
                .last_write
                .as_ref()
                .filter(|w| w.tid != tid && !happens_before(w, &clock));
            let read_conflict = cell_st
                .reads
                .iter()
                .find(|r| r.tid != tid && !happens_before(r, &clock));
            write_conflict
                .map(|w| ("write", w.site, w.tid))
                .or(read_conflict.map(|r| ("read", r.site, r.tid)))
        };
        if let Some((kind, other_site, other_tid)) = conflict {
            let message = format!(
                "data race on UnsafeCell: write at {site} races with {kind} at {other_site} (thread {other_tid})"
            );
            self.fail_current(st, tid, message);
        }
        st.cells[cell].reads.clear();
        st.cells[cell].last_write = Some(CellAccess { tid, clock, site });
    }

    /// Record an error attributed to the current thread and unwind it.
    fn fail_current(&self, mut st: Guard<'_>, _tid: usize, message: String) -> ! {
        st.set_error(message);
        st.abort_advance();
        self.cv.notify_all();
        drop(st);
        std::panic::panic_any(AbortUnwind);
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Register a child thread spawned by `tid` and return its id.  This is
    /// deliberately NOT a visible op: the caller must still start the OS
    /// thread, so the scheduler may not switch away here (the child only
    /// becomes runnable in the state table; the first actual switch to it
    /// happens at a later visible op, which explores the same interleavings
    /// because invisible work commutes).  Returns `None` during teardown.
    pub(crate) fn spawn_thread(&self, tid: usize) -> Option<usize> {
        let mut st = self.lock();
        if st.aborting {
            return None;
        }
        let child = st.threads.len();
        let mut clock = st.threads[tid].clock.clone();
        clock.bump(child);
        st.threads.push(ThreadSt::new(clock));
        Some(child)
    }

    /// The visible half of spawn, performed once the child's OS thread
    /// exists: a pure scheduling point so interleavings where the child
    /// runs before the parent's next operation are explored.
    pub(crate) fn spawn_fence(&self, tid: usize, site: &'static Location<'static>) {
        let Some(st) = self.begin_op(tid, site) else {
            return;
        };
        let st = self.reschedule(st, tid);
        drop(st);
    }

    pub(crate) fn join_thread(
        &self,
        tid: usize,
        target: usize,
        site: &'static Location<'static>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            let mut st = self.begin_op(tid, site)?;
            if st.threads[target].status == Status::Finished {
                let final_clock = st.threads[target]
                    .final_clock
                    .clone()
                    .expect("finished thread without a final clock");
                st.threads[tid].clock.join(&final_clock);
                let result = st.threads[target].result.take();
                let st = self.reschedule(st, tid);
                drop(st);
                return result;
            }
            st.threads[tid].status = Status::Blocked(Block::Join(target));
            let st = self.reschedule(st, tid);
            drop(st);
        }
    }

    pub(crate) fn yield_now(&self, tid: usize, site: &'static Location<'static>) {
        let Some(mut st) = self.begin_op(tid, site) else {
            return;
        };
        st.threads[tid].yielded = true;
        // Model C11's eventual-visibility guarantee (forward progress,
        // [atomics.order]p11): a yield marks the passage of time, after
        // which the thread's next load of each location must observe at
        // least the currently-newest store.  Without this, a spin loop
        // could re-read the same stale value forever and the DFS tree
        // would be infinite; with it, each spin explores the stale branch
        // once per store and then terminates.
        for loc in 0..st.atomics.len() {
            let latest = st.atomics[loc].stores.len() - 1;
            st.threads[tid].set_floor(loc, latest);
        }
        let st = self.reschedule(st, tid);
        drop(st);
    }

    /// Invoked from the global panic hook at panic-initiation time, before
    /// the unwind starts: flips the execution into teardown so destructors
    /// on the unwinding stack run pass-through instead of exploring (and a
    /// parked sibling can never be left waiting for a token that died).
    pub(crate) fn handle_user_panic(&self, tid: usize, message: String) {
        let mut st = self.lock();
        st.set_error(format!("thread {tid} {message}"));
        st.abort_advance();
        self.cv.notify_all();
    }

    /// Called by the model-thread trampoline when its closure returns or
    /// unwinds.
    fn finish(&self, tid: usize, outcome: ThreadOutcome) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        let final_clock = st.threads[tid].clock.clone();
        st.threads[tid].final_clock = Some(final_clock);
        match outcome {
            ThreadOutcome::Ok(result) => st.threads[tid].result = Some(result),
            ThreadOutcome::Aborted => {}
            ThreadOutcome::Panicked(message) => {
                st.set_error(format!("thread {tid} panicked: {message}"));
            }
        }
        // Wake joiners.
        for thread in st.threads.iter_mut() {
            if thread.status == Status::Blocked(Block::Join(tid)) {
                thread.status = Status::Runnable;
            }
        }
        if st.aborting {
            st.abort_advance();
            self.cv.notify_all();
            return;
        }
        let runnable = st.runnable();
        match runnable.first() {
            Some(_) => {
                let chosen = runnable[st.choose(runnable.len() as u32) as usize];
                st.threads[chosen].yielded = false;
                st.active = Some(chosen);
            }
            None => {
                if st.threads.iter().all(|t| t.status == Status::Finished) {
                    st.active = None;
                    st.all_done = true;
                } else {
                    self.report_deadlock(&mut st);
                    st.abort_advance();
                }
            }
        }
        self.cv.notify_all();
    }
}

enum ThreadOutcome {
    Ok(Box<dyn std::any::Any + Send>),
    Panicked(String),
    Aborted,
}

/// Trampoline every model OS thread runs: wait for first activation, run the
/// closure under `catch_unwind`, then hand off through [`Execution::finish`].
pub(crate) fn run_model_thread(
    exec: Arc<Execution>,
    tid: usize,
    body: impl FnOnce() -> Box<dyn std::any::Any + Send>,
) {
    {
        let st = exec.lock();
        let st = exec.park(st, tid);
        drop(st);
    }
    set_context(Some((Arc::clone(&exec), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_context(None);
    let outcome = match result {
        Ok(value) => ThreadOutcome::Ok(value),
        Err(payload) => {
            if payload.is::<AbortUnwind>() {
                ThreadOutcome::Aborted
            } else {
                ThreadOutcome::Panicked(panic_message(payload.as_ref()))
            }
        }
    };
    exec.finish(tid, outcome);
}

/// The park entry for a thread waiting for its very first activation must
/// not unwind user code (there is none yet), so `park` is reused: on abort
/// it panics `AbortUnwind`, which we intercept here.
impl Execution {
    fn park_first(self: &Arc<Self>, tid: usize) -> bool {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let st = self.lock();
            let st = self.park(st, tid);
            drop(st);
        }));
        outcome.is_ok()
    }
}

/// Trampoline for spawned (non-root) threads: like [`run_model_thread`] but
/// tolerating an abort that lands before the thread ever ran.
pub(crate) fn run_spawned_thread(
    exec: Arc<Execution>,
    tid: usize,
    body: impl FnOnce() -> Box<dyn std::any::Any + Send>,
) {
    if !exec.park_first(tid) {
        exec.finish(tid, ThreadOutcome::Aborted);
        return;
    }
    set_context(Some((Arc::clone(&exec), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_context(None);
    let outcome = match result {
        Ok(value) => ThreadOutcome::Ok(value),
        Err(payload) => {
            if payload.is::<AbortUnwind>() {
                ThreadOutcome::Aborted
            } else {
                ThreadOutcome::Panicked(panic_message(payload.as_ref()))
            }
        }
    };
    exec.finish(tid, outcome);
}

fn happens_before(access: &CellAccess, observer: &VClock) -> bool {
    access.clock.get(access.tid) <= observer.get(access.tid)
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn fmt_site(site: Option<&'static Location<'static>>) -> String {
    match site {
        Some(site) => site.to_string(),
        None => "<start>".into(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}
