//! Offline loom-style concurrency model checker.
//!
//! [`model`] runs a closure under a deterministic cooperative scheduler and
//! re-runs it until every reachable thread interleaving (under the
//! configured preemption bound) has been explored.  Each nondeterministic
//! decision — which thread runs next, which store in the modification order
//! a relaxed load observes, which condvar waiter a notify wakes — is
//! recorded on a decision path; the driver DFS-advances that path between
//! iterations and replays the prefix, exactly like loom's permutation
//! search.
//!
//! On top of the scheduler sit:
//!
//! - a memory-ordering model (per-location store histories plus vector
//!   clocks) that makes stale reads permitted by `Relaxed`/`Acquire`
//!   orderings actually observable, so ordering bugs fail, not just races;
//! - a happens-before race detector on [`cell::UnsafeCell`] accesses that
//!   reports the two conflicting source locations;
//! - deadlock and livelock detection (a lost wakeup parks forever in the
//!   model — `wait_timeout` deliberately never times out — and surfaces as
//!   a reported deadlock rather than a masked stall).
//!
//! The API mirrors the subset of loom the workspace shims need
//! (`loom::thread`, `loom::sync::{Mutex, Condvar, atomic}`,
//! `loom::cell::UnsafeCell`, `loom::model`); every type degrades to the
//! plain `std` primitive when constructed outside a model closure, so
//! instrumented code paths also run unchanged in ordinary tests.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let other = Arc::clone(&counter);
//!     let handle = loom::thread::spawn(move || {
//!         other.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     handle.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.iterations >= 2);
//! ```

pub mod cell;
pub mod sync;
pub mod thread;

mod atomic;
mod exec;
mod vclock;

pub mod hint {
    /// Modeled like [`crate::thread::yield_now`]: a spinning thread is
    /// deprioritized so exploration terminates.
    #[track_caller]
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

use std::sync::Arc;

/// Summary of one completed exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub iterations: u64,
    /// Longest decision path encountered (scheduling + visibility choices).
    pub max_depth: usize,
    /// True when the iteration cap stopped the search before exhaustion.
    pub truncated: bool,
}

/// Exploration configuration, loom-style.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Maximum involuntary context switches per interleaving; `None`
    /// explores every schedule.  Small bounds (2–3) reach almost all real
    /// bugs (iterative context bounding) at a fraction of the cost.
    pub preemption_bound: Option<u32>,
    /// Hard cap on explored interleavings; exceeding it sets
    /// [`Report::truncated`] instead of running forever.  Overridable with
    /// `DYNMO_LOOM_MAX_ITER`.
    pub max_iterations: u64,
    /// Per-interleaving visible-operation cap (livelock backstop).
    pub max_ops: u64,
}

impl Default for Builder {
    fn default() -> Self {
        let max_iterations = std::env::var("DYNMO_LOOM_MAX_ITER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        Builder {
            preemption_bound: None,
            max_iterations,
            max_ops: 100_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Explore `body` until exhaustion (or the iteration cap), panicking on
    /// the first interleaving that exhibits an error — assertion failure,
    /// data race, deadlock, or livelock — with the failing decision path's
    /// diagnostics.
    pub fn check<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let mut prefix: Vec<u32> = Vec::new();
        let mut iterations = 0u64;
        let mut max_depth = 0usize;
        loop {
            let execution = exec::Execution::new(prefix, self.preemption_bound, self.max_ops);
            execution.start_root(Arc::clone(&body));
            let (path, _preemptions, error) = execution.wait_done();
            iterations += 1;
            max_depth = max_depth.max(path.len());
            if let Some(error) = error {
                panic!(
                    "loom model failure after {iterations} interleaving(s) \
                     (decision depth {}): {error}",
                    path.len()
                );
            }
            // DFS advance: drop exhausted trailing decisions, bump the
            // deepest one with alternatives left.
            let mut next = path;
            loop {
                match next.last_mut() {
                    None => {
                        return Report {
                            iterations,
                            max_depth,
                            truncated: false,
                        };
                    }
                    Some(choice) if choice.chosen + 1 < choice.options => {
                        choice.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        next.pop();
                    }
                }
            }
            if iterations >= self.max_iterations {
                return Report {
                    iterations,
                    max_depth,
                    truncated: true,
                };
            }
            prefix = next.into_iter().map(|choice| choice.chosen).collect();
        }
    }
}

/// Explore `body` with the default [`Builder`].
pub fn model<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(body)
}

/// One global hook: a panic on a model thread aborts its execution (so the
/// report names the interleaving) instead of printing; every other panic
/// falls through to the previous hook.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<exec::AbortUnwind>().is_some() {
                // Controlled teardown unwind, never an error.
                return;
            }
            if let Some((execution, tid)) = exec::current() {
                let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                let site = info
                    .location()
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "<unknown>".to_string());
                execution.handle_user_panic(tid, format!("panicked at {site}: {message}"));
                return;
            }
            previous(info);
        }));
    });
}
