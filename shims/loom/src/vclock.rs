//! Vector clocks: one logical counter per model thread, used both for
//! happens-before race detection on [`crate::cell::UnsafeCell`] accesses and
//! for modeling release/acquire visibility on atomics.

/// A vector clock over model-thread ids.  Missing entries are zero, so
/// clocks grow lazily as threads spawn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    pub(crate) fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// This clock's view of thread `tid`.
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    fn ensure(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
    }

    /// Advance thread `tid`'s own component by one event.
    pub(crate) fn bump(&mut self, tid: usize) {
        self.ensure(tid);
        self.slots[tid] += 1;
    }

    /// Pointwise maximum with `other`.
    pub(crate) fn join(&mut self, other: &VClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether every component of `self` is `<=` the matching component of
    /// `other` (i.e. the event this clock stamps happens-before `other`'s
    /// view).
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(tid, &v)| v <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new();
        b.bump(1);
        assert!(!a.leq(&b));
        b.join(&a);
        assert!(a.leq(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn missing_entries_read_zero() {
        let clock = VClock::new();
        assert_eq!(clock.get(7), 0);
        assert!(clock.leq(&VClock::new()));
    }
}
