//! Model-aware `Mutex` and `Condvar` mirroring the `std::sync` API surface
//! the shims use, plus local mirrors of std's lock error types (std's have
//! no public constructors, so instrumented code needs ours in both modes).
//!
//! Like the atomics, each primitive binds to the model execution at
//! construction time and degrades to the real std primitive outside a model.

use std::panic::Location;
use std::sync::Arc as StdArc;

pub use std::sync::Arc;

use crate::exec::{self, Execution};

pub mod atomic {
    pub use crate::atomic::*;
}

// ---------------------------------------------------------------------------
// std error mirrors
// ---------------------------------------------------------------------------

/// Mirror of `std::sync::PoisonError`.  Model locks never poison; the std
/// fallback maps real poisoning into this type.
pub struct PoisonError<T> {
    guard: T,
}

impl<T> PoisonError<T> {
    pub fn new(guard: T) -> Self {
        PoisonError { guard }
    }

    pub fn into_inner(self) -> T {
        self.guard
    }
}

impl<T> std::fmt::Debug for PoisonError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

impl<T> std::fmt::Display for PoisonError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("poisoned lock: another task failed inside")
    }
}

/// Mirror of `std::sync::TryLockError`.
pub enum TryLockError<T> {
    Poisoned(PoisonError<T>),
    WouldBlock,
}

impl<T> std::fmt::Debug for TryLockError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryLockError::Poisoned(_) => f.write_str("Poisoned(..)"),
            TryLockError::WouldBlock => f.write_str("WouldBlock"),
        }
    }
}

pub type LockResult<T> = Result<T, PoisonError<T>>;
pub type TryLockResult<T> = Result<T, TryLockError<T>>;

/// Mirror of `std::sync::WaitTimeoutResult`.  The model has no clock, so
/// modeled waits never report a timeout — a wakeup that never arrives is a
/// deadlock the checker flags instead of a stall a timeout would mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

enum MutexRepr<T> {
    Std(std::sync::Mutex<T>),
    Model {
        exec: StdArc<Execution>,
        mid: usize,
        /// Protected by the model's lock-state machine: only the token
        /// holder that observed `held_by == Some(me)` touches it.
        data: std::cell::UnsafeCell<T>,
    },
}

pub struct Mutex<T> {
    repr: MutexRepr<T>,
}

// SAFETY: mirrors std — the lock protocol makes the inner data safe to
// share.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

fn model_tid(exec: &StdArc<Execution>) -> Option<usize> {
    let (current, tid) = exec::current()?;
    StdArc::ptr_eq(&current, exec).then_some(tid)
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        let repr = match exec::current() {
            Some((exec, _tid)) => {
                let mid = exec.register_mutex();
                MutexRepr::Model {
                    exec,
                    mid,
                    data: std::cell::UnsafeCell::new(data),
                }
            }
            None => MutexRepr::Std(std::sync::Mutex::new(data)),
        };
        Mutex { repr }
    }

    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.repr {
            MutexRepr::Std(m) => match m.lock() {
                Ok(guard) => Ok(MutexGuard {
                    repr: GuardRepr::Std(guard),
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    repr: GuardRepr::Std(poison.into_inner()),
                })),
            },
            MutexRepr::Model { exec, mid, .. } => {
                if let Some(tid) = model_tid(exec) {
                    exec.mutex_lock(tid, *mid, Location::caller());
                }
                Ok(MutexGuard {
                    repr: GuardRepr::Model { mutex: self },
                })
            }
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match &self.repr {
            MutexRepr::Std(m) => match m.try_lock() {
                Ok(guard) => Ok(MutexGuard {
                    repr: GuardRepr::Std(guard),
                }),
                Err(std::sync::TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(std::sync::TryLockError::Poisoned(poison)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        repr: GuardRepr::Std(poison.into_inner()),
                    })))
                }
            },
            MutexRepr::Model { exec, mid, .. } => {
                let acquired = match model_tid(exec) {
                    Some(tid) => exec.mutex_try_lock(tid, *mid, Location::caller()),
                    None => true,
                };
                if acquired {
                    Ok(MutexGuard {
                        repr: GuardRepr::Model { mutex: self },
                    })
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        match self.repr {
            MutexRepr::Std(m) => match m.into_inner() {
                Ok(data) => Ok(data),
                Err(poison) => Err(PoisonError::new(poison.into_inner())),
            },
            MutexRepr::Model { data, .. } => Ok(data.into_inner()),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

enum GuardRepr<'a, T> {
    Std(std::sync::MutexGuard<'a, T>),
    Model { mutex: &'a Mutex<T> },
}

pub struct MutexGuard<'a, T> {
    repr: GuardRepr<'a, T>,
}

impl<'a, T> MutexGuard<'a, T> {
    fn model_parts(&self) -> Option<(&'a StdArc<Execution>, usize, &'a std::cell::UnsafeCell<T>)> {
        match &self.repr {
            GuardRepr::Std(_) => None,
            GuardRepr::Model { mutex } => match &mutex.repr {
                MutexRepr::Model { exec, mid, data } => Some((exec, *mid, data)),
                MutexRepr::Std(_) => unreachable!("model guard over std mutex"),
            },
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.repr {
            GuardRepr::Std(guard) => guard,
            GuardRepr::Model { .. } => {
                let (_, _, data) = self.model_parts().unwrap();
                // SAFETY: the model lock-state machine grants this guard
                // exclusive ownership of `data` until drop; only the
                // scheduler token holder can be here.
                unsafe { &*data.get() }
            }
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        if let Some((_, _, data)) = self.model_parts() {
            // SAFETY: as in `deref` — the guard holds the model lock.
            return unsafe { &mut *data.get() };
        }
        match &mut self.repr {
            GuardRepr::Std(guard) => guard,
            GuardRepr::Model { .. } => unreachable!(),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if let Some((exec, mid, _)) = self.model_parts() {
            if let Some(tid) = model_tid(exec) {
                exec.mutex_unlock(tid, mid, Location::caller());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

enum CondvarRepr {
    Std(std::sync::Condvar),
    Model { exec: StdArc<Execution>, cid: usize },
}

pub struct Condvar {
    repr: CondvarRepr,
}

impl Condvar {
    pub fn new() -> Self {
        let repr = match exec::current() {
            Some((exec, _tid)) => {
                let cid = exec.register_condvar();
                CondvarRepr::Model { exec, cid }
            }
            None => CondvarRepr::Std(std::sync::Condvar::new()),
        };
        Condvar { repr }
    }

    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &self.repr {
            CondvarRepr::Std(cv) => {
                let GuardRepr::Std(inner) = into_repr(guard) else {
                    panic!("std condvar waited on with a model mutex guard");
                };
                match cv.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        repr: GuardRepr::Std(g),
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        repr: GuardRepr::Std(poison.into_inner()),
                    })),
                }
            }
            CondvarRepr::Model { exec, cid } => {
                let GuardRepr::Model { mutex } = into_repr(guard) else {
                    panic!("model condvar waited on with a std mutex guard");
                };
                let MutexRepr::Model { mid, .. } = &mutex.repr else {
                    unreachable!("model guard over std mutex");
                };
                if let Some(tid) = model_tid(exec) {
                    exec.condvar_wait(tid, *cid, *mid, Location::caller());
                }
                Ok(MutexGuard {
                    repr: GuardRepr::Model { mutex },
                })
            }
        }
    }

    /// In a model, the duration is ignored and the wait never times out; see
    /// [`WaitTimeoutResult`].
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match &self.repr {
            CondvarRepr::Std(cv) => {
                let GuardRepr::Std(inner) = into_repr(guard) else {
                    panic!("std condvar waited on with a model mutex guard");
                };
                match cv.wait_timeout(inner, dur) {
                    Ok((g, timeout)) => Ok((
                        MutexGuard {
                            repr: GuardRepr::Std(g),
                        },
                        WaitTimeoutResult(timeout.timed_out()),
                    )),
                    Err(poison) => {
                        let (g, timeout) = poison.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                repr: GuardRepr::Std(g),
                            },
                            WaitTimeoutResult(timeout.timed_out()),
                        )))
                    }
                }
            }
            CondvarRepr::Model { .. } => {
                let guard = self.wait(guard).unwrap_or_else(|e| e.into_inner());
                Ok((guard, WaitTimeoutResult(false)))
            }
        }
    }

    #[track_caller]
    pub fn notify_one(&self) {
        match &self.repr {
            CondvarRepr::Std(cv) => cv.notify_one(),
            CondvarRepr::Model { exec, cid } => {
                if let Some(tid) = model_tid(exec) {
                    exec.condvar_notify_one(tid, *cid, Location::caller());
                }
            }
        }
    }

    #[track_caller]
    pub fn notify_all(&self) {
        match &self.repr {
            CondvarRepr::Std(cv) => cv.notify_all(),
            CondvarRepr::Model { exec, cid } => {
                if let Some(tid) = model_tid(exec) {
                    exec.condvar_notify_all(tid, *cid, Location::caller());
                }
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Dismantle a guard without running its `Drop` (the wait path releases the
/// model mutex itself).
fn into_repr<T>(guard: MutexGuard<'_, T>) -> GuardRepr<'_, T> {
    let guard = std::mem::ManuallyDrop::new(guard);
    // SAFETY: `guard` is ManuallyDrop, so its Drop (model unlock) will not
    // run; ownership of the repr moves to the caller exactly once.
    unsafe { std::ptr::read(&guard.repr) }
}
