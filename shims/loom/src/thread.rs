//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Spawning inside a model registers a new model thread (the spawn itself is
//! a visible operation, so the child's first step is explored against every
//! schedule); outside a model this is plain `std::thread`.

use std::any::Any;
use std::panic::Location;
use std::sync::Arc;

use crate::exec::{self, Execution};

enum JoinRepr<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Execution>,
        child: usize,
        _marker: std::marker::PhantomData<fn() -> T>,
    },
}

pub struct JoinHandle<T> {
    repr: JoinRepr<T>,
}

impl<T: Send + 'static> JoinHandle<T> {
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        match self.repr {
            JoinRepr::Std(handle) => handle.join(),
            JoinRepr::Model { exec, child, .. } => {
                let Some((current, tid)) = exec::current() else {
                    panic!("model JoinHandle joined from outside the model");
                };
                assert!(
                    Arc::ptr_eq(&current, &exec),
                    "model JoinHandle joined from a different model execution"
                );
                match exec.join_thread(tid, child, Location::caller()) {
                    Some(result) => Ok(*result
                        .downcast::<T>()
                        .expect("model thread result of unexpected type")),
                    // Teardown, or the child panicked (the model records the
                    // error); propagate an opaque join error like std does.
                    None => Err(Box::new("loom model thread did not produce a result")
                        as Box<dyn Any + Send>),
                }
            }
        }
    }
}

#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((exec, tid)) = exec::current() {
        if let Some(child) = exec.spawn_thread(tid) {
            let thread_exec = Arc::clone(&exec);
            std::thread::Builder::new()
                .name(format!("loom-model-{child}"))
                .spawn(move || {
                    exec::run_spawned_thread(thread_exec, child, move || {
                        Box::new(f()) as Box<dyn Any + Send>
                    })
                })
                .expect("failed to spawn loom model thread");
            // Now that the child's OS thread exists, give the scheduler a
            // branch point at the spawn site.
            exec.spawn_fence(tid, Location::caller());
            return JoinHandle {
                repr: JoinRepr::Model {
                    exec,
                    child,
                    _marker: std::marker::PhantomData,
                },
            };
        }
        // Teardown: the iteration is unwinding; run detached on a real
        // thread so the caller's control flow still works.
    }
    JoinHandle {
        repr: JoinRepr::Std(std::thread::spawn(f)),
    }
}

/// Cooperative yield: in a model the thread is deprioritized until every
/// other runnable thread has had a chance to run (so spin-wait loops make
/// progress without exploding the search space).
#[track_caller]
pub fn yield_now() {
    match exec::current() {
        Some((exec, tid)) => exec.yield_now(tid, Location::caller()),
        None => std::thread::yield_now(),
    }
}
