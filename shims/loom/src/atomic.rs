//! Model-aware atomic types mirroring `std::sync::atomic`.
//!
//! Each atomic decides at construction time whether it lives inside a model
//! execution (a [`crate::model`] closure is running on this thread): model
//! atomics route every access through the execution engine, which records
//! the full modification order and explores which store each load observes;
//! atomics constructed outside a model degrade to the real `std` primitive,
//! so code instrumented with these types behaves identically when exercised
//! by ordinary tests.

use std::panic::Location;
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

use crate::exec::{self, Execution};

/// Values are modeled as raw `u64` bit patterns so one store-history
/// implementation serves every atomic width.
trait Bits: Copy {
    fn to_bits(self) -> u64;
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_bits {
    ($ty:ty, $via:ty) => {
        impl Bits for $ty {
            fn to_bits(self) -> u64 {
                self as $via as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $via as $ty
            }
        }
    };
}

impl_bits!(usize, u64);
impl_bits!(isize, i64);
impl_bits!(u64, u64);
impl_bits!(u32, u32);
impl_bits!(i64, i64);
impl_bits!(i32, i32);

impl Bits for bool {
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

enum Repr<S> {
    /// Constructed outside any model: defer to the real primitive.
    Std(S),
    /// Constructed inside a model: `loc` indexes the execution's store
    /// histories.
    Model { exec: Arc<Execution>, loc: usize },
}

/// The calling thread's model id, when it belongs to `exec`'s execution.
fn model_tid(exec: &Arc<Execution>) -> Option<usize> {
    let (current, tid) = exec::current()?;
    Arc::ptr_eq(&current, exec).then_some(tid)
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty, $std:ty) => {
        pub struct $name {
            repr: Repr<$std>,
        }

        impl $name {
            pub fn new(value: $ty) -> Self {
                let repr = match exec::current() {
                    Some((exec, _tid)) => {
                        let loc = exec.register_atomic(Bits::to_bits(value));
                        Repr::Model { exec, loc }
                    }
                    None => Repr::Std(<$std>::new(value)),
                };
                $name { repr }
            }

            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $ty {
                match &self.repr {
                    Repr::Std(a) => a.load(ord),
                    Repr::Model { exec, loc } => {
                        let bits = match model_tid(exec) {
                            Some(tid) => exec.atomic_load(tid, *loc, ord, Location::caller()),
                            None => exec.direct_load(*loc),
                        };
                        Bits::from_bits(bits)
                    }
                }
            }

            #[track_caller]
            pub fn store(&self, value: $ty, ord: Ordering) {
                match &self.repr {
                    Repr::Std(a) => a.store(value, ord),
                    Repr::Model { exec, loc } => match model_tid(exec) {
                        Some(tid) => exec.atomic_store(
                            tid,
                            *loc,
                            Bits::to_bits(value),
                            ord,
                            Location::caller(),
                        ),
                        None => exec.direct_store(*loc, Bits::to_bits(value)),
                    },
                }
            }

            #[track_caller]
            pub fn swap(&self, value: $ty, ord: Ordering) -> $ty {
                match &self.repr {
                    Repr::Std(a) => a.swap(value, ord),
                    Repr::Model { exec, loc } => {
                        let bits = Bits::to_bits(value);
                        self.rmw(exec, *loc, ord, ord, move |_| Some(bits))
                    }
                }
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match &self.repr {
                    Repr::Std(a) => a.compare_exchange(current, new, success, failure),
                    Repr::Model { exec, loc } => {
                        let want = Bits::to_bits(current);
                        let next = Bits::to_bits(new);
                        let old = self.rmw(exec, *loc, success, failure, move |v| {
                            (v == want).then_some(next)
                        });
                        if Bits::to_bits(old) == want {
                            Ok(old)
                        } else {
                            Err(old)
                        }
                    }
                }
            }

            /// The model treats weak CAS as strong (no spurious failures);
            /// this under-approximates liveness, never safety.
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match &self.repr {
                    Repr::Std(a) => a.compare_exchange_weak(current, new, success, failure),
                    Repr::Model { .. } => self.compare_exchange(current, new, success, failure),
                }
            }

            #[track_caller]
            fn rmw(
                &self,
                exec: &Arc<Execution>,
                loc: usize,
                ord: Ordering,
                failure_ord: Ordering,
                op: impl FnOnce(u64) -> Option<u64>,
            ) -> $ty {
                let bits = match model_tid(exec) {
                    Some(tid) => {
                        exec.atomic_rmw(tid, loc, ord, failure_ord, op, Location::caller())
                    }
                    None => {
                        let old = exec.direct_load(loc);
                        if let Some(new) = op(old) {
                            exec.direct_store(loc, new);
                        }
                        old
                    }
                };
                Bits::from_bits(bits)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

macro_rules! model_atomic_arith {
    ($name:ident, $ty:ty) => {
        impl $name {
            #[track_caller]
            pub fn fetch_add(&self, value: $ty, ord: Ordering) -> $ty {
                match &self.repr {
                    Repr::Std(a) => a.fetch_add(value, ord),
                    Repr::Model { exec, loc } => self.rmw(exec, *loc, ord, ord, move |old| {
                        Some(Bits::to_bits(
                            <$ty as Bits>::from_bits(old).wrapping_add(value),
                        ))
                    }),
                }
            }

            #[track_caller]
            pub fn fetch_sub(&self, value: $ty, ord: Ordering) -> $ty {
                match &self.repr {
                    Repr::Std(a) => a.fetch_sub(value, ord),
                    Repr::Model { exec, loc } => self.rmw(exec, *loc, ord, ord, move |old| {
                        Some(Bits::to_bits(
                            <$ty as Bits>::from_bits(old).wrapping_sub(value),
                        ))
                    }),
                }
            }
        }
    };
}

model_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
model_atomic!(AtomicIsize, isize, std::sync::atomic::AtomicIsize);
model_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
model_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);
model_atomic!(AtomicBool, bool, std::sync::atomic::AtomicBool);

model_atomic_arith!(AtomicUsize, usize);
model_atomic_arith!(AtomicIsize, isize);
model_atomic_arith!(AtomicU64, u64);
model_atomic_arith!(AtomicU32, u32);

impl AtomicBool {
    #[track_caller]
    pub fn fetch_or(&self, value: bool, ord: Ordering) -> bool {
        match &self.repr {
            Repr::Std(a) => a.fetch_or(value, ord),
            Repr::Model { exec, loc } => self.rmw(exec, *loc, ord, ord, move |old| {
                Some(Bits::to_bits(bool::from_bits(old) | value))
            }),
        }
    }
}

/// Pointer-valued atomic; the model stores the address bits like any other
/// location.
pub struct AtomicPtr<T> {
    repr: Repr<std::sync::atomic::AtomicPtr<T>>,
    _marker: std::marker::PhantomData<*mut T>,
}

// SAFETY: like `std::sync::atomic::AtomicPtr` — the cell itself is
// thread-safe regardless of `T`; dereferencing the pointer is the caller's
// obligation.
unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    pub fn new(ptr: *mut T) -> Self {
        let repr = match exec::current() {
            Some((exec, _tid)) => {
                let loc = exec.register_atomic(ptr as usize as u64);
                Repr::Model { exec, loc }
            }
            None => Repr::Std(std::sync::atomic::AtomicPtr::new(ptr)),
        };
        AtomicPtr {
            repr,
            _marker: std::marker::PhantomData,
        }
    }

    #[track_caller]
    pub fn load(&self, ord: Ordering) -> *mut T {
        match &self.repr {
            Repr::Std(a) => a.load(ord),
            Repr::Model { exec, loc } => {
                let bits = match model_tid(exec) {
                    Some(tid) => exec.atomic_load(tid, *loc, ord, Location::caller()),
                    None => exec.direct_load(*loc),
                };
                bits as usize as *mut T
            }
        }
    }

    #[track_caller]
    pub fn store(&self, ptr: *mut T, ord: Ordering) {
        match &self.repr {
            Repr::Std(a) => a.store(ptr, ord),
            Repr::Model { exec, loc } => match model_tid(exec) {
                Some(tid) => {
                    exec.atomic_store(tid, *loc, ptr as usize as u64, ord, Location::caller())
                }
                None => exec.direct_store(*loc, ptr as usize as u64),
            },
        }
    }

    #[track_caller]
    pub fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
        match &self.repr {
            Repr::Std(a) => a.swap(ptr, ord),
            Repr::Model { exec, loc } => {
                let bits = ptr as usize as u64;
                let old = match model_tid(exec) {
                    Some(tid) => exec.atomic_rmw(
                        tid,
                        *loc,
                        ord,
                        ord,
                        move |_| Some(bits),
                        Location::caller(),
                    ),
                    None => {
                        let old = exec.direct_load(*loc);
                        exec.direct_store(*loc, bits);
                        old
                    }
                };
                old as usize as *mut T
            }
        }
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicPtr").finish_non_exhaustive()
    }
}

/// Model-aware `std::sync::atomic::fence`.
#[track_caller]
pub fn fence(ord: Ordering) {
    match exec::current() {
        Some((exec, tid)) => exec.fence(tid, ord, Location::caller()),
        None => std::sync::atomic::fence(ord),
    }
}
