//! Race-checked `UnsafeCell`.
//!
//! Unlike `std::cell::UnsafeCell`, access goes through [`UnsafeCell::with`]
//! (shared) and [`UnsafeCell::with_mut`] (exclusive) so the model can stamp
//! each access with the thread's vector clock and flag any pair of accesses
//! — at least one a write — not ordered by happens-before, reporting both
//! source locations.  Outside a model the wrappers compile down to the bare
//! pointer access.

use std::panic::Location;
use std::sync::Arc;

use crate::exec::{self, Execution};

pub struct UnsafeCell<T> {
    /// Present when constructed inside a model: the execution and the cell's
    /// index in its race-detector state.
    model: Option<(Arc<Execution>, usize)>,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: this type exists precisely to be shared between threads by code
// whose synchronization protocol the model checker validates; every access
// goes through with/with_mut, where the race detector flags any pair of
// accesses not ordered by happens-before.  Callers take on the same proof
// obligation they would with a hand-rolled `unsafe impl Sync` wrapper over
// `std::cell::UnsafeCell` — but here the obligation is machine-checked
// under the model.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(data: T) -> Self {
        let model = exec::current().map(|(exec, _tid)| {
            let cell = exec.register_cell();
            (exec, cell)
        });
        UnsafeCell {
            model,
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Shared access.  The caller promises the closure only reads.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((exec, cell)) = &self.model {
            if let Some(tid) = model_tid(exec) {
                exec.cell_read(tid, *cell, Location::caller());
            }
        }
        f(self.data.get() as *const T)
    }

    /// Exclusive access.  Conflicts with every concurrent access.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((exec, cell)) = &self.model {
            if let Some(tid) = model_tid(exec) {
                exec.cell_write(tid, *cell, Location::caller());
            }
        }
        f(self.data.get())
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        UnsafeCell::new(T::default())
    }
}

fn model_tid(exec: &Arc<Execution>) -> Option<usize> {
    let (current, tid) = exec::current()?;
    Arc::ptr_eq(&current, exec).then_some(tid)
}
