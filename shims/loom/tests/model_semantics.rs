//! Semantic tests for the model checker itself: the explorer must (a) find
//! every outcome the memory model permits, (b) never fabricate outcomes a
//! stronger ordering forbids, and (c) detect races, deadlocks, and lost
//! wakeups with actionable reports.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex as StdMutex;

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// Runs `body` expecting the checker to flag an error; returns the failure
/// message.
fn expect_model_failure<F>(body: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    let result = catch_unwind(AssertUnwindSafe(|| loom::model(body)));
    let payload = result.expect_err("model unexpectedly passed");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("model failure with non-string payload");
    }
}

#[test]
fn seqcst_counter_sums() {
    let report = loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let other = Arc::clone(&counter);
        let handle = loom::thread::spawn(move || {
            other.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        handle.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.iterations >= 2, "expected >1 interleaving explored");
    assert!(!report.truncated);
}

/// Store buffering (Dekker): with `Relaxed` everywhere, the outcome
/// r1 == 0 && r2 == 0 is permitted and the explorer must reach it.
#[test]
fn relaxed_store_buffering_reaches_zero_zero() {
    let outcomes: Arc<StdMutex<HashSet<(usize, usize)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = loom::thread::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let t2 = loom::thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            x2.load(Ordering::Relaxed)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "relaxed store buffering must expose (0,0); saw {seen:?}"
    );
    assert!(seen.contains(&(1, 1)), "saw {seen:?}");
}

/// The same litmus under `SeqCst` must NOT expose (0, 0): at least one load
/// observes the other thread's store in every SC execution.
#[test]
fn seqcst_store_buffering_forbids_zero_zero() {
    let outcomes: Arc<StdMutex<HashSet<(usize, usize)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = loom::thread::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let t2 = loom::thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        !seen.contains(&(0, 0)),
        "SeqCst forbids (0,0); explorer fabricated it: {seen:?}"
    );
    assert!(
        seen.len() >= 2,
        "expected several SC outcomes, saw {seen:?}"
    );
}

/// Message passing: a `Release` store on the flag and an `Acquire` load
/// synchronize, so the reader's access to the cell is race-free and always
/// sees the payload.
#[test]
fn release_acquire_message_passing_is_race_free() {
    let report = loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (cell2, flag2) = (Arc::clone(&cell), Arc::clone(&flag));
        let reader = loom::thread::spawn(move || {
            if flag2.load(Ordering::Acquire) {
                // SAFETY: ordered after the writer by Release/Acquire.
                let seen = cell2.with(|p| unsafe { *p });
                assert_eq!(seen, 7, "acquire reader saw torn payload");
            }
        });
        // SAFETY: ordered before the reader by Release/Acquire.
        cell.with_mut(|p| unsafe { *p = 7 });
        flag.store(true, Ordering::Release);
        reader.join().unwrap();
    });
    assert!(report.iterations >= 2);
}

/// Downgrading the flag to `Relaxed` removes the happens-before edge; the
/// detector must flag the cell race and name both access sites.
#[test]
fn relaxed_message_passing_is_reported_as_race() {
    let message = expect_model_failure(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (cell2, flag2) = (Arc::clone(&cell), Arc::clone(&flag));
        let reader = loom::thread::spawn(move || {
            if flag2.load(Ordering::Relaxed) {
                // SAFETY: deliberately racy — the detector must flag it.
                cell2.with(|p| unsafe { *p });
            }
        });
        // SAFETY: deliberately racy — the detector must flag it.
        cell.with_mut(|p| unsafe { *p = 7 });
        flag.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    });
    assert!(message.contains("data race"), "got: {message}");
    // Both conflicting sites must be reported, pointing into this file.
    assert!(
        message.matches("model_semantics.rs").count() >= 2,
        "race report should name both access sites, got: {message}"
    );
}

/// A relaxed load may observe a stale value even after the store was
/// scheduled: the explorer must surface the stale read.
#[test]
fn relaxed_load_observes_stale_values() {
    let outcomes: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let writer = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
        });
        writer.join().unwrap();
        // Even though the writer has completed *as a thread*, the relaxed
        // load is not obligated to see its store... except join() creates
        // happens-before, so here it IS obligated.  Read through a second
        // thread with no join edge instead.
        let x3 = Arc::clone(&x);
        let reader = loom::thread::spawn(move || x3.load(Ordering::Relaxed));
        let seen = reader.join().unwrap();
        sink.lock().unwrap().insert(seen);
    });
    let seen = outcomes.lock().unwrap();
    // join() before the reader spawn orders the store before the read:
    // only 1 is readable.  This pins the join edge semantics.
    assert_eq!(*seen, HashSet::from([1]), "join edge lost: {seen:?}");
}

#[test]
fn mutex_provides_mutual_exclusion_and_visibility() {
    loom::model(|| {
        let total = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let total = Arc::clone(&total);
                loom::thread::spawn(move || {
                    let mut guard = total.lock().unwrap();
                    let read = *guard;
                    *guard = read + 1;
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*total.lock().unwrap(), 2);
    });
}

/// Two threads mutate a cell under a mutex: no race may be reported (the
/// lock's happens-before edges cover the accesses).
#[test]
fn mutex_guarded_cell_is_race_free() {
    loom::model(|| {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(UnsafeCell::new(0u32));
        let (lock2, cell2) = (Arc::clone(&lock), Arc::clone(&cell));
        let handle = loom::thread::spawn(move || {
            let _guard = lock2.lock().unwrap();
            // SAFETY: exclusive under the mutex; the model verifies it.
            cell2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _guard = lock.lock().unwrap();
            // SAFETY: exclusive under the mutex; the model verifies it.
            cell.with_mut(|p| unsafe { *p += 1 });
        }
        handle.join().unwrap();
    });
}

/// An unsynchronized write/write pair must be reported.
#[test]
fn unsynchronized_writes_race() {
    let message = expect_model_failure(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let cell2 = Arc::clone(&cell);
        let handle = loom::thread::spawn(move || {
            // SAFETY: access discipline is what this model test checks.
            cell2.with_mut(|p| unsafe { *p = 1 });
        });
        // SAFETY: deliberately racy — the detector must flag it.
        cell.with_mut(|p| unsafe { *p = 2 });
        handle.join().unwrap();
    });
    assert!(message.contains("data race"), "got: {message}");
}

/// A condvar waiter that nobody will ever notify is a deadlock, and the
/// model must say which thread is parked where.
#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let message = expect_model_failure(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = loom::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        });
        // Flip the flag without notifying while the waiter may already be
        // parked: classic lost wakeup.  (Not even a flip here — we simply
        // never signal.)
        waiter.join().unwrap();
    });
    assert!(message.contains("deadlock"), "got: {message}");
    assert!(message.contains("condvar"), "got: {message}");
}

/// `wait_timeout` in the model never times out, so a protocol that leans on
/// the timeout as a correctness crutch fails loudly.
#[test]
fn wait_timeout_does_not_mask_lost_wakeups() {
    let message = expect_model_failure(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = loom::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                let (guard, _timeout) = cv
                    .wait_timeout(ready, std::time::Duration::from_millis(5))
                    .unwrap();
                ready = guard;
            }
        });
        waiter.join().unwrap();
    });
    assert!(message.contains("deadlock"), "got: {message}");
}

/// The correct protocol — set under the lock, then notify — passes.
#[test]
fn condvar_handshake_passes() {
    let report = loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = loom::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock().unwrap() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert!(report.iterations >= 2);
}

/// A spin loop that yields terminates under the yield-deprioritization rule.
#[test]
fn yielding_spin_loop_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let setter = loom::thread::spawn(move || {
            flag2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            loom::thread::yield_now();
        }
        setter.join().unwrap();
    });
}

/// An assertion failure inside the model surfaces as a model failure with
/// the panic message, not a hang or a swallowed error.
#[test]
fn user_assertions_become_model_failures() {
    let message = expect_model_failure(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
        });
        let seen = x.load(Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(seen, 1, "reader must observe the store");
    });
    assert!(
        message.contains("reader must observe the store"),
        "got: {message}"
    );
}

/// The preemption bound prunes the search: bounded exploration of the same
/// model visits no more interleavings than unbounded.
#[test]
fn preemption_bound_prunes_exploration() {
    fn body() {
        let x = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                loom::thread::spawn(move || {
                    x.fetch_add(1, Ordering::SeqCst);
                    x.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(x.load(Ordering::SeqCst), 4);
    }
    let unbounded = loom::Builder::new().check(body);
    let mut bounded_builder = loom::Builder::new();
    bounded_builder.preemption_bound = Some(1);
    let bounded = bounded_builder.check(body);
    assert!(
        bounded.iterations < unbounded.iterations,
        "bound 1: {} vs unbounded: {}",
        bounded.iterations,
        unbounded.iterations
    );
}

/// try_lock on a held model mutex reports WouldBlock instead of deadlocking.
#[test]
fn try_lock_explores_contention() {
    let outcomes: Arc<StdMutex<HashSet<bool>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let lock = Arc::new(Mutex::new(0u32));
        let lock2 = Arc::clone(&lock);
        let holder = loom::thread::spawn(move || {
            let mut guard = lock2.lock().unwrap();
            *guard += 1;
        });
        let acquired = lock.try_lock().is_ok();
        sink.lock().unwrap().insert(acquired);
        holder.join().unwrap();
    });
    let seen = outcomes.lock().unwrap();
    assert_eq!(
        *seen,
        HashSet::from([true, false]),
        "try_lock must explore both contention outcomes: {seen:?}"
    );
}

/// Model types constructed outside `loom::model` behave as plain std
/// primitives (the fallback mode ordinary tests rely on).
#[test]
fn fallback_mode_works_outside_model() {
    let counter = AtomicUsize::new(1);
    assert_eq!(counter.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(counter.load(Ordering::Acquire), 3);

    let lock = Mutex::new(5u32);
    *lock.lock().unwrap() += 1;
    assert_eq!(*lock.lock().unwrap(), 6);
    assert!(lock.try_lock().is_ok());

    let cell = UnsafeCell::new(9u32);
    // SAFETY: access discipline is what this model test checks.
    assert_eq!(cell.with(|p| unsafe { *p }), 9);
    cell.with_mut(|p| unsafe { *p = 10 });
    assert_eq!(cell.into_inner(), 10);

    let handle = loom::thread::spawn(|| 42usize);
    assert_eq!(handle.join().unwrap(), 42);
}
