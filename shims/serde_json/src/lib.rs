//! Minimal stand-in for `serde_json`: renders the serde shim's `Value` tree
//! as real JSON text and parses JSON text back into `Value` trees, so types
//! deriving `Serialize`/`Deserialize` round-trip through on-disk JSON.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse JSON text and deserialize it into `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into the serde shim's [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            entries.push((key, self.parse()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one supplementary character.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(scalar) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = text.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if text == "-0" {
                // Preserve the sign bit: `-0` can only have been written by
                // a float whose negative zero must survive the round trip.
                return Ok(Value::F64(-0.0));
            }
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            // JSON has no NaN/Infinity; mirror serde_json by refusing them
            // softly (null) rather than emitting invalid text.
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_as_json() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("dynmo".to_string())),
            (
                "speedups".to_string(),
                Value::Seq(vec![Value::F64(1.5), Value::F64(2.25)]),
            ),
            ("gpus".to_string(), Value::U64(720)),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Wrapper(value.clone())).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"dynmo\",\"speedups\":[1.5,2.25],\"gpus\":720}"
        );
        let pretty = to_string_pretty(&Wrapper(value)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"dynmo\""));
    }

    #[test]
    fn escapes_control_characters() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(
            parse_value("[1, 2]").unwrap(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(
            parse_value("{\"a\": [true], \"b\": \"x\"}").unwrap(),
            Value::Map(vec![
                ("a".to_string(), Value::Seq(vec![Value::Bool(true)])),
                ("b".to_string(), Value::Str("x".to_string())),
            ])
        );
        assert_eq!(parse_value("[]").unwrap(), Value::Seq(vec![]));
        assert_eq!(parse_value("{}").unwrap(), Value::Map(vec![]));
    }

    #[test]
    fn parses_string_escapes_and_unicode() {
        assert_eq!(
            parse_value("\"a\\n\\t\\\"\\\\b\"").unwrap(),
            Value::Str("a\n\t\"\\b".to_string())
        );
        assert_eq!(
            parse_value("\"\\u00e9\\uD83D\\uDE00é\"").unwrap(),
            Value::Str("é😀é".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "[1,", "{\"a\"}", "nul", "\"open", "1 2", "[1] x"] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn derived_types_round_trip_through_json_text() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Nested {
            id: usize,
            scale: f64,
        }
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Mode {
            Off,
            EveryN(u64),
            Window { lo: f64, hi: f64 },
        }
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Doc {
            name: String,
            values: Vec<f32>,
            nested: Vec<Nested>,
            mode: Mode,
            fallback: Option<Mode>,
            pairs: Vec<(u64, f64)>,
        }
        let doc = Doc {
            name: "round-trip".to_string(),
            values: vec![0.1, -2.5, 3.25e-8],
            nested: vec![Nested {
                id: 3,
                scale: 0.125,
            }],
            mode: Mode::Window { lo: -1.5, hi: 0.5 },
            fallback: Some(Mode::EveryN(250)),
            pairs: vec![(9, 0.75)],
        };
        let text = to_string_pretty(&doc).unwrap();
        let back: Doc = from_str(&text).unwrap();
        assert_eq!(back, doc);
        let unit: Mode = from_str("\"Off\"").unwrap();
        assert_eq!(unit, Mode::Off);
        assert!(from_str::<Doc>("{\"name\": 3}").is_err());
    }

    #[test]
    fn floats_round_trip_bit_for_bit_through_text() {
        for x in [
            0.1f64,
            -0.0,
            -1.0 / 3.0,
            1e-300,
            6.02214076e23,
            f64::EPSILON,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn derive_handles_generic_field_types_and_enums() {
        // Exercises the serde_derive shim's token parser: a field type with
        // a top-level generic comma, unit/tuple/struct enum variants.
        #[derive(serde::Serialize)]
        struct Row {
            counts: std::collections::BTreeMap<String, u64>,
            tags: Vec<(String, f64)>,
            kind: Kind,
        }
        #[derive(serde::Serialize)]
        enum Kind {
            Unit,
            Pair(u32, u32),
            Named { x: f64 },
        }

        let mut counts = std::collections::BTreeMap::new();
        counts.insert("a".to_string(), 1u64);
        let row = Row {
            counts,
            tags: vec![("t".to_string(), 0.5)],
            kind: Kind::Pair(3, 4),
        };
        assert_eq!(
            to_string(&row).unwrap(),
            "{\"counts\":{\"a\":1},\"tags\":[[\"t\",0.5]],\"kind\":{\"Pair\":[3,4]}}"
        );
        assert_eq!(to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(
            to_string(&Kind::Named { x: 1.5 }).unwrap(),
            "{\"Named\":{\"x\":1.5}}"
        );
    }
}
