//! Minimal stand-in for `serde_json`: renders the serde shim's `Value` tree
//! as real JSON text.  Only the serialization entry points the workspace
//! uses are provided.

#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the shim's rendering is infallible, but the type is
/// kept so call sites match real serde_json).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            // JSON has no NaN/Infinity; mirror serde_json by refusing them
            // softly (null) rather than emitting invalid text.
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_as_json() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("dynmo".to_string())),
            (
                "speedups".to_string(),
                Value::Seq(vec![Value::F64(1.5), Value::F64(2.25)]),
            ),
            ("gpus".to_string(), Value::U64(720)),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Wrapper(value.clone())).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"dynmo\",\"speedups\":[1.5,2.25],\"gpus\":720}"
        );
        let pretty = to_string_pretty(&Wrapper(value)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"dynmo\""));
    }

    #[test]
    fn escapes_control_characters() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn derive_handles_generic_field_types_and_enums() {
        // Exercises the serde_derive shim's token parser: a field type with
        // a top-level generic comma, unit/tuple/struct enum variants.
        #[derive(serde::Serialize)]
        struct Row {
            counts: std::collections::BTreeMap<String, u64>,
            tags: Vec<(String, f64)>,
            kind: Kind,
        }
        #[derive(serde::Serialize)]
        enum Kind {
            Unit,
            Pair(u32, u32),
            Named { x: f64 },
        }

        let mut counts = std::collections::BTreeMap::new();
        counts.insert("a".to_string(), 1u64);
        let row = Row {
            counts,
            tags: vec![("t".to_string(), 0.5)],
            kind: Kind::Pair(3, 4),
        };
        assert_eq!(
            to_string(&row).unwrap(),
            "{\"counts\":{\"a\":1},\"tags\":[[\"t\",0.5]],\"kind\":{\"Pair\":[3,4]}}"
        );
        assert_eq!(to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(
            to_string(&Kind::Named { x: 1.5 }).unwrap(),
            "{\"Named\":{\"x\":1.5}}"
        );
    }
}
