//! Per-layer and per-worker memory accounting.
//!
//! Re-packing (paper Algorithm 2) consolidates layers onto fewer GPUs
//! "subject to memory capacity constraints", and the paper contrasts its use
//! of *measured* memory against PipeTransformer's parameter-count proxy.
//! This module provides the measurement: for each layer it accounts for
//! weights, gradients, Adam optimizer state (fp32 moments + master weights,
//! the Megatron mixed-precision recipe), and activation memory proportional
//! to the number of in-flight micro-batches of the pipeline schedule.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::layer::LayerDesc;

/// Bytes of optimizer state kept per parameter under mixed-precision Adam:
/// fp32 master weight (4) + fp32 first moment (4) + fp32 second moment (4).
pub const ADAM_STATE_BYTES_PER_PARAM: u64 = 12;

/// Memory model for a given model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    config: ModelConfig,
}

impl MemoryModel {
    /// Build a memory model for `config`.
    pub fn new(config: ModelConfig) -> Self {
        MemoryModel { config }
    }

    /// The configuration this model describes.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Static bytes held for a layer's parameters: weights + gradients +
    /// optimizer state.  `retained_fraction` models pruning (1.0 = dense);
    /// pruned parameters free their weight/grad/optimizer storage but CSR
    /// index storage is added by the sparse crate's own accounting.
    pub fn layer_static_bytes(&self, layer: &LayerDesc, retained_fraction: f64) -> u64 {
        let retained = retained_fraction.clamp(0.0, 1.0);
        let params = (layer.param_count as f64 * retained) as u64;
        let weight = params * self.config.param_bytes as u64;
        let grad = params * self.config.param_bytes as u64;
        let optimizer = params * ADAM_STATE_BYTES_PER_PARAM;
        weight + grad + optimizer
    }

    /// Activation bytes a layer must hold for one in-flight micro-batch.
    ///
    /// Uses the standard transformer activation-footprint estimate with
    /// flash attention (the paper's setting), i.e. the quadratic attention
    /// matrix is never materialized: ≈ `s·b·34·h` bytes at bf16/fp16
    /// precision, scaled by `param_bytes / 2`.
    pub fn layer_activation_bytes(&self, layer: &LayerDesc) -> u64 {
        if !layer.is_transformer() {
            // Embedding / head activations: one hidden-state tensor.
            let c = &self.config;
            return (c.seq_len * c.micro_batch_size * c.hidden_size * c.param_bytes) as u64;
        }
        let c = &self.config;
        let s = c.seq_len as f64;
        let b = c.micro_batch_size as f64;
        let h = c.hidden_size as f64;
        let scale = c.param_bytes as f64 / 2.0;
        (s * b * 34.0 * h * scale) as u64
    }

    /// Total bytes a worker needs to host `layers`, given the number of
    /// micro-batches whose activations are simultaneously alive on that
    /// worker (for 1F1B this is at most the pipeline depth).
    pub fn worker_bytes(
        &self,
        layers: &[LayerDesc],
        retained_fraction: &[f64],
        inflight_microbatches: usize,
    ) -> u64 {
        assert_eq!(
            layers.len(),
            retained_fraction.len(),
            "one retention factor per layer"
        );
        let mut total = 0u64;
        for (layer, &retained) in layers.iter().zip(retained_fraction.iter()) {
            total += self.layer_static_bytes(layer, retained);
            total += self.layer_activation_bytes(layer) * inflight_microbatches as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn gpt24_layers() -> (MemoryModel, Vec<LayerDesc>) {
        let cfg = ModelConfig::gpt(24);
        let layers = CostModel::new(cfg.clone()).build_layers();
        (MemoryModel::new(cfg), layers)
    }

    #[test]
    fn static_bytes_cover_weights_grads_and_optimizer() {
        let (mem, layers) = gpt24_layers();
        let l = &layers[1];
        let bytes = mem.layer_static_bytes(l, 1.0);
        // 2 (weight) + 2 (grad) + 12 (adam) = 16 bytes per parameter at bf16.
        assert_eq!(bytes, l.param_count * 16);
    }

    #[test]
    fn pruning_reduces_static_bytes_proportionally() {
        let (mem, layers) = gpt24_layers();
        let l = &layers[1];
        let dense = mem.layer_static_bytes(l, 1.0);
        let half = mem.layer_static_bytes(l, 0.5);
        let none = mem.layer_static_bytes(l, 0.0);
        assert!(half < dense);
        assert!((half as f64 - dense as f64 * 0.5).abs() / (dense as f64) < 0.01);
        assert_eq!(none, 0);
        // Out-of-range retention is clamped.
        assert_eq!(mem.layer_static_bytes(l, 2.0), dense);
    }

    #[test]
    fn transformer_activations_dominate_embedding_activations() {
        let (mem, layers) = gpt24_layers();
        let emb = mem.layer_activation_bytes(&layers[0]);
        let tfm = mem.layer_activation_bytes(&layers[1]);
        assert!(tfm > emb);
        assert!(emb > 0);
    }

    #[test]
    fn worker_bytes_scale_with_inflight_microbatches() {
        let (mem, layers) = gpt24_layers();
        let slice = &layers[1..5];
        let retained = vec![1.0; slice.len()];
        let one = mem.worker_bytes(slice, &retained, 1);
        let four = mem.worker_bytes(slice, &retained, 4);
        assert!(four > one);
        // The static part does not scale, so 4× in-flight is < 4× memory.
        assert!(four < one * 4);
    }

    #[test]
    #[should_panic(expected = "one retention factor per layer")]
    fn worker_bytes_requires_matching_retention_length() {
        let (mem, layers) = gpt24_layers();
        let _ = mem.worker_bytes(&layers[0..3], &[1.0, 1.0], 1);
    }

    #[test]
    fn a_24_layer_gpt_fits_in_a_single_h100_but_not_in_a_tiny_device() {
        use crate::device::DeviceSpec;
        let (mem, layers) = gpt24_layers();
        let retained = vec![1.0; layers.len()];
        let total = mem.worker_bytes(&layers, &retained, 4);
        assert!(total < DeviceSpec::h100_sxm5().memory_capacity);
        assert!(total > DeviceSpec::test_device(1024 * 1024).memory_capacity);
    }
}
