//! Device and cluster descriptions.
//!
//! The paper's testbed: compute nodes with 2× AMD EPYC 9654 CPUs and 4×
//! NVIDIA H100 SXM5 80 GB GPUs, NVLink/NVSwitch within a node, 4× 200 Gbps
//! InfiniBand NDR200 across nodes.  Multi-node experiments use up to 720
//! GPUs (90 nodes) as 30-way data parallel × 24-way pipeline parallel, and
//! 128 GPUs (16 nodes) as 8-way data parallel × 16-way pipeline for MoE/MoD.
//!
//! The [`DeviceSpec`] converts FLOPs into seconds and the [`ClusterConfig`]
//! describes the parallel decomposition; both are consumed by the pipeline
//! simulator's cost model.

use serde::{Deserialize, Serialize};

/// Description of a single accelerator (worker) and its links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Sustained matrix-engine throughput in FLOP/s used to convert layer
    /// FLOPs into execution time.  This is deliberately a *sustained* (not
    /// peak) number so simulated times resemble measured ones.
    pub sustained_flops: f64,
    /// Device memory capacity in bytes.
    pub memory_capacity: u64,
    /// Intra-node (NVLink/NVSwitch) bandwidth in bytes/s.
    pub intra_node_bandwidth: f64,
    /// Inter-node (InfiniBand) bandwidth in bytes/s.
    pub inter_node_bandwidth: f64,
    /// Per-message link latency in seconds.
    pub link_latency: f64,
    /// Fixed per-kernel launch overhead in seconds, added to every layer
    /// invocation (prevents zero-cost layers when sparsity → 1).
    pub kernel_launch_overhead: f64,
}

impl DeviceSpec {
    /// An H100 SXM5 80 GB-like device: ~600 TFLOP/s sustained bf16 with
    /// 900 GB/s NVLink and 4×200 Gbps (≈100 GB/s) node-level InfiniBand.
    pub fn h100_sxm5() -> Self {
        DeviceSpec {
            sustained_flops: 6.0e14,
            memory_capacity: 80 * 1024 * 1024 * 1024,
            intra_node_bandwidth: 900.0e9,
            inter_node_bandwidth: 100.0e9,
            link_latency: 5.0e-6,
            kernel_launch_overhead: 8.0e-6,
        }
    }

    /// An A100 80 GB-like device (the paper's MoE panel mentions A100s for
    /// one configuration): ~300 TFLOP/s sustained bf16, 600 GB/s NVLink.
    pub fn a100_sxm4() -> Self {
        DeviceSpec {
            sustained_flops: 3.0e14,
            memory_capacity: 80 * 1024 * 1024 * 1024,
            intra_node_bandwidth: 600.0e9,
            inter_node_bandwidth: 100.0e9,
            link_latency: 5.0e-6,
            kernel_launch_overhead: 8.0e-6,
        }
    }

    /// A deliberately tiny device useful in tests: makes memory-capacity
    /// constraints bite at small model sizes.
    pub fn test_device(memory_capacity: u64) -> Self {
        DeviceSpec {
            sustained_flops: 1.0e12,
            memory_capacity,
            intra_node_bandwidth: 50.0e9,
            inter_node_bandwidth: 10.0e9,
            link_latency: 1.0e-6,
            kernel_launch_overhead: 1.0e-6,
        }
    }

    /// Time in seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        self.kernel_launch_overhead + flops / self.sustained_flops
    }

    /// Time in seconds to move `bytes` over a link of the given kind.
    pub fn transfer_time(&self, bytes: f64, intra_node: bool) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let bandwidth = if intra_node {
            self.intra_node_bandwidth
        } else {
            self.inter_node_bandwidth
        };
        self.link_latency + bytes / bandwidth
    }
}

/// The parallel decomposition of a training job across a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of GPUs per node (4 in the paper's H100 system, 8 for the
    /// re-packing experiments of Figure 4).
    pub gpus_per_node: usize,
    /// Pipeline-parallel degree (number of pipeline stages).
    pub pipeline_stages: usize,
    /// Data-parallel degree (number of pipeline replicas).
    pub data_parallel: usize,
    /// Device type shared by all workers.
    pub device: DeviceSpec,
}

impl ClusterConfig {
    /// The paper's large multi-node setting: 720 H100s as 30-way data
    /// parallel × 24-way pipeline parallel (90 nodes × 8 slots equivalent).
    pub fn paper_720_h100() -> Self {
        ClusterConfig {
            gpus_per_node: 8,
            pipeline_stages: 24,
            data_parallel: 30,
            device: DeviceSpec::h100_sxm5(),
        }
    }

    /// The paper's MoE/MoD setting: 128 H100s as 8-way data parallel ×
    /// 16-way pipeline parallel (16 nodes with 4× H100 each → re-grouped).
    pub fn paper_128_h100() -> Self {
        ClusterConfig {
            gpus_per_node: 8,
            pipeline_stages: 16,
            data_parallel: 8,
            device: DeviceSpec::h100_sxm5(),
        }
    }

    /// A single node with `gpus` GPUs, all used as pipeline stages (the
    /// paper's single-node and re-packing experiments start from 8).
    pub fn single_node(gpus: usize) -> Self {
        ClusterConfig {
            gpus_per_node: gpus,
            pipeline_stages: gpus,
            data_parallel: 1,
            device: DeviceSpec::h100_sxm5(),
        }
    }

    /// Total number of GPUs in the job.
    pub fn total_gpus(&self) -> usize {
        self.pipeline_stages * self.data_parallel
    }

    /// Whether two pipeline stages are on the same node, assuming stages are
    /// laid out consecutively across nodes (Megatron-style placement).
    pub fn same_node(&self, stage_a: usize, stage_b: usize) -> bool {
        stage_a / self.gpus_per_node == stage_b / self.gpus_per_node
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.gpus_per_node == 0 {
            return Err("gpus_per_node must be positive".into());
        }
        if self.pipeline_stages == 0 {
            return Err("pipeline_stages must be positive".into());
        }
        if self.data_parallel == 0 {
            return Err("data_parallel must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_spec_is_plausible() {
        let d = DeviceSpec::h100_sxm5();
        assert!(d.sustained_flops > 1.0e14);
        assert_eq!(d.memory_capacity, 80 * 1024 * 1024 * 1024);
        assert!(d.intra_node_bandwidth > d.inter_node_bandwidth);
    }

    #[test]
    fn compute_time_scales_linearly_with_flops() {
        let d = DeviceSpec::h100_sxm5();
        let t1 = d.compute_time(1.0e12);
        let t2 = d.compute_time(2.0e12);
        // Subtract the fixed launch overhead before comparing ratios.
        let o = d.kernel_launch_overhead;
        assert!(((t2 - o) / (t1 - o) - 2.0).abs() < 1e-9);
        assert_eq!(d.compute_time(0.0), 0.0);
        assert_eq!(d.compute_time(-5.0), 0.0);
    }

    #[test]
    fn transfer_time_prefers_intra_node_links() {
        let d = DeviceSpec::h100_sxm5();
        let bytes = 1.0e9;
        assert!(d.transfer_time(bytes, true) < d.transfer_time(bytes, false));
        assert_eq!(d.transfer_time(0.0, true), 0.0);
    }

    #[test]
    fn paper_cluster_shapes_match_the_evaluation_section() {
        let big = ClusterConfig::paper_720_h100();
        assert_eq!(big.total_gpus(), 720);
        assert_eq!(big.pipeline_stages, 24);
        assert_eq!(big.data_parallel, 30);
        big.validate().unwrap();

        let moe = ClusterConfig::paper_128_h100();
        assert_eq!(moe.total_gpus(), 128);
        assert_eq!(moe.pipeline_stages, 16);
        assert_eq!(moe.data_parallel, 8);
        moe.validate().unwrap();
    }

    #[test]
    fn single_node_uses_all_gpus_as_stages() {
        let c = ClusterConfig::single_node(8);
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.pipeline_stages, 8);
        assert_eq!(c.data_parallel, 1);
    }

    #[test]
    fn same_node_follows_consecutive_layout() {
        let c = ClusterConfig {
            gpus_per_node: 4,
            pipeline_stages: 8,
            data_parallel: 1,
            device: DeviceSpec::h100_sxm5(),
        };
        assert!(c.same_node(0, 3));
        assert!(!c.same_node(3, 4));
        assert!(c.same_node(4, 7));
    }

    #[test]
    fn validation_rejects_zero_degrees() {
        let mut c = ClusterConfig::single_node(4);
        c.data_parallel = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::single_node(4);
        c.pipeline_stages = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::single_node(4);
        c.gpus_per_node = 0;
        assert!(c.validate().is_err());
    }
}
