//! Device and cluster descriptions.
//!
//! The paper's testbed: compute nodes with 2× AMD EPYC 9654 CPUs and 4×
//! NVIDIA H100 SXM5 80 GB GPUs, NVLink/NVSwitch within a node, 4× 200 Gbps
//! InfiniBand NDR200 across nodes.  Multi-node experiments use up to 720
//! GPUs (90 nodes) as 30-way data parallel × 24-way pipeline parallel, and
//! 128 GPUs (16 nodes) as 8-way data parallel × 16-way pipeline for MoE/MoD.
//!
//! The [`DeviceSpec`] converts FLOPs into seconds and the [`ClusterConfig`]
//! describes the parallel decomposition; both are consumed by the pipeline
//! simulator's cost model.

use serde::{Deserialize, Serialize};

/// Description of a single accelerator (worker) and its links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Sustained matrix-engine throughput in FLOP/s used to convert layer
    /// FLOPs into execution time.  This is deliberately a *sustained* (not
    /// peak) number so simulated times resemble measured ones.
    pub sustained_flops: f64,
    /// Device memory capacity in bytes.
    pub memory_capacity: u64,
    /// Intra-node (NVLink/NVSwitch) bandwidth in bytes/s.
    pub intra_node_bandwidth: f64,
    /// Inter-node (InfiniBand) bandwidth in bytes/s.
    pub inter_node_bandwidth: f64,
    /// Per-message link latency in seconds.
    pub link_latency: f64,
    /// Fixed per-kernel launch overhead in seconds, added to every layer
    /// invocation (prevents zero-cost layers when sparsity → 1).
    pub kernel_launch_overhead: f64,
}

impl DeviceSpec {
    /// An H100 SXM5 80 GB-like device: ~600 TFLOP/s sustained bf16 with
    /// 900 GB/s NVLink and 4×200 Gbps (≈100 GB/s) node-level InfiniBand.
    pub fn h100_sxm5() -> Self {
        DeviceSpec {
            sustained_flops: 6.0e14,
            memory_capacity: 80 * 1024 * 1024 * 1024,
            intra_node_bandwidth: 900.0e9,
            inter_node_bandwidth: 100.0e9,
            link_latency: 5.0e-6,
            kernel_launch_overhead: 8.0e-6,
        }
    }

    /// An A100 80 GB-like device (the paper's MoE panel mentions A100s for
    /// one configuration): ~300 TFLOP/s sustained bf16, 600 GB/s NVLink.
    pub fn a100_sxm4() -> Self {
        DeviceSpec {
            sustained_flops: 3.0e14,
            memory_capacity: 80 * 1024 * 1024 * 1024,
            intra_node_bandwidth: 600.0e9,
            inter_node_bandwidth: 100.0e9,
            link_latency: 5.0e-6,
            kernel_launch_overhead: 8.0e-6,
        }
    }

    /// A V100 SXM2 32 GB-like device, the oldest generation the
    /// heterogeneous presets mix in: ~120 TFLOP/s sustained fp16,
    /// 300 GB/s NVLink, 100 Gbps (≈12.5 GB/s) node-level InfiniBand.
    pub fn v100_sxm2() -> Self {
        DeviceSpec {
            sustained_flops: 1.2e14,
            memory_capacity: 32 * 1024 * 1024 * 1024,
            intra_node_bandwidth: 300.0e9,
            inter_node_bandwidth: 12.5e9,
            link_latency: 5.0e-6,
            kernel_launch_overhead: 10.0e-6,
        }
    }

    /// A deliberately tiny device useful in tests: makes memory-capacity
    /// constraints bite at small model sizes.
    pub fn test_device(memory_capacity: u64) -> Self {
        DeviceSpec {
            sustained_flops: 1.0e12,
            memory_capacity,
            intra_node_bandwidth: 50.0e9,
            inter_node_bandwidth: 10.0e9,
            link_latency: 1.0e-6,
            kernel_launch_overhead: 1.0e-6,
        }
    }

    /// Time in seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        self.kernel_launch_overhead + flops / self.sustained_flops
    }

    /// Time in seconds to move `bytes` over a link of the given kind.
    pub fn transfer_time(&self, bytes: f64, intra_node: bool) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let bandwidth = if intra_node {
            self.intra_node_bandwidth
        } else {
            self.inter_node_bandwidth
        };
        self.link_latency + bytes / bandwidth
    }
}

/// The parallel decomposition of a training job across a cluster.
///
/// Homogeneous clusters carry one [`DeviceSpec`] shared by every worker
/// (`devices: None` — the historical fast path, bit-identical to the
/// pre-heterogeneity behavior).  Mixed-generation clusters additionally
/// carry one spec per *pipeline stage* in `devices`; every consumer that
/// asks per-stage questions goes through [`ClusterConfig::device_of`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of GPUs per node (4 in the paper's H100 system, 8 for the
    /// re-packing experiments of Figure 4).
    pub gpus_per_node: usize,
    /// Pipeline-parallel degree (number of pipeline stages).
    pub pipeline_stages: usize,
    /// Data-parallel degree (number of pipeline replicas).
    pub data_parallel: usize,
    /// Reference device: the spec shared by all workers on a homogeneous
    /// cluster, and the normalization baseline (speed 1.0) when `devices`
    /// is present.
    pub device: DeviceSpec,
    /// Per-pipeline-stage device specs for mixed-generation clusters
    /// (`None` = homogeneous; every stage runs `device`).
    pub devices: Option<Vec<DeviceSpec>>,
    /// Model inter-node links as one shared NIC per direction instead of
    /// independent α–β edges: concurrent pipeline streams divide the
    /// bandwidth (see [`ClusterConfig::inter_contention_factor`]).
    pub shared_link_contention: bool,
}

impl ClusterConfig {
    /// A homogeneous cluster: every worker is `device`.
    pub fn homogeneous(
        gpus_per_node: usize,
        pipeline_stages: usize,
        data_parallel: usize,
        device: DeviceSpec,
    ) -> Self {
        ClusterConfig {
            gpus_per_node,
            pipeline_stages,
            data_parallel,
            device,
            devices: None,
            shared_link_contention: false,
        }
    }

    /// The paper's large multi-node setting: 720 H100s as 30-way data
    /// parallel × 24-way pipeline parallel (90 nodes × 8 slots equivalent).
    pub fn paper_720_h100() -> Self {
        Self::homogeneous(8, 24, 30, DeviceSpec::h100_sxm5())
    }

    /// The paper's MoE/MoD setting: 128 H100s as 8-way data parallel ×
    /// 16-way pipeline parallel (16 nodes with 4× H100 each → re-grouped).
    pub fn paper_128_h100() -> Self {
        Self::homogeneous(8, 16, 8, DeviceSpec::h100_sxm5())
    }

    /// A single node with `gpus` GPUs, all used as pipeline stages (the
    /// paper's single-node and re-packing experiments start from 8).
    pub fn single_node(gpus: usize) -> Self {
        Self::homogeneous(gpus, gpus, 1, DeviceSpec::h100_sxm5())
    }

    /// A two-generation cluster: the first half of the pipeline runs H100s,
    /// the second half A100s (upgrade-in-progress fleets look like this).
    pub fn hetero_two_gen(
        gpus_per_node: usize,
        pipeline_stages: usize,
        data_parallel: usize,
    ) -> Self {
        let devices: Vec<DeviceSpec> = (0..pipeline_stages)
            .map(|s| {
                if s < pipeline_stages / 2 {
                    DeviceSpec::h100_sxm5()
                } else {
                    DeviceSpec::a100_sxm4()
                }
            })
            .collect();
        Self::homogeneous(
            gpus_per_node,
            pipeline_stages,
            data_parallel,
            DeviceSpec::h100_sxm5(),
        )
        .with_devices(devices)
    }

    /// A three-generation cluster: thirds of the pipeline on H100, A100 and
    /// V100 respectively (oldest generation last, where the paper's dynamism
    /// already concentrates load).
    pub fn hetero_three_gen(
        gpus_per_node: usize,
        pipeline_stages: usize,
        data_parallel: usize,
    ) -> Self {
        let devices: Vec<DeviceSpec> = (0..pipeline_stages)
            .map(|s| match 3 * s / pipeline_stages.max(1) {
                0 => DeviceSpec::h100_sxm5(),
                1 => DeviceSpec::a100_sxm4(),
                _ => DeviceSpec::v100_sxm2(),
            })
            .collect();
        Self::homogeneous(
            gpus_per_node,
            pipeline_stages,
            data_parallel,
            DeviceSpec::h100_sxm5(),
        )
        .with_devices(devices)
    }

    /// Attach per-stage device specs (panics unless one spec per stage).
    pub fn with_devices(mut self, devices: Vec<DeviceSpec>) -> Self {
        assert_eq!(
            devices.len(),
            self.pipeline_stages,
            "need exactly one DeviceSpec per pipeline stage"
        );
        self.devices = Some(devices);
        self
    }

    /// Enable the shared-NIC contention model on inter-node links.
    pub fn with_shared_link_contention(mut self, on: bool) -> Self {
        self.shared_link_contention = on;
        self
    }

    /// The device backing pipeline stage `stage`.
    pub fn device_of(&self, stage: usize) -> &DeviceSpec {
        match &self.devices {
            Some(devices) => &devices[stage.min(devices.len().saturating_sub(1))],
            None => &self.device,
        }
    }

    /// Whether any stage differs from the reference device.
    pub fn is_heterogeneous(&self) -> bool {
        match &self.devices {
            Some(devices) => devices.iter().any(|d| d != &self.device),
            None => false,
        }
    }

    /// Per-stage effective speeds relative to the reference device
    /// (`None` on the homogeneous path: consumers must not perturb their
    /// arithmetic when every speed would be exactly 1.0).
    pub fn stage_speeds(&self) -> Option<Vec<f64>> {
        self.devices.as_ref().map(|devices| {
            devices
                .iter()
                .map(|d| d.sustained_flops / self.device.sustained_flops)
                .collect()
        })
    }

    /// Per-stage memory capacities (`None` on the homogeneous path).
    pub fn stage_capacities(&self) -> Option<Vec<u64>> {
        self.devices
            .as_ref()
            .map(|devices| devices.iter().map(|d| d.memory_capacity).collect())
    }

    /// The smallest memory capacity of any stage.
    pub fn min_memory_capacity(&self) -> u64 {
        match &self.devices {
            Some(devices) => devices
                .iter()
                .map(|d| d.memory_capacity)
                .min()
                .unwrap_or(self.device.memory_capacity),
            None => self.device.memory_capacity,
        }
    }

    /// How many concurrent streams share an inter-node NIC when
    /// `shared_link_contention` is on: forward activations and backward
    /// gradients always overlap (2), plus the data-parallel allreduce
    /// stream when there are replicas.
    pub fn inter_contention_factor(&self) -> f64 {
        if !self.shared_link_contention {
            return 1.0;
        }
        let mut streams = 2.0;
        if self.data_parallel > 1 {
            streams += 1.0;
        }
        streams
    }

    /// Total number of GPUs in the job.
    pub fn total_gpus(&self) -> usize {
        self.pipeline_stages * self.data_parallel
    }

    /// Whether two pipeline stages are on the same node, assuming stages are
    /// laid out consecutively across nodes (Megatron-style placement).
    pub fn same_node(&self, stage_a: usize, stage_b: usize) -> bool {
        stage_a / self.gpus_per_node == stage_b / self.gpus_per_node
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.gpus_per_node == 0 {
            return Err("gpus_per_node must be positive".into());
        }
        if self.pipeline_stages == 0 {
            return Err("pipeline_stages must be positive".into());
        }
        if self.data_parallel == 0 {
            return Err("data_parallel must be positive".into());
        }
        if let Some(devices) = &self.devices {
            if devices.len() != self.pipeline_stages {
                return Err(format!(
                    "devices has {} specs for {} pipeline stages",
                    devices.len(),
                    self.pipeline_stages
                ));
            }
            if devices
                .iter()
                .any(|d| d.sustained_flops <= 0.0 || d.memory_capacity == 0)
            {
                return Err("every device needs positive flops and memory".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_spec_is_plausible() {
        let d = DeviceSpec::h100_sxm5();
        assert!(d.sustained_flops > 1.0e14);
        assert_eq!(d.memory_capacity, 80 * 1024 * 1024 * 1024);
        assert!(d.intra_node_bandwidth > d.inter_node_bandwidth);
    }

    #[test]
    fn compute_time_scales_linearly_with_flops() {
        let d = DeviceSpec::h100_sxm5();
        let t1 = d.compute_time(1.0e12);
        let t2 = d.compute_time(2.0e12);
        // Subtract the fixed launch overhead before comparing ratios.
        let o = d.kernel_launch_overhead;
        assert!(((t2 - o) / (t1 - o) - 2.0).abs() < 1e-9);
        assert_eq!(d.compute_time(0.0), 0.0);
        assert_eq!(d.compute_time(-5.0), 0.0);
    }

    #[test]
    fn transfer_time_prefers_intra_node_links() {
        let d = DeviceSpec::h100_sxm5();
        let bytes = 1.0e9;
        assert!(d.transfer_time(bytes, true) < d.transfer_time(bytes, false));
        assert_eq!(d.transfer_time(0.0, true), 0.0);
    }

    #[test]
    fn paper_cluster_shapes_match_the_evaluation_section() {
        let big = ClusterConfig::paper_720_h100();
        assert_eq!(big.total_gpus(), 720);
        assert_eq!(big.pipeline_stages, 24);
        assert_eq!(big.data_parallel, 30);
        big.validate().unwrap();

        let moe = ClusterConfig::paper_128_h100();
        assert_eq!(moe.total_gpus(), 128);
        assert_eq!(moe.pipeline_stages, 16);
        assert_eq!(moe.data_parallel, 8);
        moe.validate().unwrap();
    }

    #[test]
    fn single_node_uses_all_gpus_as_stages() {
        let c = ClusterConfig::single_node(8);
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.pipeline_stages, 8);
        assert_eq!(c.data_parallel, 1);
    }

    #[test]
    fn same_node_follows_consecutive_layout() {
        let c = ClusterConfig::homogeneous(4, 8, 1, DeviceSpec::h100_sxm5());
        assert!(c.same_node(0, 3));
        assert!(!c.same_node(3, 4));
        assert!(c.same_node(4, 7));
    }

    #[test]
    fn homogeneous_cluster_reports_no_heterogeneity() {
        let c = ClusterConfig::single_node(8);
        assert!(!c.is_heterogeneous());
        assert!(c.stage_speeds().is_none());
        assert!(c.stage_capacities().is_none());
        assert_eq!(c.min_memory_capacity(), c.device.memory_capacity);
        assert_eq!(c.device_of(3), &c.device);
        assert_eq!(c.inter_contention_factor(), 1.0);
    }

    #[test]
    fn two_generation_cluster_splits_the_pipeline_in_half() {
        let c = ClusterConfig::hetero_two_gen(4, 8, 1);
        c.validate().unwrap();
        assert!(c.is_heterogeneous());
        assert_eq!(c.device_of(0), &DeviceSpec::h100_sxm5());
        assert_eq!(c.device_of(3), &DeviceSpec::h100_sxm5());
        assert_eq!(c.device_of(4), &DeviceSpec::a100_sxm4());
        assert_eq!(c.device_of(7), &DeviceSpec::a100_sxm4());
        let speeds = c.stage_speeds().unwrap();
        assert_eq!(speeds[0], 1.0);
        assert!((speeds[7] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_generation_cluster_covers_all_generations() {
        let c = ClusterConfig::hetero_three_gen(4, 12, 1);
        c.validate().unwrap();
        assert_eq!(c.device_of(0), &DeviceSpec::h100_sxm5());
        assert_eq!(c.device_of(5), &DeviceSpec::a100_sxm4());
        assert_eq!(c.device_of(11), &DeviceSpec::v100_sxm2());
        // The oldest generation bounds the memory floor.
        assert_eq!(
            c.min_memory_capacity(),
            DeviceSpec::v100_sxm2().memory_capacity
        );
        let speeds = c.stage_speeds().unwrap();
        assert!(speeds[11] < speeds[5] && speeds[5] < speeds[0]);
    }

    #[test]
    fn all_equal_devices_count_as_heterogeneous_never() {
        let c = ClusterConfig::single_node(4).with_devices(vec![DeviceSpec::h100_sxm5(); 4]);
        assert!(!c.is_heterogeneous());
        // But the per-stage views still exist and are all-1.0 / uniform.
        assert!(c.stage_speeds().unwrap().iter().all(|&s| s == 1.0));
    }

    #[test]
    fn shared_link_contention_adds_streams() {
        let pipe_only = ClusterConfig::single_node(4).with_shared_link_contention(true);
        assert_eq!(pipe_only.inter_contention_factor(), 2.0);
        let with_dp = ClusterConfig::homogeneous(4, 4, 2, DeviceSpec::h100_sxm5())
            .with_shared_link_contention(true);
        assert_eq!(with_dp.inter_contention_factor(), 3.0);
    }

    #[test]
    fn validation_rejects_wrong_device_count() {
        let mut c = ClusterConfig::hetero_two_gen(4, 8, 1);
        c.devices.as_mut().unwrap().pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_degrees() {
        let mut c = ClusterConfig::single_node(4);
        c.data_parallel = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::single_node(4);
        c.pipeline_stages = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::single_node(4);
        c.gpus_per_node = 0;
        assert!(c.validate().is_err());
    }
}
