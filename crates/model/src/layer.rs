//! Per-layer descriptors.
//!
//! A [`LayerDesc`] is the unit the load balancers move between pipeline
//! stages: it records the layer's identity, its parameter count (used by the
//! "by parameters" balancer variants and the memory model) and its baseline
//! forward/backward FLOPs (used by the "by execution time" variants).  The
//! *dynamic* multipliers — pruning retention, frozen flags, sparsity
//! factors, routed token counts — are produced by `dynmo-dynamics` and
//! applied on top of these baselines.

use serde::{Deserialize, Serialize};

/// Index of a layer within the model (0-based, front to back).
pub type LayerId = usize;

/// The structural kind of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token + position embedding table at the front of the model.
    Embedding,
    /// A transformer decoder block (attention + feed-forward).
    Transformer {
        /// Whether the feed-forward block is a Mixture-of-Experts block.
        moe: bool,
    },
    /// Final layer norm plus the language-model output head.
    Head,
}

impl LayerKind {
    /// Whether this layer is a transformer decoder block.
    pub fn is_transformer(&self) -> bool {
        matches!(self, LayerKind::Transformer { .. })
    }
}

/// Static description of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerDesc {
    /// Position of the layer in the model.
    pub id: LayerId,
    /// Structural kind.
    pub kind: LayerKind,
    /// Name, following Megatron/DeepSpeed conventions, so the DeepSpeed
    /// `regex` partitioning baseline has something to match against
    /// (e.g. `transformer_layer_07`).
    pub name: String,
    /// Number of parameters held by the layer.
    pub param_count: u64,
    /// Baseline forward-pass FLOPs for one micro-batch.
    pub flops_fwd: f64,
    /// Baseline backward-pass FLOPs for one micro-batch (≈ 2× forward).
    pub flops_bwd: f64,
}

impl LayerDesc {
    /// Total baseline FLOPs (forward + backward) for one micro-batch.
    pub fn flops_total(&self) -> f64 {
        self.flops_fwd + self.flops_bwd
    }

    /// Whether this layer is a transformer decoder block.
    pub fn is_transformer(&self) -> bool {
        self.kind.is_transformer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> LayerDesc {
        LayerDesc {
            id: 3,
            kind: LayerKind::Transformer { moe: false },
            name: "transformer_layer_03".to_string(),
            param_count: 12_596_224,
            flops_fwd: 1.0e11,
            flops_bwd: 2.0e11,
        }
    }

    #[test]
    fn flops_total_sums_fwd_and_bwd() {
        let l = sample_layer();
        assert_eq!(l.flops_total(), 3.0e11);
    }

    #[test]
    fn kind_predicates() {
        assert!(LayerKind::Transformer { moe: true }.is_transformer());
        assert!(LayerKind::Transformer { moe: false }.is_transformer());
        assert!(!LayerKind::Embedding.is_transformer());
        assert!(!LayerKind::Head.is_transformer());
        assert!(sample_layer().is_transformer());
    }

    #[test]
    fn names_follow_megatron_convention() {
        let l = sample_layer();
        assert!(l.name.starts_with("transformer_layer_"));
    }
}
