//! Model configuration and presets mirroring the paper's evaluation setup.
//!
//! From §5 of the paper: "All models use a sequence length of 2048, hidden
//! size of 1024, and 32 attention heads. Unless otherwise specified, training
//! runs for 10,000 iterations with micro-batch size 2 and batch size 64."
//! The GPT models are parameterized to have 24, 32, 40, or 48 transformer
//! layers; the MoE experiments use Mixtral-8x7B and LLaMA-MoE-3.5B shapes.

use serde::{Deserialize, Serialize};

/// Mixture-of-Experts configuration attached to a model whose feed-forward
/// blocks are expert-parallel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts per MoE feed-forward block.
    pub num_experts: usize,
    /// Number of experts each token is routed to (top-k routing).
    pub top_k: usize,
    /// Capacity factor used by capacity-constrained baselines (e.g. Tutel):
    /// an expert processes at most `capacity_factor * tokens / num_experts`
    /// tokens per batch.
    pub capacity_factor: f64,
}

impl MoeConfig {
    /// Mixtral-8x7B style routing: 8 experts, top-2.
    pub fn mixtral() -> Self {
        MoeConfig {
            num_experts: 8,
            top_k: 2,
            capacity_factor: 1.25,
        }
    }

    /// LLaMA-MoE-3.5B style routing: 16 experts, top-4 (the 3.5B/16-expert
    /// configuration released by the LLaMA-MoE project).
    pub fn llama_moe() -> Self {
        MoeConfig {
            num_experts: 16,
            top_k: 4,
            capacity_factor: 1.25,
        }
    }
}

/// Named presets used throughout the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelPreset {
    /// Dense GPT model with the given number of transformer layers
    /// (24, 32, 40 or 48 in the paper).
    Gpt {
        /// Number of transformer layers.
        layers: usize,
    },
    /// Mixtral-8x7B-shaped MoE model (32 layers, 8 experts, top-2).
    Mixtral8x7b,
    /// LLaMA-MoE-3.5B-shaped MoE model (32 layers, 16 experts, top-4).
    LlamaMoe3_5b,
}

impl ModelPreset {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            ModelPreset::Gpt { layers } => format!("GPT-{layers}L"),
            ModelPreset::Mixtral8x7b => "Mixtral 8x7B".to_string(),
            ModelPreset::LlamaMoe3_5b => "LLaMA-MoE-3.5B".to_string(),
        }
    }
}

/// Full description of a model's shape and training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of transformer layers (decoder blocks).
    pub num_layers: usize,
    /// Hidden dimension of the residual stream.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Sequence length in tokens.
    pub seq_len: usize,
    /// Vocabulary size (for the embedding and output head).
    pub vocab_size: usize,
    /// Feed-forward inner dimension (usually `4 * hidden_size` for dense
    /// GPT, or the expert hidden size for MoE models).
    pub ffn_hidden_size: usize,
    /// Micro-batch size (sequences per pipeline micro-batch).
    pub micro_batch_size: usize,
    /// Global batch size (sequences per optimizer step).
    pub global_batch_size: usize,
    /// MoE configuration when the feed-forward blocks are expert-parallel.
    pub moe: Option<MoeConfig>,
    /// Bytes per parameter for weights/activations (2 = bf16, 4 = fp32).
    pub param_bytes: usize,
}

impl ModelConfig {
    /// The paper's GPT configuration with a given layer count (Figure 1,
    /// Figure 3, Figure 4 all sweep 24/32/40/48 layers).
    pub fn gpt(num_layers: usize) -> Self {
        ModelConfig {
            num_layers,
            hidden_size: 1024,
            num_heads: 32,
            seq_len: 2048,
            vocab_size: 50_257,
            ffn_hidden_size: 4 * 1024,
            micro_batch_size: 2,
            global_batch_size: 64,
            moe: None,
            param_bytes: 2,
        }
    }

    /// Mixtral-8x7B-shaped configuration used in the MoE experiments.
    /// (32 layers, hidden 4096, 32 heads, 8 experts top-2, expert FFN 14336.)
    pub fn mixtral_8x7b() -> Self {
        ModelConfig {
            num_layers: 32,
            hidden_size: 4096,
            num_heads: 32,
            seq_len: 2048,
            vocab_size: 32_000,
            ffn_hidden_size: 14_336,
            micro_batch_size: 2,
            global_batch_size: 64,
            moe: Some(MoeConfig::mixtral()),
            param_bytes: 2,
        }
    }

    /// LLaMA-MoE-3.5B-shaped configuration (32 layers, hidden 2048,
    /// 16 experts top-4, expert FFN 5504 split across experts).
    pub fn llama_moe_3_5b() -> Self {
        ModelConfig {
            num_layers: 32,
            hidden_size: 2048,
            num_heads: 16,
            seq_len: 2048,
            vocab_size: 32_000,
            ffn_hidden_size: 5_504,
            micro_batch_size: 2,
            global_batch_size: 64,
            moe: Some(MoeConfig::llama_moe()),
            param_bytes: 2,
        }
    }

    /// Construct a config from a named preset.
    pub fn from_preset(preset: ModelPreset) -> Self {
        match preset {
            ModelPreset::Gpt { layers } => Self::gpt(layers),
            ModelPreset::Mixtral8x7b => Self::mixtral_8x7b(),
            ModelPreset::LlamaMoe3_5b => Self::llama_moe_3_5b(),
        }
    }

    /// Dimension of each attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Number of micro-batches per global batch for a single pipeline
    /// (i.e. before dividing by the data-parallel degree).
    pub fn micro_batches_per_batch(&self) -> usize {
        self.global_batch_size.div_ceil(self.micro_batch_size)
    }

    /// Tokens processed per global batch.
    pub fn tokens_per_batch(&self) -> u64 {
        self.global_batch_size as u64 * self.seq_len as u64
    }

    /// Validate structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("num_layers must be positive".into());
        }
        if self.hidden_size == 0 || self.num_heads == 0 {
            return Err("hidden_size and num_heads must be positive".into());
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden_size {} must be divisible by num_heads {}",
                self.hidden_size, self.num_heads
            ));
        }
        if self.micro_batch_size == 0 || self.global_batch_size == 0 {
            return Err("batch sizes must be positive".into());
        }
        if !self.global_batch_size.is_multiple_of(self.micro_batch_size) {
            return Err(format!(
                "global_batch_size {} must be divisible by micro_batch_size {}",
                self.global_batch_size, self.micro_batch_size
            ));
        }
        if let Some(moe) = &self.moe {
            if moe.top_k == 0 || moe.top_k > moe.num_experts {
                return Err(format!(
                    "MoE top_k {} must be within 1..=num_experts {}",
                    moe.top_k, moe.num_experts
                ));
            }
        }
        if self.param_bytes != 2 && self.param_bytes != 4 {
            return Err("param_bytes must be 2 (bf16) or 4 (fp32)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_preset_matches_paper_hyperparameters() {
        for layers in [24, 32, 40, 48] {
            let cfg = ModelConfig::gpt(layers);
            assert_eq!(cfg.num_layers, layers);
            assert_eq!(cfg.hidden_size, 1024);
            assert_eq!(cfg.num_heads, 32);
            assert_eq!(cfg.seq_len, 2048);
            assert_eq!(cfg.micro_batch_size, 2);
            assert_eq!(cfg.global_batch_size, 64);
            assert!(cfg.moe.is_none());
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn moe_presets_have_expert_configs() {
        let mixtral = ModelConfig::mixtral_8x7b();
        assert_eq!(mixtral.moe.unwrap().num_experts, 8);
        assert_eq!(mixtral.moe.unwrap().top_k, 2);
        mixtral.validate().unwrap();

        let llama = ModelConfig::llama_moe_3_5b();
        assert_eq!(llama.moe.unwrap().num_experts, 16);
        assert_eq!(llama.moe.unwrap().top_k, 4);
        llama.validate().unwrap();
    }

    #[test]
    fn head_dim_and_micro_batch_arithmetic() {
        let cfg = ModelConfig::gpt(24);
        assert_eq!(cfg.head_dim(), 32);
        assert_eq!(cfg.micro_batches_per_batch(), 32);
        assert_eq!(cfg.tokens_per_batch(), 64 * 2048);
    }

    #[test]
    fn from_preset_round_trips() {
        assert_eq!(
            ModelConfig::from_preset(ModelPreset::Gpt { layers: 40 }),
            ModelConfig::gpt(40)
        );
        assert_eq!(
            ModelConfig::from_preset(ModelPreset::Mixtral8x7b),
            ModelConfig::mixtral_8x7b()
        );
        assert_eq!(
            ModelConfig::from_preset(ModelPreset::LlamaMoe3_5b),
            ModelConfig::llama_moe_3_5b()
        );
    }

    #[test]
    fn preset_labels_are_descriptive() {
        assert_eq!(ModelPreset::Gpt { layers: 24 }.label(), "GPT-24L");
        assert!(ModelPreset::Mixtral8x7b.label().contains("Mixtral"));
        assert!(ModelPreset::LlamaMoe3_5b.label().contains("LLaMA"));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ModelConfig::gpt(24);
        cfg.num_layers = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::gpt(24);
        cfg.num_heads = 7; // 1024 not divisible by 7
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::gpt(24);
        cfg.global_batch_size = 63;
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::mixtral_8x7b();
        cfg.moe = Some(MoeConfig {
            num_experts: 4,
            top_k: 5,
            capacity_factor: 1.0,
        });
        assert!(cfg.validate().is_err());

        let mut cfg = ModelConfig::gpt(24);
        cfg.param_bytes = 3;
        assert!(cfg.validate().is_err());
    }
}
