//! The [`Model`]: a configuration plus its materialized layer list.

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, ModelPreset};
use crate::cost::CostModel;
use crate::layer::{LayerDesc, LayerId};
use crate::memory::MemoryModel;

/// A model instance: its configuration and the ordered list of layers the
/// pipeline distributes across workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    config: ModelConfig,
    layers: Vec<LayerDesc>,
}

impl Model {
    /// Build a model from a configuration, materializing its layers via the
    /// analytical cost model.
    pub fn build(config: ModelConfig) -> Result<Self, String> {
        config.validate()?;
        let layers = CostModel::new(config.clone()).build_layers();
        Ok(Model { config, layers })
    }

    /// Build a model from a named preset.
    pub fn from_preset(preset: ModelPreset) -> Self {
        Self::build(ModelConfig::from_preset(preset)).expect("presets are valid")
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The ordered layer list (embedding, transformer blocks, head).
    pub fn layers(&self) -> &[LayerDesc] {
        &self.layers
    }

    /// Number of layers, including embedding and head.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// A layer by id.
    pub fn layer(&self, id: LayerId) -> Option<&LayerDesc> {
        self.layers.get(id)
    }

    /// Total parameter count across all layers.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count).sum()
    }

    /// Total baseline forward+backward FLOPs for one micro-batch.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_total()).sum()
    }

    /// A cost model bound to this model's configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.config.clone())
    }

    /// A memory model bound to this model's configuration.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel::new(self.config.clone())
    }

    /// Ids of the transformer layers only (the ones dynamism acts on).
    pub fn transformer_layer_ids(&self) -> Vec<LayerId> {
        self.layers
            .iter()
            .filter(|l| l.is_transformer())
            .map(|l| l.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_validates_the_config() {
        let mut bad = ModelConfig::gpt(24);
        bad.num_heads = 7;
        assert!(Model::build(bad).is_err());
        assert!(Model::build(ModelConfig::gpt(24)).is_ok());
    }

    #[test]
    fn layer_count_is_body_plus_embedding_and_head() {
        let m = Model::from_preset(ModelPreset::Gpt { layers: 32 });
        assert_eq!(m.num_layers(), 34);
        assert_eq!(m.transformer_layer_ids().len(), 32);
        assert_eq!(m.layer(0).unwrap().name, "embedding");
        assert!(m.layer(999).is_none());
    }

    #[test]
    fn total_params_grow_with_depth() {
        let m24 = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let m48 = Model::from_preset(ModelPreset::Gpt { layers: 48 });
        assert!(m48.total_params() > m24.total_params());
        assert!(m48.total_flops() > m24.total_flops());
    }

    #[test]
    fn mixtral_has_the_expected_scale() {
        // Mixtral-8x7B has ~46.7B parameters; the analytical model (which
        // uses two projection matrices per expert rather than SwiGLU's
        // three) lands within ~30% of that, which is all the simulator needs
        // to produce realistic memory and compute ratios.
        let m = Model::from_preset(ModelPreset::Mixtral8x7b);
        let params = m.total_params() as f64;
        assert!(params > 30.0e9 && params < 56.0e9, "params = {params:.3e}");
    }

    #[test]
    fn gpt_models_match_the_350m_to_1b_class() {
        // A 24-layer, hidden-1024 GPT is roughly a 350M-parameter model
        // (GPT-2 medium class); sanity-check the order of magnitude.
        let m = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let params = m.total_params() as f64;
        assert!(params > 2.0e8 && params < 6.0e8, "params = {params:.3e}");
    }

    #[test]
    fn cost_and_memory_models_share_the_config() {
        let m = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        assert_eq!(m.cost_model().config(), m.config());
        assert_eq!(m.memory_model().config(), m.config());
    }
}
