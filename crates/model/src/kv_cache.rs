//! KV-cache memory accounting for autoregressive inference.
//!
//! Serving a decoder-only transformer means holding, for every request and
//! every transformer layer, the key and value projections of all tokens the
//! request has processed so far.  The KV cache — not the weights — is what
//! bounds how many requests an inference engine can batch together, so the
//! continuous-batching scheduler in `dynmo-serve` admits requests against
//! the budgets computed here.
//!
//! The model is the standard per-token accounting with two hooks for the
//! paper's dynamic-model mechanisms:
//!
//! * **Pruning** — a layer that retains only a fraction of its parameters
//!   projects into proportionally fewer K/V channels, so its per-token KV
//!   bytes scale with the retention fraction (the same `param_retention`
//!   signal the training-side `LoadUpdate` carries).
//! * **Sparse / windowed attention** — an attention mechanism that only
//!   attends to the last `w` tokens (sliding-window flash attention, the
//!   inference-time analogue of §2.4's dynamic sparse attention) only needs
//!   to *cache* the last `w` tokens, capping per-request KV regardless of
//!   sequence length.
//!
//! Per token and transformer layer the cache stores one K and one V vector
//! of `hidden_size` elements at `param_bytes` precision:
//! `2 · hidden_size · param_bytes` bytes.  Embedding and head layers cache
//! nothing.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::layer::LayerDesc;

/// KV-cache memory model bound to a model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCacheModel {
    config: ModelConfig,
}

impl KvCacheModel {
    /// Build a KV-cache model for `config`.
    pub fn new(config: ModelConfig) -> Self {
        KvCacheModel { config }
    }

    /// The configuration this model describes.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Bytes of KV cache one *dense* transformer layer holds per cached
    /// token: one key and one value vector of `hidden_size` elements at
    /// `param_bytes` precision.  Non-transformer layers (embedding, head)
    /// cache nothing.
    pub fn layer_kv_bytes_per_token(&self, layer: &LayerDesc) -> u64 {
        if !layer.is_transformer() {
            return 0;
        }
        (2 * self.config.hidden_size * self.config.param_bytes) as u64
    }

    /// [`KvCacheModel::layer_kv_bytes_per_token`] under pruning: a layer
    /// retaining `retained_fraction` of its parameters projects into
    /// proportionally fewer K/V channels.
    pub fn pruned_layer_kv_bytes_per_token(
        &self,
        layer: &LayerDesc,
        retained_fraction: f64,
    ) -> u64 {
        let dense = self.layer_kv_bytes_per_token(layer) as f64;
        (dense * retained_fraction.clamp(0.0, 1.0)).ceil() as u64
    }

    /// Tokens a request actually keeps cached when it has processed
    /// `seq_len` tokens: all of them for dense attention, at most the
    /// window for sliding-window sparse attention.
    pub fn cached_tokens(&self, seq_len: usize, attention_window: Option<usize>) -> usize {
        match attention_window {
            Some(w) => seq_len.min(w.max(1)),
            None => seq_len,
        }
    }

    /// Bytes of KV cache the given layers hold for one request with
    /// `seq_len` processed tokens.  `retained_fraction` gives each layer's
    /// pruning state (must be one entry per layer); `attention_window`
    /// caps the cached tokens for sliding-window attention.
    pub fn request_kv_bytes(
        &self,
        layers: &[LayerDesc],
        retained_fraction: &[f64],
        seq_len: usize,
        attention_window: Option<usize>,
    ) -> u64 {
        assert_eq!(
            layers.len(),
            retained_fraction.len(),
            "one retention factor per layer"
        );
        let tokens = self.cached_tokens(seq_len, attention_window) as u64;
        layers
            .iter()
            .zip(retained_fraction.iter())
            .map(|(layer, &retained)| self.pruned_layer_kv_bytes_per_token(layer, retained))
            .sum::<u64>()
            * tokens
    }

    /// Bytes of KV cache per cached token summed over `layers` at the given
    /// pruning state — the marginal cost of keeping one more token resident
    /// on the worker hosting those layers.
    pub fn kv_bytes_per_token(&self, layers: &[LayerDesc], retained_fraction: &[f64]) -> u64 {
        assert_eq!(
            layers.len(),
            retained_fraction.len(),
            "one retention factor per layer"
        );
        layers
            .iter()
            .zip(retained_fraction.iter())
            .map(|(layer, &retained)| self.pruned_layer_kv_bytes_per_token(layer, retained))
            .sum()
    }

    /// How many tokens fit in `budget_bytes` of free device memory on a
    /// worker hosting `layers` — the admission-control capacity of the
    /// continuous-batching scheduler.  Returns 0 when the layers cache
    /// nothing (a stage of embedding/head only) *and* the budget is 0;
    /// a stage that caches nothing but has budget reports `usize::MAX`
    /// (it never constrains admission).
    pub fn capacity_tokens(
        &self,
        layers: &[LayerDesc],
        retained_fraction: &[f64],
        budget_bytes: u64,
    ) -> usize {
        let per_token = self.kv_bytes_per_token(layers, retained_fraction);
        if per_token == 0 {
            return if budget_bytes > 0 { usize::MAX } else { 0 };
        }
        (budget_bytes / per_token) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::model::Model;

    fn gpt24() -> (KvCacheModel, Vec<LayerDesc>) {
        let cfg = ModelConfig::gpt(24);
        let layers = CostModel::new(cfg.clone()).build_layers();
        (KvCacheModel::new(cfg), layers)
    }

    #[test]
    fn dense_layer_kv_matches_two_hidden_vectors() {
        let (kv, layers) = gpt24();
        // Transformer layer: 2 × 1024 hidden × 2 bytes = 4 KiB per token.
        assert_eq!(kv.layer_kv_bytes_per_token(&layers[1]), 2 * 1024 * 2);
        // Embedding and head cache nothing.
        assert_eq!(kv.layer_kv_bytes_per_token(&layers[0]), 0);
        assert_eq!(kv.layer_kv_bytes_per_token(layers.last().unwrap()), 0);
    }

    #[test]
    fn pruning_shrinks_kv_proportionally() {
        let (kv, layers) = gpt24();
        let dense = kv.pruned_layer_kv_bytes_per_token(&layers[1], 1.0);
        let half = kv.pruned_layer_kv_bytes_per_token(&layers[1], 0.5);
        assert_eq!(half, dense / 2);
        // Clamped outside [0, 1].
        assert_eq!(kv.pruned_layer_kv_bytes_per_token(&layers[1], 2.0), dense);
        assert_eq!(kv.pruned_layer_kv_bytes_per_token(&layers[1], -1.0), 0);
    }

    #[test]
    fn windowed_attention_caps_cached_tokens() {
        let (kv, layers) = gpt24();
        assert_eq!(kv.cached_tokens(2048, None), 2048);
        assert_eq!(kv.cached_tokens(2048, Some(512)), 512);
        assert_eq!(kv.cached_tokens(100, Some(512)), 100);
        // A windowed request stops growing once past the window.
        let retained = vec![1.0; layers.len()];
        let short = kv.request_kv_bytes(&layers, &retained, 400, Some(512));
        let long = kv.request_kv_bytes(&layers, &retained, 4000, Some(512));
        let capped = kv.request_kv_bytes(&layers, &retained, 512, Some(512));
        assert!(short < capped);
        assert_eq!(long, capped);
    }

    #[test]
    fn request_kv_sums_transformer_layers_only() {
        let (kv, layers) = gpt24();
        let retained = vec![1.0; layers.len()];
        let bytes = kv.request_kv_bytes(&layers, &retained, 1000, None);
        // 24 transformer layers × 4096 B/token × 1000 tokens.
        assert_eq!(bytes, 24 * 4096 * 1000);
        assert_eq!(kv.kv_bytes_per_token(&layers, &retained), 24 * 4096);
    }

    #[test]
    fn capacity_tokens_inverts_the_per_token_cost() {
        let (kv, layers) = gpt24();
        let retained = vec![1.0; layers.len()];
        let per_token = kv.kv_bytes_per_token(&layers, &retained);
        assert_eq!(
            kv.capacity_tokens(&layers, &retained, per_token * 1234),
            1234
        );
        // A stage holding only the embedding never constrains admission.
        assert_eq!(
            kv.capacity_tokens(&layers[..1], &retained[..1], 1_000_000),
            usize::MAX
        );
        assert_eq!(kv.capacity_tokens(&layers[..1], &retained[..1], 0), 0);
    }

    #[test]
    fn a_full_gpt24_kv_fits_thousands_of_h100_tokens() {
        // Sanity: a 24-layer hidden-1024 model costs ~96 KiB of KV per
        // token, so tens of GB of free HBM hold hundreds of thousands of
        // tokens.
        let model = Model::from_preset(crate::config::ModelPreset::Gpt { layers: 24 });
        let kv = KvCacheModel::new(model.config().clone());
        let retained = vec![1.0; model.num_layers()];
        let budget = 40u64 * 1024 * 1024 * 1024;
        let tokens = kv.capacity_tokens(model.layers(), &retained, budget);
        assert!(tokens > 100_000, "tokens = {tokens}");
    }

    #[test]
    #[should_panic(expected = "one retention factor per layer")]
    fn mismatched_retention_length_panics() {
        let (kv, layers) = gpt24();
        let _ = kv.request_kv_bytes(&layers, &[1.0], 10, None);
    }
}
