//! # dynmo-model
//!
//! Transformer / GPT model descriptions and analytical cost models used by
//! the DynMo reproduction.
//!
//! The paper trains GPT models parameterized to 24–48 layers (sequence
//! length 2048, hidden size 1024, 32 attention heads) plus two production
//! MoE models (Mixtral-8x7B and LLaMA-MoE-3.5B shapes) on H100 GPUs.  This
//! crate captures:
//!
//! * the model *shape* ([`config::ModelConfig`] with presets mirroring the
//!   paper's experimental section),
//! * per-layer parameter counts and FLOP costs ([`layer`], [`cost`]),
//! * per-layer memory footprints, including Adam optimizer state and
//!   activation memory per micro-batch ([`memory`]),
//! * KV-cache memory per request for autoregressive inference, with
//!   pruning and sliding-window sparse-attention hooks ([`kv_cache`]), and
//! * the device/cluster description used to convert FLOPs into time
//!   ([`device`]).
//!
//! Everything downstream (the pipeline simulator, the dynamism engines, the
//! balancers) works in terms of these layer descriptors, which is what makes
//! the load-balancing algorithms independent of any GPU runtime — exactly
//! the property the paper's "system software layer" claims.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod device;
pub mod kv_cache;
pub mod layer;
pub mod memory;
pub mod model;

pub use config::{ModelConfig, ModelPreset, MoeConfig};
pub use cost::CostModel;
pub use device::{ClusterConfig, DeviceSpec};
pub use kv_cache::KvCacheModel;
pub use layer::{LayerDesc, LayerId, LayerKind};
pub use memory::MemoryModel;
pub use model::Model;
