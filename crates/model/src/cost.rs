//! Analytical FLOP cost model for transformer layers.
//!
//! The pipeline simulator needs per-layer execution times.  On the paper's
//! testbed those come from Megatron's built-in timers; here they come from a
//! standard transformer FLOP model (the same arithmetic Megatron-LM and the
//! Chinchilla/PaLM papers use) evaluated against a [`DeviceSpec`]'s
//! sustained throughput.  What matters for reproducing the paper's *shape*
//! of results is that relative layer costs (attention vs MLP vs MoE, dense
//! vs sparse, active vs frozen) are faithful, which a FLOP model guarantees
//! by construction.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::device::DeviceSpec;
use crate::layer::{LayerDesc, LayerKind};

/// Ratio of backward-pass FLOPs to forward-pass FLOPs.  The standard
/// approximation for transformer training is 2× (one pass for activation
/// gradients, one for weight gradients).
pub const BWD_TO_FWD_RATIO: f64 = 2.0;

/// Analytical per-layer FLOP and parameter model for a given configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    config: ModelConfig,
}

impl CostModel {
    /// Build a cost model for the given model configuration.
    pub fn new(config: ModelConfig) -> Self {
        CostModel { config }
    }

    /// The configuration this cost model describes.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Parameters in the embedding layer (token table + positions).
    pub fn embedding_params(&self) -> u64 {
        let c = &self.config;
        (c.vocab_size as u64 + c.seq_len as u64) * c.hidden_size as u64
    }

    /// Parameters in one attention block: Q, K, V and output projections
    /// plus biases and the pre-attention layer norm.
    pub fn attention_params(&self) -> u64 {
        let h = self.config.hidden_size as u64;
        4 * h * h + 4 * h + 2 * h
    }

    /// Parameters in one dense feed-forward block (two projections, biases,
    /// and the pre-FFN layer norm).
    pub fn dense_ffn_params(&self) -> u64 {
        let h = self.config.hidden_size as u64;
        let f = self.config.ffn_hidden_size as u64;
        2 * h * f + h + f + 2 * h
    }

    /// Parameters in one MoE feed-forward block: every expert's projections
    /// plus the router.
    pub fn moe_ffn_params(&self) -> u64 {
        let h = self.config.hidden_size as u64;
        let f = self.config.ffn_hidden_size as u64;
        match &self.config.moe {
            Some(moe) => {
                let per_expert = 2 * h * f + h + f;
                moe.num_experts as u64 * per_expert + h * moe.num_experts as u64 + 2 * h
            }
            None => self.dense_ffn_params(),
        }
    }

    /// Parameters in one transformer block.
    pub fn transformer_params(&self) -> u64 {
        let ffn = if self.config.moe.is_some() {
            self.moe_ffn_params()
        } else {
            self.dense_ffn_params()
        };
        self.attention_params() + ffn
    }

    /// Parameters in the head layer (final norm + unembedding; the
    /// unembedding is typically tied to the embedding, so only the norm is
    /// counted as unique parameters, but its *compute* is counted in FLOPs).
    pub fn head_params(&self) -> u64 {
        2 * self.config.hidden_size as u64
    }

    /// Forward FLOPs of dense self-attention for one micro-batch, optionally
    /// scaled by an attention-matrix density in `[0, 1]` (1 = dense).  The
    /// projection FLOPs are unaffected by sparsity; only the `QKᵀ` and `PV`
    /// terms scale with the number of non-masked blocks, matching the
    /// behaviour of the dynamic sparse flash-attention kernel.
    pub fn attention_fwd_flops(&self, density: f64) -> f64 {
        let c = &self.config;
        let b = c.micro_batch_size as f64;
        let s = c.seq_len as f64;
        let h = c.hidden_size as f64;
        let density = density.clamp(0.0, 1.0);
        // Q, K, V, output projections: 4 GEMMs of (s × h) · (h × h).
        let proj = 4.0 * 2.0 * s * h * h;
        // Scores (QKᵀ) and context (PV): 2 GEMMs of s × s × h, scaled by the
        // fraction of attention blocks actually computed.
        let attn = 2.0 * 2.0 * s * s * h * density;
        b * (proj + attn)
    }

    /// Forward FLOPs of one dense feed-forward block for one micro-batch.
    pub fn dense_ffn_fwd_flops(&self) -> f64 {
        let c = &self.config;
        let b = c.micro_batch_size as f64;
        let s = c.seq_len as f64;
        let h = c.hidden_size as f64;
        let f = c.ffn_hidden_size as f64;
        b * 2.0 * 2.0 * s * h * f
    }

    /// Forward FLOPs of one MoE feed-forward block for one micro-batch under
    /// *balanced* routing (each token visits `top_k` experts).  Imbalanced
    /// routing is modeled by `dynmo-dynamics`, which scales per-worker load
    /// by the actual token counts.
    pub fn moe_ffn_fwd_flops(&self) -> f64 {
        match &self.config.moe {
            Some(moe) => {
                let router = {
                    let c = &self.config;
                    let b = c.micro_batch_size as f64;
                    let s = c.seq_len as f64;
                    let h = c.hidden_size as f64;
                    b * 2.0 * s * h * moe.num_experts as f64
                };
                self.dense_ffn_fwd_flops() * moe.top_k as f64 + router
            }
            None => self.dense_ffn_fwd_flops(),
        }
    }

    /// Forward FLOPs of one transformer block for one micro-batch.
    pub fn transformer_fwd_flops(&self, attention_density: f64) -> f64 {
        let ffn = if self.config.moe.is_some() {
            self.moe_ffn_fwd_flops()
        } else {
            self.dense_ffn_fwd_flops()
        };
        self.attention_fwd_flops(attention_density) + ffn
    }

    /// Forward FLOPs of the embedding layer (lookup — negligible GEMM work,
    /// modeled as a small copy cost).
    pub fn embedding_fwd_flops(&self) -> f64 {
        let c = &self.config;
        c.micro_batch_size as f64 * c.seq_len as f64 * c.hidden_size as f64
    }

    /// Forward FLOPs of the output head (final GEMM into the vocabulary).
    pub fn head_fwd_flops(&self) -> f64 {
        let c = &self.config;
        let b = c.micro_batch_size as f64;
        let s = c.seq_len as f64;
        let h = c.hidden_size as f64;
        let v = c.vocab_size as f64;
        b * 2.0 * s * h * v
    }

    /// Build the full list of layer descriptors for this configuration:
    /// embedding, `num_layers` transformer blocks, head.
    pub fn build_layers(&self) -> Vec<LayerDesc> {
        let mut layers = Vec::with_capacity(self.config.num_layers + 2);
        let is_moe = self.config.moe.is_some();

        layers.push(LayerDesc {
            id: 0,
            kind: LayerKind::Embedding,
            name: "embedding".to_string(),
            param_count: self.embedding_params(),
            flops_fwd: self.embedding_fwd_flops(),
            flops_bwd: self.embedding_fwd_flops() * BWD_TO_FWD_RATIO,
        });

        for i in 0..self.config.num_layers {
            let fwd = self.transformer_fwd_flops(1.0);
            layers.push(LayerDesc {
                id: i + 1,
                kind: LayerKind::Transformer { moe: is_moe },
                name: format!("transformer_layer_{i:02}"),
                param_count: self.transformer_params(),
                flops_fwd: fwd,
                flops_bwd: fwd * BWD_TO_FWD_RATIO,
            });
        }

        let head_fwd = self.head_fwd_flops();
        layers.push(LayerDesc {
            id: self.config.num_layers + 1,
            kind: LayerKind::Head,
            name: "lm_head".to_string(),
            param_count: self.head_params(),
            flops_fwd: head_fwd,
            flops_bwd: head_fwd * BWD_TO_FWD_RATIO,
        });

        layers
    }

    /// Convert a layer's total (fwd+bwd) FLOPs into seconds on `device`.
    pub fn layer_time(&self, layer: &LayerDesc, device: &DeviceSpec) -> f64 {
        device.compute_time(layer.flops_fwd) + device.compute_time(layer.flops_bwd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt24() -> CostModel {
        CostModel::new(ModelConfig::gpt(24))
    }

    #[test]
    fn transformer_params_match_closed_form() {
        let m = gpt24();
        let h = 1024u64;
        let f = 4096u64;
        let attn = 4 * h * h + 4 * h + 2 * h;
        let ffn = 2 * h * f + h + f + 2 * h;
        assert_eq!(m.transformer_params(), attn + ffn);
    }

    #[test]
    fn moe_block_has_more_params_and_flops_than_dense() {
        let dense = CostModel::new(ModelConfig::gpt(32));
        let moe = CostModel::new(ModelConfig::mixtral_8x7b());
        assert!(moe.moe_ffn_params() > dense.dense_ffn_params());
        assert!(moe.moe_ffn_fwd_flops() > dense.dense_ffn_fwd_flops());
        // Balanced top-2 routing ≈ 2× dense FFN compute (plus the router).
        let ratio = CostModel::new(ModelConfig::mixtral_8x7b()).moe_ffn_fwd_flops()
            / CostModel::new(ModelConfig::mixtral_8x7b()).dense_ffn_fwd_flops();
        assert!(ratio > 2.0 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn attention_flops_scale_with_density_only_in_score_terms() {
        let m = gpt24();
        let dense = m.attention_fwd_flops(1.0);
        let half = m.attention_fwd_flops(0.5);
        let zero = m.attention_fwd_flops(0.0);
        assert!(dense > half && half > zero);
        // Projection FLOPs remain even at density 0.
        assert!(zero > 0.0);
        // The reduction from density 1.0 → 0.5 equals half the score FLOPs.
        let score_flops = dense - zero;
        assert!((dense - half - score_flops / 2.0).abs() < 1.0);
        // Density outside [0,1] is clamped.
        assert_eq!(m.attention_fwd_flops(7.0), dense);
    }

    #[test]
    fn build_layers_has_embedding_body_and_head() {
        let m = gpt24();
        let layers = m.build_layers();
        assert_eq!(layers.len(), 24 + 2);
        assert_eq!(layers[0].kind, LayerKind::Embedding);
        assert_eq!(layers[25].kind, LayerKind::Head);
        assert!(layers[1..25].iter().all(|l| l.is_transformer()));
        // Ids are consecutive and names unique.
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.id, i);
        }
        let names: std::collections::HashSet<_> = layers.iter().map(|l| &l.name).collect();
        assert_eq!(names.len(), layers.len());
    }

    #[test]
    fn backward_flops_are_twice_forward() {
        let layers = gpt24().build_layers();
        for l in &layers {
            assert!((l.flops_bwd - l.flops_fwd * BWD_TO_FWD_RATIO).abs() < 1.0);
        }
    }

    #[test]
    fn layer_time_uses_device_throughput() {
        let m = gpt24();
        let layers = m.build_layers();
        let h100 = DeviceSpec::h100_sxm5();
        let a100 = DeviceSpec::a100_sxm4();
        let t_h100 = m.layer_time(&layers[1], &h100);
        let t_a100 = m.layer_time(&layers[1], &a100);
        assert!(t_a100 > t_h100);
        assert!(t_h100 > 0.0);
    }

    #[test]
    fn deeper_models_have_proportionally_more_transformer_layers() {
        let l24 = CostModel::new(ModelConfig::gpt(24)).build_layers();
        let l48 = CostModel::new(ModelConfig::gpt(48)).build_layers();
        let t24 = l24.iter().filter(|l| l.is_transformer()).count();
        let t48 = l48.iter().filter(|l| l.is_transformer()).count();
        assert_eq!(t24, 24);
        assert_eq!(t48, 48);
    }
}
