//! Focused unit tests for the sparse-tensor primitives that back DynMo's
//! gradual-pruning path (paper §4.2.2): CSR round-tripping, magnitude
//! pruning keeping the top-k entries by |w|, and SpMM agreement with the
//! dense reference GEMM.

use dynmo_sparse::{
    prune_to_sparsity, spmm, spmm_transpose, top_k_indices_by_magnitude, CsrMatrix, DenseMatrix,
};

/// Deterministic pseudo-random f32 stream (no external RNG crates offline).
fn pseudo_random_values(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
            (unit as f32 - 0.5) * 4.0
        })
        .collect()
}

fn sparse_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> DenseMatrix {
    let mut data = pseudo_random_values(rows * cols, seed);
    prune_to_sparsity(&mut data, sparsity);
    DenseMatrix::from_vec(rows, cols, data)
}

#[test]
fn csr_round_trips_dense_matrices() {
    for (rows, cols, sparsity) in [(1, 1, 0.0), (7, 5, 0.5), (16, 16, 0.9), (3, 11, 1.0)] {
        let dense = sparse_matrix(rows, cols, sparsity, 42 + rows as u64);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.rows(), rows);
        assert_eq!(csr.cols(), cols);
        let zeros = dense.data().iter().filter(|v| **v == 0.0).count();
        assert_eq!(csr.nnz(), rows * cols - zeros, "nnz mismatch at {sparsity}");
        assert_eq!(
            csr.to_dense(),
            dense,
            "round trip lost values at {sparsity}"
        );
    }
}

#[test]
fn csr_row_ptr_is_a_valid_prefix_sum() {
    let dense = sparse_matrix(9, 6, 0.7, 7);
    let csr = CsrMatrix::from_dense(&dense);
    let row_ptr = csr.row_ptr();
    assert_eq!(row_ptr.len(), csr.rows() + 1);
    assert_eq!(row_ptr[0], 0);
    assert_eq!(*row_ptr.last().unwrap(), csr.nnz());
    assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn magnitude_prune_keeps_exactly_the_top_k() {
    let values = pseudo_random_values(256, 1234);
    let keep = 64;
    let sparsity = 1.0 - keep as f64 / values.len() as f64;

    let mut pruned = values.clone();
    prune_to_sparsity(&mut pruned, sparsity);

    let top_k: std::collections::HashSet<usize> = top_k_indices_by_magnitude(&values, keep)
        .into_iter()
        .collect();
    assert_eq!(top_k.len(), keep);

    for (i, (&original, &now)) in values.iter().zip(pruned.iter()).enumerate() {
        if top_k.contains(&i) {
            assert_eq!(now, original, "top-k index {i} was pruned");
        } else {
            assert_eq!(now, 0.0, "non-top-k index {i} survived");
        }
    }
}

#[test]
fn prune_handles_degenerate_sparsity_targets() {
    let mut all = pseudo_random_values(32, 5);
    let achieved = prune_to_sparsity(&mut all, 1.0);
    assert_eq!(achieved, 1.0);
    assert!(all.iter().all(|v| *v == 0.0));

    let original = pseudo_random_values(32, 6);
    let mut none = original.clone();
    let achieved = prune_to_sparsity(&mut none, 0.0);
    assert!(achieved <= f64::EPSILON);
    assert_eq!(none, original);
}

#[test]
fn spmm_agrees_with_dense_gemm() {
    for (m, k, n, sparsity) in [(4, 4, 4, 0.5), (8, 16, 5, 0.75), (13, 7, 9, 0.95)] {
        let a_dense = sparse_matrix(m, k, sparsity, 100 + m as u64);
        let b = DenseMatrix::from_vec(k, n, pseudo_random_values(k * n, 200 + n as u64));
        let a_csr = CsrMatrix::from_dense(&a_dense);
        let sparse_result = spmm(&a_csr, &b);
        let dense_result = a_dense.matmul(&b);
        assert!(
            sparse_result.max_abs_diff(&dense_result) < 1e-4,
            "SpMM diverged from dense GEMM at {m}x{k}x{n}, sparsity {sparsity}"
        );
    }
}

#[test]
fn spmm_transpose_matches_explicit_transpose() {
    let a_dense = sparse_matrix(6, 10, 0.6, 77);
    let b = DenseMatrix::from_vec(6, 4, pseudo_random_values(24, 88));
    let a_csr = CsrMatrix::from_dense(&a_dense);
    let via_kernel = spmm_transpose(&a_csr, &b);
    let via_dense = a_csr.transpose().to_dense().matmul(&b);
    assert!(via_kernel.max_abs_diff(&via_dense) < 1e-4);
}
