//! Magnitude-pruning primitives.
//!
//! These are the single-process building blocks of the paper's distributed
//! global pruning (Algorithm 1): compute a global magnitude threshold from a
//! target sparsity, and apply keep-masks to parameter shards.  The
//! distributed orchestration (local top-k → gather → global top-k → scatter)
//! lives in `dynmo-dynamics::pruning`, which composes these helpers with the
//! collectives of `dynmo-runtime`.

use crate::topk::kth_largest_magnitude;

/// Compute the magnitude threshold that retains exactly
/// `round((1 - sparsity) * len)` parameters of `values` (global magnitude
/// pruning): every value with `|v| >= threshold` is kept.
///
/// Returns `f32::INFINITY` when the sparsity is 1.0 (prune everything) and
/// `0.0` when it is 0.0 (keep everything).
pub fn global_magnitude_threshold(values: &[f32], sparsity: f64) -> f32 {
    let sparsity = sparsity.clamp(0.0, 1.0);
    if values.is_empty() || sparsity <= 0.0 {
        return 0.0;
    }
    let keep = ((1.0 - sparsity) * values.len() as f64).round() as usize;
    if keep == 0 {
        return f32::INFINITY;
    }
    kth_largest_magnitude(values, keep).unwrap_or(0.0)
}

/// Zero every element of `values` whose magnitude is strictly below
/// `threshold`.  Returns the number of retained (non-zeroed) elements.
pub fn apply_magnitude_threshold(values: &mut [f32], threshold: f32) -> usize {
    let mut kept = 0;
    for v in values.iter_mut() {
        if v.abs() >= threshold && *v != 0.0 {
            kept += 1;
        } else {
            *v = 0.0;
        }
    }
    kept
}

/// Zero every element of `values` whose index is *not* listed in
/// `keep_indices` (the scatter step of Algorithm 1, where each rank receives
/// the indices it must keep).  `keep_indices` must be sorted ascending.
pub fn apply_keep_mask(values: &mut [f32], keep_indices: &[usize]) {
    debug_assert!(keep_indices.windows(2).all(|w| w[0] < w[1]));
    let mut keep_iter = keep_indices.iter().peekable();
    for (i, v) in values.iter_mut().enumerate() {
        match keep_iter.peek() {
            Some(&&k) if k == i => {
                keep_iter.next();
            }
            _ => *v = 0.0,
        }
    }
}

/// Prune `values` in place to the target `sparsity` using global magnitude
/// pruning, returning the achieved sparsity (which may differ slightly from
/// the target due to magnitude ties).
pub fn prune_to_sparsity(values: &mut [f32], sparsity: f64) -> f64 {
    let threshold = global_magnitude_threshold(values, sparsity);
    if threshold == 0.0 {
        // Keep-everything fast path; achieved sparsity is the existing
        // fraction of exact zeros.
        let zeros = values.iter().filter(|v| **v == 0.0).count();
        return zeros as f64 / values.len().max(1) as f64;
    }
    let kept = apply_magnitude_threshold(values, threshold);
    1.0 - kept as f64 / values.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_retains_expected_count() {
        let values = [0.1, -0.9, 0.5, -0.3, 0.7, 0.2];
        // 50% sparsity keeps 3 of 6: |0.9|, |0.7|, |0.5| → threshold 0.5.
        let t = global_magnitude_threshold(&values, 0.5);
        assert_eq!(t, 0.5);
        // 0% sparsity keeps everything.
        assert_eq!(global_magnitude_threshold(&values, 0.0), 0.0);
        // 100% sparsity keeps nothing.
        assert_eq!(global_magnitude_threshold(&values, 1.0), f32::INFINITY);
        // Out-of-range sparsity is clamped.
        assert_eq!(global_magnitude_threshold(&values, -3.0), 0.0);
    }

    #[test]
    fn apply_threshold_zeroes_small_magnitudes() {
        let mut values = vec![0.1, -0.9, 0.5, -0.3, 0.7, 0.2];
        let kept = apply_magnitude_threshold(&mut values, 0.5);
        assert_eq!(kept, 3);
        assert_eq!(values, vec![0.0, -0.9, 0.5, 0.0, 0.7, 0.0]);
    }

    #[test]
    fn apply_keep_mask_preserves_only_listed_indices() {
        let mut values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        apply_keep_mask(&mut values, &[0, 2, 4]);
        assert_eq!(values, vec![1.0, 0.0, 3.0, 0.0, 5.0]);
        // Empty keep list prunes everything.
        let mut values = vec![1.0, 2.0];
        apply_keep_mask(&mut values, &[]);
        assert_eq!(values, vec![0.0, 0.0]);
    }

    #[test]
    fn prune_to_sparsity_hits_target_within_rounding() {
        let mut values: Vec<f32> = (1..=1000).map(|i| i as f32 / 1000.0).collect();
        let achieved = prune_to_sparsity(&mut values, 0.9);
        assert!((achieved - 0.9).abs() < 0.01, "achieved {achieved}");
        let zeros = values.iter().filter(|v| **v == 0.0).count();
        assert_eq!(zeros, 900);
        // Survivors are exactly the largest 100 values.
        assert!(values[900..].iter().all(|v| *v > 0.0));
    }

    #[test]
    fn prune_with_zero_sparsity_reports_existing_zero_fraction() {
        let mut values = vec![0.0, 1.0, 0.0, 2.0];
        let achieved = prune_to_sparsity(&mut values, 0.0);
        assert_eq!(achieved, 0.5);
        assert_eq!(values, vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn empty_input_is_handled() {
        let mut values: Vec<f32> = vec![];
        assert_eq!(global_magnitude_threshold(&values, 0.5), 0.0);
        assert_eq!(prune_to_sparsity(&mut values, 0.5), 0.0);
    }
}
