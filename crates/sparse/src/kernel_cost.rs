//! Calibrated GPU kernel cost models for dense and sparse matrix multiply.
//!
//! The paper (§4.2.2) evaluated GPU SpMM implementations and reports two
//! facts this module reproduces as a cost model:
//!
//! 1. "Sputnik's SpMM consistently outperformed cuSPARSE across all tested
//!    sparsity levels" — because cuSPARSE targets HPC matrices with extreme
//!    (>99%) sparsity, whereas Sputnik's kernels are tailored to the
//!    moderate sparsity of pruned deep-learning weights.
//! 2. "Notably, Sputnik begins to outperform cuBLAS around 75% sparsity."
//!
//! The models below are simple effective-throughput curves chosen so these
//! two crossovers hold; the spmm benchmark (`ABL-SPMM` in DESIGN.md) prints
//! the sweep that verifies them.

use serde::{Deserialize, Serialize};

/// The SpMM/GEMM backend being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpmmBackend {
    /// Dense GEMM via cuBLAS (the baseline that ignores sparsity).
    CublasDense,
    /// cuSPARSE CSR SpMM (efficient only at extreme sparsity).
    Cusparse,
    /// Sputnik SpMM (tailored to deep-learning sparsity levels).
    Sputnik,
}

/// Cost model producing kernel execution times in seconds for an
/// `m × k · k × n` multiplication at a given weight sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCostModel {
    /// Dense matrix-engine throughput in FLOP/s (cuBLAS).
    pub dense_flops: f64,
    /// Peak effective throughput of Sputnik's SpMM on the same device, as a
    /// fraction of the dense throughput (sparse kernels cannot use tensor
    /// cores as effectively).
    pub sputnik_efficiency: f64,
    /// Peak effective throughput of cuSPARSE relative to dense throughput.
    pub cusparse_efficiency: f64,
    /// Fixed per-kernel launch overhead in seconds.
    pub launch_overhead: f64,
}

impl Default for KernelCostModel {
    fn default() -> Self {
        Self::h100()
    }
}

impl KernelCostModel {
    /// An H100-like calibration.  With `sputnik_efficiency = 0.25`, Sputnik's
    /// time `2mnk(1-s)/(0.25·F)` drops below the dense time `2mnk/F` exactly
    /// when `1 - s < 0.25`, i.e. at 75% sparsity — the paper's observation.
    pub fn h100() -> Self {
        KernelCostModel {
            dense_flops: 6.0e14,
            sputnik_efficiency: 0.25,
            cusparse_efficiency: 0.06,
            launch_overhead: 6.0e-6,
        }
    }

    /// Dense GEMM time (independent of sparsity).
    pub fn cublas_time(&self, m: usize, n: usize, k: usize) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        self.launch_overhead + flops / self.dense_flops
    }

    /// Sputnik SpMM time at the given weight sparsity in `[0, 1]`.
    pub fn sputnik_time(&self, m: usize, n: usize, k: usize, sparsity: f64) -> f64 {
        let density = (1.0 - sparsity.clamp(0.0, 1.0)).max(0.0);
        let flops = 2.0 * m as f64 * n as f64 * k as f64 * density;
        // Row-pointer traversal gives Sputnik a small density-independent
        // component proportional to the output size.
        let index_overhead = (m * n) as f64 / self.dense_flops * 4.0;
        self.launch_overhead + index_overhead + flops / (self.dense_flops * self.sputnik_efficiency)
    }

    /// cuSPARSE SpMM time at the given weight sparsity in `[0, 1]`.
    pub fn cusparse_time(&self, m: usize, n: usize, k: usize, sparsity: f64) -> f64 {
        let density = (1.0 - sparsity.clamp(0.0, 1.0)).max(0.0);
        let flops = 2.0 * m as f64 * n as f64 * k as f64 * density;
        // cuSPARSE pays a much larger irregular-access penalty at DL
        // sparsity levels; it only becomes competitive when almost nothing
        // is left to multiply.
        let index_overhead = (m * n) as f64 / self.dense_flops * 24.0;
        self.launch_overhead
            + index_overhead
            + flops / (self.dense_flops * self.cusparse_efficiency)
    }

    /// Time for the given backend.
    pub fn time(&self, backend: SpmmBackend, m: usize, n: usize, k: usize, sparsity: f64) -> f64 {
        match backend {
            SpmmBackend::CublasDense => self.cublas_time(m, n, k),
            SpmmBackend::Cusparse => self.cusparse_time(m, n, k, sparsity),
            SpmmBackend::Sputnik => self.sputnik_time(m, n, k, sparsity),
        }
    }

    /// The fastest backend for a layer at the given sparsity — this is the
    /// choice DynMo's pruning integration makes when deciding whether a
    /// pruned layer should switch from dense to sparse kernels.
    pub fn best_backend(&self, m: usize, n: usize, k: usize, sparsity: f64) -> SpmmBackend {
        let candidates = [
            SpmmBackend::CublasDense,
            SpmmBackend::Cusparse,
            SpmmBackend::Sputnik,
        ];
        *candidates
            .iter()
            .min_by(|a, b| {
                self.time(**a, m, n, k, sparsity)
                    .partial_cmp(&self.time(**b, m, n, k, sparsity))
                    .expect("times are finite")
            })
            .expect("non-empty candidate list")
    }

    /// The sparsity at which Sputnik first beats dense cuBLAS for the given
    /// shape, found by scanning in 1% steps (used by the ABL-SPMM bench).
    pub fn sputnik_crossover_sparsity(&self, m: usize, n: usize, k: usize) -> f64 {
        for pct in 0..=100 {
            let s = pct as f64 / 100.0;
            if self.sputnik_time(m, n, k, s) < self.cublas_time(m, n, k) {
                return s;
            }
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: (usize, usize, usize) = (4096, 4096, 1024);

    #[test]
    fn sputnik_beats_cublas_only_beyond_75_percent_sparsity() {
        let model = KernelCostModel::h100();
        let (m, n, k) = SHAPE;
        assert!(model.sputnik_time(m, n, k, 0.5) > model.cublas_time(m, n, k));
        assert!(model.sputnik_time(m, n, k, 0.7) > model.cublas_time(m, n, k));
        assert!(model.sputnik_time(m, n, k, 0.8) < model.cublas_time(m, n, k));
        assert!(model.sputnik_time(m, n, k, 0.9) < model.cublas_time(m, n, k));
        let crossover = model.sputnik_crossover_sparsity(m, n, k);
        assert!(
            (0.70..=0.80).contains(&crossover),
            "crossover at {crossover}"
        );
    }

    #[test]
    fn sputnik_beats_cusparse_at_deep_learning_sparsities() {
        let model = KernelCostModel::h100();
        let (m, n, k) = SHAPE;
        for pct in [30, 50, 70, 90, 95, 99] {
            let s = pct as f64 / 100.0;
            assert!(
                model.sputnik_time(m, n, k, s) < model.cusparse_time(m, n, k, s),
                "sputnik should beat cusparse at {pct}% sparsity"
            );
        }
    }

    #[test]
    fn best_backend_switches_from_dense_to_sputnik() {
        let model = KernelCostModel::h100();
        let (m, n, k) = SHAPE;
        assert_eq!(model.best_backend(m, n, k, 0.3), SpmmBackend::CublasDense);
        assert_eq!(model.best_backend(m, n, k, 0.9), SpmmBackend::Sputnik);
    }

    #[test]
    fn times_decrease_with_sparsity_for_sparse_backends() {
        let model = KernelCostModel::h100();
        let (m, n, k) = SHAPE;
        let t50 = model.sputnik_time(m, n, k, 0.5);
        let t90 = model.sputnik_time(m, n, k, 0.9);
        let t99 = model.sputnik_time(m, n, k, 0.99);
        assert!(t50 > t90 && t90 > t99);
        // Dense time is flat in sparsity.
        assert_eq!(
            model.time(SpmmBackend::CublasDense, m, n, k, 0.1),
            model.time(SpmmBackend::CublasDense, m, n, k, 0.9)
        );
    }

    #[test]
    fn sparsity_is_clamped() {
        let model = KernelCostModel::h100();
        let (m, n, k) = SHAPE;
        assert_eq!(
            model.sputnik_time(m, n, k, -1.0),
            model.sputnik_time(m, n, k, 0.0)
        );
        assert_eq!(
            model.sputnik_time(m, n, k, 2.0),
            model.sputnik_time(m, n, k, 1.0)
        );
    }

    #[test]
    fn default_is_the_h100_calibration() {
        assert_eq!(KernelCostModel::default(), KernelCostModel::h100());
    }
}
