//! Magnitude top-k selection.
//!
//! Algorithm 1 of the paper (global magnitude pruning) needs, on every rank,
//! the top-k parameters *by magnitude* of the local shard (line 3), and then
//! on rank 0 the global top-k over the gathered candidates (line 6).  These
//! helpers implement that selection with an O(n) average-time quickselect,
//! so pruning a multi-million parameter shard does not require a full sort.

/// Return the magnitudes of the `k` largest-magnitude elements of `values`,
/// in descending order.  If `k >= values.len()` all magnitudes are returned.
pub fn top_k_magnitudes(values: &[f32], k: usize) -> Vec<f32> {
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    let k = k.min(mags.len());
    if k == 0 {
        return Vec::new();
    }
    // Partial selection: after select_nth_unstable the k largest live in the
    // suffix (we select by ascending order on the (len-k)-th element).
    let idx = mags.len() - k;
    mags.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("no NaN magnitudes"));
    let mut top: Vec<f32> = mags[idx..].to_vec();
    top.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaN magnitudes"));
    top
}

/// Return the indices of the `k` largest-magnitude elements of `values`.
/// Ties are broken by preferring lower indices; the result is sorted by
/// index (ascending) so it can be used directly as a keep-mask.
pub fn top_k_indices_by_magnitude(values: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(values.len());
    if k == 0 {
        return Vec::new();
    }
    let mut indices: Vec<usize> = (0..values.len()).collect();
    let idx = values.len() - k;
    indices.select_nth_unstable_by(idx, |&a, &b| {
        let ma = values[a].abs();
        let mb = values[b].abs();
        ma.partial_cmp(&mb)
            .expect("no NaN magnitudes")
            // For equal magnitudes, prefer *higher* index on the small side
            // so the kept (suffix) side prefers lower indices.
            .then_with(|| b.cmp(&a))
    });
    let mut top: Vec<usize> = indices[idx..].to_vec();
    top.sort_unstable();
    top
}

/// The magnitude of the k-th largest element (1-based `k`), i.e. the
/// smallest magnitude that survives a top-k selection.  Returns `None` when
/// `k` is zero or exceeds the number of elements.
pub fn kth_largest_magnitude(values: &[f32], k: usize) -> Option<f32> {
    if k == 0 || k > values.len() {
        return None;
    }
    let top = top_k_magnitudes(values, k);
    top.last().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_magnitudes_returns_descending_absolute_values() {
        let values = [1.0, -5.0, 3.0, -2.0, 0.5];
        assert_eq!(top_k_magnitudes(&values, 3), vec![5.0, 3.0, 2.0]);
        assert_eq!(top_k_magnitudes(&values, 0), Vec::<f32>::new());
        // k larger than the slice returns everything.
        assert_eq!(top_k_magnitudes(&values, 10).len(), 5);
    }

    #[test]
    fn top_k_indices_select_largest_magnitudes() {
        let values = [1.0, -5.0, 3.0, -2.0, 0.5];
        let idx = top_k_indices_by_magnitude(&values, 2);
        assert_eq!(idx, vec![1, 2]); // |-5| and |3|
        let idx = top_k_indices_by_magnitude(&values, 4);
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_prefer_lower_indices() {
        let values = [2.0, -2.0, 2.0, 2.0];
        let idx = top_k_indices_by_magnitude(&values, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn kth_largest_magnitude_matches_sorted_reference() {
        let values: [f32; 6] = [0.1, -0.7, 0.3, 0.9, -0.2, 0.5];
        let mut sorted: Vec<f32> = values.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for k in 1..=values.len() {
            assert_eq!(kth_largest_magnitude(&values, k), Some(sorted[k - 1]));
        }
        assert_eq!(kth_largest_magnitude(&values, 0), None);
        assert_eq!(kth_largest_magnitude(&values, 7), None);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(top_k_magnitudes(&[], 3).is_empty());
        assert!(top_k_indices_by_magnitude(&[], 3).is_empty());
        assert_eq!(kth_largest_magnitude(&[], 1), None);
    }

    #[test]
    fn large_input_selection_matches_full_sort() {
        // Deterministic pseudo-random input, cross-checked against a sort.
        let mut state = 12345u64;
        let values: Vec<f32> = (0..5000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / 1000.0) - 8.0
            })
            .collect();
        let k = 137;
        let top = top_k_magnitudes(&values, k);
        let mut sorted: Vec<f32> = values.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(top, sorted[..k].to_vec());
    }
}
