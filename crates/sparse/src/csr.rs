//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the storage format the paper adopts for pruned weights: "a common
//! choice is the compressed sparse row (CSR) format, which necessitates
//! replacing dense matrix multiplications (DMM) with sparse equivalents
//! (SpMM)" (§4.2.2).  The row offsets and column indices are exactly the
//! extra data DynMo must migrate between GPUs when a pruned layer moves
//! stages, which is why the migration cost accounting includes them.

use serde::{Deserialize, Serialize};

use crate::dense::DenseMatrix;

/// A CSR-format sparse `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build a CSR matrix from raw parts.  Panics on structurally invalid
    /// input (wrong `row_ptr` length, out-of-range column indices, or
    /// non-monotonic row offsets).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(col_idx.len(), values.len(), "one value per column index");
        assert_eq!(
            *row_ptr.last().unwrap_or(&0),
            values.len(),
            "last row_ptr entry must equal nnz"
        );
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be non-decreasing");
        }
        for &c in &col_idx {
            assert!((c as usize) < cols, "column index {c} out of range");
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert a dense matrix to CSR, dropping exact zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total
    }

    /// Row offsets (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, one per stored value.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The non-zero entries of row `r` as `(column, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        self.col_idx[start..end]
            .iter()
            .zip(self.values[start..end].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Total bytes needed to store the matrix in CSR form: 4-byte values,
    /// 4-byte column indices, and 8-byte row offsets.  This is the quantity
    /// DynMo's migration cost model charges when moving a pruned layer
    /// between workers.
    pub fn storage_bytes(&self) -> u64 {
        (self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 8) as u64
    }

    /// Transpose (CSR → CSR of the transposed matrix).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let mut row_ptr = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            row_ptr[c + 1] = row_ptr[c] + counts[c];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i] as usize;
                let pos = next[c];
                col_idx[pos] = r as u32;
                values[pos] = self.values[i];
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> DenseMatrix {
        DenseMatrix::from_vec(
            3,
            4,
            vec![
                1.0, 0.0, 0.0, 2.0, //
                0.0, 0.0, 0.0, 0.0, //
                3.0, 0.0, 4.0, 0.0,
            ],
        )
    }

    #[test]
    fn dense_round_trip_preserves_values() {
        let d = sample_dense();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn sparsity_is_fraction_of_zeros() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        assert!((csr.sparsity() - 8.0 / 12.0).abs() < 1e-12);
        let empty = CsrMatrix::from_dense(&DenseMatrix::zeros(0, 0));
        assert_eq!(empty.sparsity(), 0.0);
    }

    #[test]
    fn row_entries_iterates_in_column_order() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let row0: Vec<_> = csr.row_entries(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (3, 2.0)]);
        let row1: Vec<_> = csr.row_entries(1).collect();
        assert!(row1.is_empty());
    }

    #[test]
    fn transpose_round_trip() {
        let d = sample_dense();
        let csr = CsrMatrix::from_dense(&d);
        let t = csr.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        // Transposing twice returns the original dense content.
        assert_eq!(t.transpose().to_dense(), d);
        // Spot-check an element.
        assert_eq!(t.to_dense().get(3, 0), 2.0);
    }

    #[test]
    fn storage_bytes_counts_values_indices_and_offsets() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        // 4 values*4 + 4 col_idx*4 + 4 row_ptr*8 = 16 + 16 + 32 = 64.
        assert_eq!(csr.storage_bytes(), 64);
    }

    #[test]
    fn from_parts_validates_structure() {
        // Valid.
        let ok = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(ok.nnz(), 2);
        // Invalid row_ptr length.
        let bad = std::panic::catch_unwind(|| {
            CsrMatrix::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0])
        });
        assert!(bad.is_err());
        // Out-of-range column index.
        let bad = std::panic::catch_unwind(|| {
            CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 2.0])
        });
        assert!(bad.is_err());
        // Non-monotonic row_ptr.
        let bad = std::panic::catch_unwind(|| {
            CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0])
        });
        assert!(bad.is_err());
    }

    #[test]
    fn fully_dense_and_fully_sparse_edge_cases() {
        let full = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let csr = CsrMatrix::from_dense(&full);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.sparsity(), 0.0);

        let empty = DenseMatrix::zeros(2, 2);
        let csr = CsrMatrix::from_dense(&empty);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 1.0);
        assert_eq!(csr.to_dense(), empty);
    }
}
