//! Sparse × dense matrix multiplication (SpMM).
//!
//! This is the CPU analogue of the Sputnik SpMM kernel the paper binds into
//! PyTorch: it computes `C = A · B` where `A` is CSR and `B` is dense, with
//! the row loop parallelized by rayon (one output row per task, the same
//! decomposition Sputnik uses per thread block).

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// Compute `A · B` where `A` is sparse (CSR) and `B` is dense.
pub fn spmm(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions must agree: {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let mut out = vec![0.0f32; a.rows() * n];
    out.par_chunks_mut(n).enumerate().for_each(|(r, out_row)| {
        for (k, v) in a.row_entries(r) {
            let b_row = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += v * bv;
            }
        }
    });
    DenseMatrix::from_vec(a.rows(), n, out)
}

/// Compute `Aᵀ · B` where `A` is sparse (CSR) and `B` is dense — the kernel
/// shape needed by the backward pass of a pruned linear layer.
pub fn spmm_transpose(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "Aᵀ·B requires A.rows == B.rows: {} vs {}",
        a.rows(),
        b.rows()
    );
    // Materializing the transpose keeps the hot loop identical to `spmm`.
    spmm(&a.transpose(), b)
}

/// FLOPs performed by an SpMM of the given shape and nnz count (2 FLOPs per
/// stored value per output column).
pub fn spmm_flops(nnz: usize, n_cols: usize) -> f64 {
    2.0 * nnz as f64 * n_cols as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_dense(rows: usize, cols: usize, sparsity: f64, seed: u64) -> DenseMatrix {
        // Small deterministic LCG so the test does not need the rand crate.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let keep = next() > sparsity * 2.0;
            let value = next() - 1.0;
            data.push(if keep { value as f32 } else { 0.0 });
        }
        DenseMatrix::from_vec(rows, cols, data)
    }

    #[test]
    fn spmm_matches_dense_reference_on_random_matrices() {
        for &(m, k, n, s) in &[
            (8usize, 6usize, 5usize, 0.3f64),
            (17, 23, 9, 0.45),
            (32, 32, 32, 0.4),
        ] {
            let a_dense = random_dense(m, k, s, 42);
            let b = random_dense(k, n, 0.0, 7);
            let a_csr = CsrMatrix::from_dense(&a_dense);
            let via_sparse = spmm(&a_csr, &b);
            let via_dense = a_dense.matmul(&b);
            assert!(
                via_sparse.max_abs_diff(&via_dense) < 1e-4,
                "mismatch for shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn spmm_transpose_matches_dense_reference() {
        let a_dense = random_dense(12, 7, 0.4, 3);
        let b = random_dense(12, 5, 0.0, 11);
        let a_csr = CsrMatrix::from_dense(&a_dense);
        let via_sparse = spmm_transpose(&a_csr, &b);
        // Dense reference: Aᵀ · B computed by transposing A by hand.
        let mut at = DenseMatrix::zeros(7, 12);
        for r in 0..12 {
            for c in 0..7 {
                at.set(c, r, a_dense.get(r, c));
            }
        }
        let via_dense = at.matmul(&b);
        assert!(via_sparse.max_abs_diff(&via_dense) < 1e-4);
    }

    #[test]
    fn empty_sparse_matrix_produces_zero_output() {
        let a = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 4));
        let b = random_dense(4, 3, 0.0, 5);
        let c = spmm(&a, &b);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn spmm_rejects_mismatched_shapes() {
        let a = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 4));
        let b = DenseMatrix::zeros(3, 3);
        let _ = spmm(&a, &b);
    }

    #[test]
    fn flop_count_is_proportional_to_nnz() {
        assert_eq!(spmm_flops(0, 10), 0.0);
        assert_eq!(spmm_flops(100, 10), 2000.0);
        assert_eq!(spmm_flops(200, 10), 4000.0);
    }
}
