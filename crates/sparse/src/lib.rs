//! # dynmo-sparse
//!
//! Sparse-tensor support for the gradual-pruning experiments of the DynMo
//! paper (§4.2.2).
//!
//! The paper's pruning path stores pruned weights in compressed sparse row
//! (CSR) format and replaces dense matrix multiplications (DMM) with sparse
//! ones (SpMM), using PyTorch bindings to Sputnik's CUDA kernels because
//! "Sputnik begins to outperform cuBLAS around 75% sparsity".  This crate
//! provides:
//!
//! * a real [`csr::CsrMatrix`] data structure with dense round-tripping and
//!   a [`spmm`] CPU kernel (rayon-parallel) so the pruning pipeline operates
//!   on actual sparse data,
//! * magnitude-based selection utilities ([`topk`], [`prune`]) used by the
//!   distributed global-pruning algorithm (Algorithm 1), and
//! * calibrated *kernel cost models* ([`kernel_cost`]) for cuBLAS dense
//!   GEMM, cuSPARSE SpMM, and Sputnik SpMM, reproducing the crossover
//!   behaviour the paper reports (Sputnik wins beyond ~75% sparsity; it
//!   beats cuSPARSE across deep-learning sparsity levels).

#![warn(missing_docs)]

pub mod csr;
pub mod dense;
pub mod kernel_cost;
pub mod prune;
pub mod spmm;
pub mod topk;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use kernel_cost::{KernelCostModel, SpmmBackend};
pub use prune::{apply_keep_mask, global_magnitude_threshold, prune_to_sparsity};
pub use spmm::{spmm, spmm_flops, spmm_transpose};
pub use topk::{top_k_indices_by_magnitude, top_k_magnitudes};
