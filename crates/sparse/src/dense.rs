//! Dense row-major matrices and a parallel GEMM reference kernel.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Create a matrix from row-major data; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DenseMatrix { rows, cols, data }
    }

    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self.data[r * self.cols + c] = value;
    }

    /// Borrow the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix multiplication `self × rhs`, parallelized over rows with
    /// rayon.  This is the reference against which the sparse kernels are
    /// validated.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let n = rhs.cols;
        let mut out = vec![0.0f32; self.rows * n];
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        });
        DenseMatrix::from_vec(self.rows, n, out)
    }

    /// Maximum absolute element-wise difference to another matrix of the
    /// same shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.data().len(), 6);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_rejects_wrong_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn small_matmul_matches_hand_computation() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_matmul_shapes() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0; 6]);
        let b = DenseMatrix::from_vec(3, 4, vec![2.0; 12]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        assert!(c.data().iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = DenseMatrix::from_vec(1, 3, vec![1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
