//! Criterion bench behind the §4.2.2 SpMM study (ABL-SPMM): real CPU CSR
//! SpMM vs dense GEMM across sparsity levels.  The crossover sparsity (where
//! the sparse kernel overtakes the dense one) mirrors the Sputnik-vs-cuBLAS
//! crossover the paper reports at ≈75%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_sparse::{spmm, CsrMatrix, DenseMatrix};

fn random_dense(rows: usize, cols: usize, sparsity: f64, seed: u64) -> DenseMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if next() < sparsity {
                0.0
            } else {
                (next() - 0.5) as f32
            }
        })
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_vs_dense");
    group.sample_size(10);
    let (m, k, n) = (512usize, 512usize, 128usize);
    let b_mat = random_dense(k, n, 0.0, 7);
    for &pct in &[0usize, 50, 75, 90, 99] {
        let sparsity = pct as f64 / 100.0;
        let a_dense = random_dense(m, k, sparsity, 42 + pct as u64);
        let a_csr = CsrMatrix::from_dense(&a_dense);
        group.bench_with_input(BenchmarkId::new("dense_gemm", pct), &a_dense, |bench, a| {
            bench.iter(|| a.matmul(&b_mat));
        });
        group.bench_with_input(BenchmarkId::new("csr_spmm", pct), &a_csr, |bench, a| {
            bench.iter(|| spmm(a, &b_mat));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
