//! Criterion bench behind Figure 3: end-to-end (simulated) training runs at
//! smoke scale, static baseline vs the DynMo variants, for two
//! representative cases.  Reported criterion times are the harness cost of
//! the full run; the interesting output (tokens/sec, speedups) comes from
//! the `fig3_throughput` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_bench::{run_configuration, BalancerKind, CaseConfig, DynamicCase, ExperimentScale};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_end_to_end_smoke");
    group.sample_size(10);
    for case in [DynamicCase::EarlyExit, DynamicCase::MoeMixtral] {
        for kind in [
            BalancerKind::StaticMegatron,
            BalancerKind::PartitionByTime,
            BalancerKind::DiffusionByTime,
        ] {
            let config = CaseConfig::new(case, 24, ExperimentScale::Smoke);
            group.bench_with_input(
                BenchmarkId::new(case.label(), kind.label()),
                &(config, kind),
                |b, (config, kind)| {
                    b.iter(|| run_configuration(config, *kind));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
