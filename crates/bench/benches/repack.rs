//! Criterion bench behind Figure 4: the cost of one re-packing decision
//! (Algorithm 2) and of building the resulting migration plan, across worker
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_core::migration::MigrationPlan;
use dynmo_core::repack::{plan_repack, RepackConfig};
use dynmo_pipeline::{LayerLoad, StageAssignment};

fn loads(layers: usize) -> Vec<LayerLoad> {
    (0..layers)
        .map(|i| LayerLoad {
            layer_id: i,
            fwd_time: 0.01,
            bwd_time: 0.02,
            param_count: 1_000_000,
            static_bytes: 8_000_000,
            activation_bytes: 500_000,
            migration_bytes: 8_000_000,
        })
        .collect()
}

fn bench_repack(c: &mut Criterion) {
    let mut group = c.benchmark_group("repack_decision");
    for &workers in &[8usize, 24, 48] {
        let layers = workers * 4;
        let assignment = StageAssignment::uniform(layers, workers);
        let layer_loads = loads(layers);
        let inflight = vec![4usize; workers];
        let config = RepackConfig {
            max_memory: 200_000_000,
            target_num_workers: 2,
            utilization_cap: 0.9,
        };
        group.bench_with_input(
            BenchmarkId::new("plan_repack", workers),
            &assignment,
            |b, assignment| {
                b.iter(|| plan_repack(assignment, &layer_loads, &inflight, &config));
            },
        );
        let plan = plan_repack(&assignment, &layer_loads, &inflight, &config);
        group.bench_with_input(
            BenchmarkId::new("migration_plan", workers),
            &plan.new_assignment,
            |b, new_assignment| {
                b.iter(|| MigrationPlan::between(&assignment, new_assignment, &layer_loads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repack);
criterion_main!(benches);
