//! Criterion bench pinning the event-driven pipeline simulator against the
//! legacy busy-poll reference at paper scale (`p = 32`, `m = 512` — the
//! largest grid corner of `pipeline_sweep`).  The event engine's
//! `O(n + e)` bound (Kahn relaxation over a CSR DAG) is what keeps
//! paper-scale sweeps cheap and is what this bench regression-guards;
//! running both engines on the identical input keeps the comparison
//! honest — the reference loop's simple arrays make it fast on friendly
//! schedules, while the engine's bound holds on every schedule (the
//! reference rescans, so adversarial dependency patterns and the
//! interleaved/zero-bubble schedules are engine-only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_model::{ClusterConfig, DeviceSpec, ModelConfig};
use dynmo_pipeline::load::StageLoad;
use dynmo_pipeline::{CommCostModel, PipelineSimulator, ScheduleKind};

const PAPER_STAGES: usize = 32;
const PAPER_MICROBATCHES: usize = 512;

fn paper_scale_loads() -> Vec<StageLoad> {
    (0..PAPER_STAGES)
        .map(|s| {
            // Mild imbalance so the engines exercise real dependency
            // stalls, not the degenerate balanced fast path.
            let skew = 1.0 + 0.3 * (s as f64 / (PAPER_STAGES - 1) as f64);
            StageLoad {
                fwd_time: 2.0e-3 * skew,
                bwd_time: 4.0e-3 * skew,
                param_count: 12 * 1024 * 1024,
                static_bytes: 0,
                activation_bytes: 0,
                boundary_bytes: 0,
                num_layers: 1,
            }
        })
        .collect()
}

fn bench_event_engine(c: &mut Criterion) {
    let model = ModelConfig::gpt(32);
    let cluster = ClusterConfig::homogeneous(8, PAPER_STAGES, 1, DeviceSpec::h100_sxm5());
    let loads = paper_scale_loads();
    let mut group = c.benchmark_group("pipeline_simulate_p32_m512");
    for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
        let simulator = PipelineSimulator::new(CommCostModel::new(cluster.clone()), schedule);
        group.bench_with_input(
            BenchmarkId::new("event_engine", schedule.label()),
            &loads,
            |b, loads| {
                b.iter(|| simulator.simulate(&model, loads, PAPER_MICROBATCHES));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", schedule.label()),
            &loads,
            |b, loads| {
                b.iter(|| simulator.simulate_reference(&model, loads, PAPER_MICROBATCHES));
            },
        );
    }
    // The advanced schedules only exist on the event engine; keep their
    // paper-scale cost visible alongside.
    for schedule in [
        ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
        ScheduleKind::ZeroBubbleH1,
    ] {
        let simulator = PipelineSimulator::new(CommCostModel::new(cluster.clone()), schedule);
        group.bench_with_input(
            BenchmarkId::new("event_engine", schedule.label()),
            &loads,
            |b, loads| {
                b.iter(|| simulator.simulate(&model, loads, PAPER_MICROBATCHES));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_engine);
criterion_main!(benches);
