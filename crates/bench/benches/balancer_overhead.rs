//! Criterion bench behind Figure 4 (right): the cost of one balancing
//! decision (the "algorithm" slice of the overhead breakdown) for the
//! partition and diffusion balancers across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_core::balancer::{
    BalanceObjective, BalanceRequest, DiffusionBalancer, LoadBalancer, PartitionBalancer,
};
use dynmo_pipeline::LayerLoad;

fn synthetic_loads(layers: usize) -> Vec<LayerLoad> {
    (0..layers)
        .map(|i| {
            let t = 0.5 + ((i * 2654435761) % 997) as f64 / 997.0 * 2.5;
            LayerLoad {
                layer_id: i,
                fwd_time: t / 3.0,
                bwd_time: 2.0 * t / 3.0,
                param_count: (t * 1.0e6) as u64,
                static_bytes: (t * 1.6e7) as u64,
                activation_bytes: 1_000,
                migration_bytes: (t * 1.6e7) as u64,
            }
        })
        .collect()
}

fn bench_balancers(c: &mut Criterion) {
    let mut group = c.benchmark_group("balancing_decision");
    for &stages in &[8usize, 24, 48] {
        let loads = synthetic_loads(stages * 4);
        let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime);
        let partition = PartitionBalancer::new();
        let diffusion = DiffusionBalancer::new();
        group.bench_with_input(
            BenchmarkId::new("partition", stages),
            &request,
            |b, request| b.iter(|| partition.rebalance(request)),
        );
        group.bench_with_input(
            BenchmarkId::new("diffusion", stages),
            &request,
            |b, request| b.iter(|| diffusion.rebalance(request)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_balancers);
criterion_main!(benches);
