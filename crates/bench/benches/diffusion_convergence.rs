//! Criterion bench behind the Lemma 2 study: time (and rounds) for the
//! diffusion balancer to converge as the worker count grows.  The Lemma 2
//! bound itself is asserted by the `lemma2_convergence` binary and the
//! balancer's property tests; this bench tracks the wall-clock scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynmo_core::balancer::{BalanceObjective, BalanceRequest, DiffusionBalancer, LoadBalancer};
use dynmo_pipeline::LayerLoad;

fn skewed_loads(layers: usize, seed: u64) -> Vec<LayerLoad> {
    (0..layers)
        .map(|i| {
            let x = ((i as u64 + 1).wrapping_mul(seed).wrapping_mul(0x9E3779B9)) % 1000;
            let t = 0.1 + x as f64 / 300.0;
            LayerLoad {
                layer_id: i,
                fwd_time: t / 3.0,
                bwd_time: 2.0 * t / 3.0,
                param_count: (t * 1.0e6) as u64,
                static_bytes: (t * 1.6e7) as u64,
                activation_bytes: 1_000,
                migration_bytes: (t * 1.6e7) as u64,
            }
        })
        .collect()
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion_convergence");
    for &workers in &[4usize, 16, 64] {
        let loads = skewed_loads(workers * 4, 11);
        let request = BalanceRequest::new(&loads, workers, u64::MAX, BalanceObjective::ByTime);
        let balancer = DiffusionBalancer::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &request,
            |b, request| b.iter(|| balancer.rebalance(request)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
