//! Fleet sweep — the closed-loop fleet controller vs a static GPU split.
//!
//! One shared pool of GPUs must host an elastic training job and two
//! serving tenants whose diurnal traffic peaks are half a day out of
//! phase.  The sweep compares two ways of carving the pool:
//!
//! * **static split** — the classic provisioning answer: the trainer gets
//!   a fixed mid-size world, each tenant a fixed replica fleet sized for
//!   its peak-ish load.  GPUs idle in every trough and queues build at
//!   every crest.
//! * **closed loop** — [`dynmo_fleet::FleetController`]: the trainer
//!   starts with almost the whole pool and the controller steals GPUs at
//!   chunk boundaries (checkpoint-shrink-resume) when a tenant's windowed
//!   p99 TTFT breaches, returning them in troughs.
//!
//! The margin is reported on **both** axes: aggregate SLO attainment
//! inside each tenant's peak window (closed loop should win because it
//! surges replicas exactly there), and training throughput loss relative
//! to an undisturbed run at the closed loop's initial world (closed loop
//! should lose less because it only gives GPUs up while a peak lasts).
//! The undisturbed reference run doubles as the trajectory pin: every
//! closed-loop chunk boundary before the first steal must carry a
//! bit-identical trajectory checksum.
//!
//! Everything runs on simulated clocks, so the sweep is bit-reproducible
//! across runs and rayon thread counts — CI diffs the margin lines of a
//! `DYNMO_THREADS=1` run against a host-parallel run byte-for-byte.

use dynmo_dynamics::{DynamismEngine, EarlyExitEngine, EarlyExitMethod};
use dynmo_fleet::{
    ElasticTrainer, ElasticTrainerSpec, FleetActionKind, FleetConfig, FleetController, FleetReport,
    TenantSpec,
};
use dynmo_model::{DeviceSpec, Model, ModelPreset};
use dynmo_resilience::CheckpointCostModel;
use dynmo_serve::{
    serve, ArrivalProcess, LengthModel, RequestTrace, ServingConfig, ServingReport, SloTarget,
};
use serde::{Deserialize, Serialize};

use crate::scale::ExperimentScale;

/// GPUs in the shared pool.
pub const FLEET_GPUS: usize = 16;
/// Pipeline stages (GPUs) per serving replica.
pub const REPLICA_STAGES: usize = 2;
/// Trainer world the closed loop starts from (and the undisturbed
/// reference runs at).
pub const CLOSED_TRAINER_WORLD: usize = 12;
/// Fixed trainer world of the static split.
pub const STATIC_TRAINER_WORLD: usize = 8;
/// Fixed replicas per tenant in the static split
/// (`2 tenants × 2 replicas × 2 stages + 8 trainer GPUs = 16`).
pub const STATIC_REPLICAS: usize = 2;

/// Scenario knobs derived from the experiment scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepConfig {
    /// Length of the simulated day (one full diurnal period), seconds.
    pub day: f64,
    /// Iterations the training job would run to completion (sized so it
    /// is still training when the day ends).
    pub trainer_iterations: u64,
    /// Mean request rate of the latency-sensitive chat tenant, whose
    /// diurnal swing troughs at the start of the day and crests mid-day.
    pub chat_mean_rate: f64,
    /// Steady request rate of the background batch tenant.
    pub batch_mean_rate: f64,
    /// Chat's diurnal swing amplitude.
    pub amplitude: f64,
    /// Base seed for traces and the dynamism engine.
    pub seed: u64,
}

impl FleetSweepConfig {
    /// The scenario at a given scale: the day stretches with scale, the
    /// traffic shape stays the same.
    pub fn for_scale(scale: ExperimentScale) -> Self {
        let day = match scale {
            ExperimentScale::Smoke => 600.0,
            ExperimentScale::Default => 1200.0,
            ExperimentScale::Paper => 3600.0,
        };
        FleetSweepConfig {
            day,
            trainer_iterations: scale.iterations(),
            chat_mean_rate: 2.0,
            batch_mean_rate: 1.0,
            amplitude: 0.8,
            seed: 17,
        }
    }
}

/// One tenant's outcome inside a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Requests in the tenant's trace.
    pub requests: usize,
    /// Requests arriving inside the tenant's peak window.
    pub peak_requests: usize,
    /// SLO attainment over the peak window only.
    pub peak_attainment: f64,
    /// SLO attainment over the whole day.
    pub attainment: f64,
    /// p99 time-to-first-token over the whole day, seconds.
    pub p99_ttft: f64,
}

/// One provisioning policy's outcome over the shared day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCellReport {
    /// `"closed-loop"` or `"static-split"`.
    pub label: String,
    /// Per-tenant outcomes, chat first.
    pub tenants: Vec<FleetTenantOutcome>,
    /// Request-weighted SLO attainment across both tenants' peak windows.
    pub peak_attainment: f64,
    /// Request-weighted SLO attainment over the whole day.
    pub attainment: f64,
    /// Training throughput, tokens per simulated second.
    pub trainer_tokens_per_second: f64,
    /// Throughput loss vs the undisturbed reference world, in `[0, 1]`.
    pub training_loss: f64,
    /// Iterations the trainer completed during the cell.
    pub trainer_iterations: u64,
    /// Time-weighted mean trainer world size.
    pub trainer_mean_world: f64,
    /// GPU steals from the trainer (0 for the static split).
    pub steals: u64,
    /// GPU returns to the trainer (0 for the static split).
    pub returns: u64,
    /// Tenant preemptions (0 for the static split).
    pub preemptions: u64,
    /// Checkpoint-shrink-resume cycles the trainer absorbed.
    pub trainer_rescales: u64,
    /// Checkpoint-write seconds those cycles charged.
    pub trainer_rescale_cost: f64,
}

/// The full sweep: both cells, the reference run, and the margins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepReport {
    /// Scale the sweep ran at.
    pub scale: String,
    /// Scenario knobs.
    pub config: FleetSweepConfig,
    /// Undisturbed training throughput at [`CLOSED_TRAINER_WORLD`]
    /// (tokens per simulated second) — the loss baseline.
    pub reference_tokens_per_second: f64,
    /// The closed-loop fleet cell.
    pub closed: FleetCellReport,
    /// The static-split cell.
    pub static_split: FleetCellReport,
    /// Peak-window attainment advantage of the closed loop, percentage
    /// points (positive = closed loop better).
    pub peak_attainment_margin_pp: f64,
    /// Training-loss advantage of the closed loop, percentage points
    /// (positive = closed loop loses less throughput).
    pub training_loss_margin_pp: f64,
    /// Closed-loop chunk boundaries compared against the undisturbed
    /// reference trajectory (those at or before the first steal).
    pub pinned_boundaries: usize,
    /// Whether every compared boundary carried a bit-identical trajectory
    /// checksum.
    pub trajectory_pinned: bool,
    /// The closed-loop controller's full decision timeline.
    pub closed_timeline: Vec<dynmo_fleet::FleetAction>,
}

impl FleetSweepConfig {
    fn validate(&self) -> Result<(), String> {
        if !self.day.is_finite() || self.day <= 0.0 {
            return Err("day must be positive and finite".into());
        }
        if self.trainer_iterations == 0 {
            return Err("trainer_iterations must be positive".into());
        }
        if !self.chat_mean_rate.is_finite()
            || self.chat_mean_rate <= 0.0
            || !self.batch_mean_rate.is_finite()
            || self.batch_mean_rate <= 0.0
        {
            return Err("tenant mean rates must be positive".into());
        }
        if !(0.0..1.0).contains(&self.amplitude) {
            return Err("amplitude must be in [0, 1)".into());
        }
        Ok(())
    }
}

fn trainer_spec(iterations: u64) -> ElasticTrainerSpec {
    ElasticTrainerSpec {
        // 60 layers so every world the controller visits (8, 10, 12) has a
        // strictly smaller max stage (8, 6, 5 layers): each stolen or
        // returned GPU pair moves training throughput, unlike a 24-layer
        // job where worlds 8 and 10 share a 3-layer critical stage.
        preset: ModelPreset::Gpt { layers: 60 },
        device: DeviceSpec::test_device(16 * 1024 * 1024 * 1024),
        gpus_per_node: 4,
        total_iterations: iterations,
        segment_iterations: 1,
        num_microbatches: 8,
        allreduce_overlap: 0.8,
        min_workers: 2,
        cost_model: CheckpointCostModel::default(),
    }
}

fn trainer_engine(seed: u64) -> Box<dyn DynamismEngine> {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 60 });
    Box::new(EarlyExitEngine::new(&model, EarlyExitMethod::Calm, seed))
}

fn tenant_config(name: &str, replicas: usize, max_replicas: usize, ttft: f64) -> ServingConfig {
    let mut config = ServingConfig::small(replicas);
    config.tenant = name.to_string();
    config.stages = REPLICA_STAGES;
    config.microbatches = 2;
    config.max_replicas = max_replicas;
    config.slo = SloTarget { ttft, tpot: 0.25 };
    config
}

/// Both tenants' traces over one shared day.  The raw diurnal process
/// crests at `day/4`; phase-shifting the chat trace by a quarter day puts
/// its trough at the day boundary and its crest mid-day, so the fleet
/// starts quiet, tightens into the crunch, and relaxes again — the cycle
/// a return-to-trainer policy exists for.  The batch tenant is a steady
/// background load.
fn traces(config: &FleetSweepConfig) -> (RequestTrace, RequestTrace) {
    let chat = RequestTrace::generate(
        &ArrivalProcess::Diurnal {
            mean_rate: config.chat_mean_rate,
            amplitude: config.amplitude,
            period: config.day,
        },
        config.day,
        &LengthModel::chat_default(),
        config.seed,
    )
    .time_offset(config.day / 4.0, config.day);
    let batch = RequestTrace::generate(
        &ArrivalProcess::Poisson {
            rate: config.batch_mean_rate,
        },
        config.day,
        &LengthModel::chat_default(),
        config.seed ^ 0x9e37_79b9,
    );
    (chat, batch)
}

/// The fleet's crunch window: where the (phase-shifted) chat rate sits in
/// the top of its swing (`sin ≥ 1/2`), i.e. the middle third of the day.
/// Both tenants' peak attainment is measured here — it is exactly when
/// the closed loop is most tempted to rob one tenant to feed the other.
fn peak_window(day: f64) -> (f64, f64) {
    (day / 3.0, 2.0 * day / 3.0)
}

/// `(met, total)` over the completed requests that arrived in `[lo, hi)`.
fn window_attainment(report: &ServingReport, lo: f64, hi: f64) -> (usize, usize) {
    let mut met = 0;
    let mut total = 0;
    for record in &report.records {
        if record.arrival >= lo && record.arrival < hi {
            total += 1;
            if report.slo.met_by(record) {
                met += 1;
            }
        }
    }
    (met, total)
}

fn tenant_outcome(report: &ServingReport, day: f64) -> FleetTenantOutcome {
    let (lo, hi) = peak_window(day);
    let (met, total) = window_attainment(report, lo, hi);
    FleetTenantOutcome {
        tenant: report.tenant.clone(),
        requests: report.requests,
        peak_requests: total,
        peak_attainment: if total == 0 {
            1.0
        } else {
            met as f64 / total as f64
        },
        attainment: if report.completed == 0 {
            1.0
        } else {
            report.slo_met as f64 / report.completed as f64
        },
        p99_ttft: report.ttft.p99,
    }
}

fn aggregate(outcomes: &[FleetTenantOutcome]) -> (f64, f64) {
    let peak_total: usize = outcomes.iter().map(|o| o.peak_requests).sum();
    let peak_met: f64 = outcomes
        .iter()
        .map(|o| o.peak_attainment * o.peak_requests as f64)
        .sum();
    let total: usize = outcomes.iter().map(|o| o.requests).sum();
    let met: f64 = outcomes
        .iter()
        .map(|o| o.attainment * o.requests as f64)
        .sum();
    (
        if peak_total == 0 {
            1.0
        } else {
            peak_met / peak_total as f64
        },
        if total == 0 { 1.0 } else { met / total as f64 },
    )
}

/// Run a solo (undisturbed) training job at `world` until the simulated
/// day ends, returning throughput and the chunk-boundary checksum history.
fn solo_trainer(config: &FleetSweepConfig, world: usize) -> (f64, Vec<(u64, u64)>) {
    let mut job = ElasticTrainer::new(
        trainer_spec(config.trainer_iterations),
        trainer_engine(config.seed),
        world,
    )
    .expect("solo trainer spec is valid");
    job.advance_to(config.day).expect("solo training runs");
    (job.tokens_per_second(), job.checksum_history().to_vec())
}

/// Time-weighted mean trainer world over a closed-loop run.
fn mean_trainer_world(report: &FleetReport, initial: usize, check_interval: f64) -> f64 {
    let end = report.ticks as f64 * check_interval;
    if end <= 0.0 {
        return initial as f64;
    }
    let mut acc = 0.0;
    let mut prev_t = 0.0;
    let mut prev_w = initial as f64;
    for action in &report.timeline {
        if matches!(
            action.kind,
            FleetActionKind::Steal { .. } | FleetActionKind::Return
        ) {
            acc += prev_w * (action.time - prev_t);
            prev_t = action.time;
            prev_w = action.trainer_workers as f64;
        }
    }
    acc += prev_w * (end - prev_t);
    acc / end
}

/// Controller policy used by the closed-loop cell.
pub fn fleet_policy(config: &FleetSweepConfig) -> FleetConfig {
    FleetConfig {
        total_gpus: FLEET_GPUS,
        check_interval: 5.0,
        ttft_window: 30.0,
        breach_ttft_factor: 1.0,
        gateway_age_limit: 4.0,
        relax_ttft_factor: 0.35,
        // One 2-stage replica comfortably serves ~1 request/second; a
        // shrink that would push the survivors past that is a flap, not a
        // trough.
        shrink_max_load: 1.0,
        action_cooldown: 10.0,
        // Returns must wait for a genuine trough, not a lull: every return
        // the controller later regrets costs the trainer a re-steal's
        // checkpoint write plus a rebalance migration, so the quiet period
        // scales with the day.
        return_cooldown: (config.day / 10.0).clamp(30.0, 240.0),
        provision_delay: 2.0,
        trainer_min_workers: 8,
        trainer_max_workers: CLOSED_TRAINER_WORLD,
        max_ticks: ((config.day / 5.0) as u64).saturating_mul(20).max(1_000),
    }
}

/// Run the closed-loop cell: the fleet controller arbitrating the pool.
pub fn run_closed_cell(
    config: &FleetSweepConfig,
    reference_tps: f64,
) -> (FleetCellReport, FleetReport) {
    let (chat, batch) = traces(config);
    let trainer = ElasticTrainer::new(
        trainer_spec(config.trainer_iterations),
        trainer_engine(config.seed),
        CLOSED_TRAINER_WORLD,
    )
    .expect("closed-loop trainer spec is valid");
    let policy = fleet_policy(config);
    let check_interval = policy.check_interval;
    let controller = FleetController::new(
        policy,
        trainer,
        CLOSED_TRAINER_WORLD,
        vec![
            TenantSpec {
                config: tenant_config("chat", 1, 4, 2.0),
                trace: chat,
                priority: 3,
                min_replicas: 1,
            },
            TenantSpec {
                config: tenant_config("batch", 1, 3, 6.0),
                trace: batch,
                priority: 1,
                min_replicas: 1,
            },
        ],
    )
    .expect("closed-loop fleet is well-formed");
    let report = controller.run().expect("the fleet run upholds invariants");

    let outcomes = vec![
        tenant_outcome(&report.serving[0], config.day),
        tenant_outcome(&report.serving[1], config.day),
    ];
    let (peak, whole) = aggregate(&outcomes);
    let tps = report.trainer_tokens_per_second;
    let cell = FleetCellReport {
        label: "closed-loop".into(),
        tenants: outcomes,
        peak_attainment: peak,
        attainment: whole,
        trainer_tokens_per_second: tps,
        training_loss: 1.0 - tps / reference_tps,
        trainer_iterations: report.trainer_iterations,
        trainer_mean_world: mean_trainer_world(&report, CLOSED_TRAINER_WORLD, check_interval),
        steals: report.steals,
        returns: report.returns,
        preemptions: report.preemptions,
        trainer_rescales: report.trainer_rescales,
        trainer_rescale_cost: report.trainer_rescale_cost,
    };
    (cell, report)
}

/// Run the static-split cell: fixed trainer world, fixed replica fleets.
pub fn run_static_cell(config: &FleetSweepConfig, reference_tps: f64) -> FleetCellReport {
    let (chat_trace, batch_trace) = traces(config);
    let chat = serve(
        tenant_config("chat", STATIC_REPLICAS, STATIC_REPLICAS, 2.0),
        &chat_trace,
        None,
    )
    .expect("static chat deployment serves");
    let batch = serve(
        tenant_config("batch", STATIC_REPLICAS, STATIC_REPLICAS, 6.0),
        &batch_trace,
        None,
    )
    .expect("static batch deployment serves");

    let mut job = ElasticTrainer::new(
        trainer_spec(config.trainer_iterations),
        trainer_engine(config.seed),
        STATIC_TRAINER_WORLD,
    )
    .expect("static trainer spec is valid");
    job.advance_to(config.day).expect("static training runs");
    let tps = job.tokens_per_second();
    let outcomes = vec![
        tenant_outcome(&chat, config.day),
        tenant_outcome(&batch, config.day),
    ];
    let (peak, whole) = aggregate(&outcomes);
    FleetCellReport {
        label: "static-split".into(),
        tenants: outcomes,
        peak_attainment: peak,
        attainment: whole,
        trainer_tokens_per_second: tps,
        training_loss: 1.0 - tps / reference_tps,
        trainer_iterations: job.iterations_done(),
        trainer_mean_world: STATIC_TRAINER_WORLD as f64,
        steals: 0,
        returns: 0,
        preemptions: 0,
        trainer_rescales: 0,
        trainer_rescale_cost: 0.0,
    }
}

/// Pin the closed-loop trainer trajectory: every chunk boundary at or
/// before the first steal must carry the same checksum as the undisturbed
/// reference run.  Returns `(compared, all_matched)`.
fn pin_trajectory(report: &FleetReport, reference: &[(u64, u64)]) -> (usize, bool) {
    let first_steal = report
        .timeline
        .iter()
        .find(|a| matches!(a.kind, FleetActionKind::Steal { .. }))
        .map(|a| a.trainer_iteration)
        .unwrap_or(u64::MAX);
    let reference: std::collections::BTreeMap<u64, u64> = reference.iter().copied().collect();
    let mut compared = 0;
    for &(iteration, checksum) in &report.trajectory_checksums {
        if iteration > first_steal {
            break;
        }
        match reference.get(&iteration) {
            Some(&expected) if expected == checksum => compared += 1,
            Some(_) => return (compared, false),
            None => break, // the reference stopped at the day's horizon
        }
    }
    (compared, compared > 0)
}

/// Run the whole sweep at `scale`.
pub fn run_fleet_sweep(scale: ExperimentScale) -> FleetSweepReport {
    let config = FleetSweepConfig::for_scale(scale);
    config.validate().expect("scale config is valid");

    let (reference_tps, reference_history) = solo_trainer(&config, CLOSED_TRAINER_WORLD);
    let (closed, closed_raw) = run_closed_cell(&config, reference_tps);
    let static_split = run_static_cell(&config, reference_tps);
    let (pinned_boundaries, trajectory_pinned) = pin_trajectory(&closed_raw, &reference_history);

    FleetSweepReport {
        scale: format!("{scale:?}"),
        peak_attainment_margin_pp: (closed.peak_attainment - static_split.peak_attainment) * 100.0,
        training_loss_margin_pp: (static_split.training_loss - closed.training_loss) * 100.0,
        config,
        reference_tokens_per_second: reference_tps,
        closed,
        static_split,
        pinned_boundaries,
        trajectory_pinned,
        closed_timeline: closed_raw.timeline,
    }
}
