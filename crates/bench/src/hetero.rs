//! Heterogeneous-cluster sweep: the fig3-style comparison re-run on a
//! mixed-generation cluster.
//!
//! The paper evaluates DynMo on a uniform H100 fleet, where all imbalance
//! comes from the *model* (pruning, freezing, early exit...).  On a real
//! multi-generation cluster the hardware itself is imbalanced: an even
//! Megatron-LM split bottlenecks on the slowest generation no matter how
//! good the schedule is.  This sweep runs the same (case × configuration)
//! grid on a uniform cluster and on a 3-generation (H100/A100/V100)
//! cluster and reports the *margin* — best DynMo throughput over best
//! static throughput — for both, showing the margin growing with
//! heterogeneity.
//!
//! Static baselines: Megatron-LM even split under 1F1B, and the same split
//! under the "almost zero-bubble" ZB-H1 schedule (a stronger schedule does
//! not fix a hardware-imbalanced split).  DynMo rows: Partition and
//! Diffusion, both by time, rebalancing every 10 iterations so even the
//! smoke scale reaches steady state.

use dynmo_baselines::{megatron_initial_assignment, static_controller};
use dynmo_core::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_core::report::TrainingReport;
use dynmo_core::trainer::{Trainer, TrainerConfig};
use dynmo_dynamics::RebalanceFrequency;
use dynmo_model::{ClusterConfig, DeviceSpec};
use dynmo_pipeline::ScheduleKind;
use serde::{Deserialize, Serialize};

use crate::cases::{build_engine, DynamicCase};
use crate::scale::ExperimentScale;

/// The two cluster flavors the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterFlavor {
    /// All stages on the same device generation (H100).
    Uniform,
    /// Three generations: H100 / A100 / V100 thirds of the pipeline.
    ThreeGen,
}

impl ClusterFlavor {
    /// Both flavors, uniform first.
    pub const ALL: [ClusterFlavor; 2] = [ClusterFlavor::Uniform, ClusterFlavor::ThreeGen];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ClusterFlavor::Uniform => "uniform",
            ClusterFlavor::ThreeGen => "3-gen",
        }
    }

    /// The cluster of this flavor at the given pipeline shape.
    pub fn cluster(&self, pipeline_stages: usize, data_parallel: usize) -> ClusterConfig {
        match self {
            ClusterFlavor::Uniform => ClusterConfig::homogeneous(
                8,
                pipeline_stages,
                data_parallel,
                DeviceSpec::h100_sxm5(),
            ),
            ClusterFlavor::ThreeGen => {
                ClusterConfig::hetero_three_gen(8, pipeline_stages, data_parallel)
            }
        }
    }
}

/// The configurations compared on every cluster flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeteroConfiguration {
    /// Megatron-LM even split under 1F1B, never rebalanced.
    StaticMegatron,
    /// The same even split under the ZB-H1 schedule, never rebalanced.
    StaticZeroBubble,
    /// DynMo centralized partitioning (by time), rebalancing every 10.
    DynmoPartition,
    /// DynMo diffusion (by time), rebalancing every 10.
    DynmoDiffusion,
}

impl HeteroConfiguration {
    /// All four configurations, baselines first.
    pub const ALL: [HeteroConfiguration; 4] = [
        HeteroConfiguration::StaticMegatron,
        HeteroConfiguration::StaticZeroBubble,
        HeteroConfiguration::DynmoPartition,
        HeteroConfiguration::DynmoDiffusion,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            HeteroConfiguration::StaticMegatron => "Static (Megatron-LM)",
            HeteroConfiguration::StaticZeroBubble => "Static (ZB-H1)",
            HeteroConfiguration::DynmoPartition => "DynMo (Partition, by Time)",
            HeteroConfiguration::DynmoDiffusion => "DynMo (Diffusion, by Time)",
        }
    }

    /// Whether the configuration rebalances (a DynMo variant).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            HeteroConfiguration::DynmoPartition | HeteroConfiguration::DynmoDiffusion
        )
    }

    fn schedule(&self) -> ScheduleKind {
        match self {
            HeteroConfiguration::StaticZeroBubble => ScheduleKind::ZeroBubbleH1,
            _ => ScheduleKind::OneFOneB,
        }
    }

    fn controller(&self) -> RebalanceController {
        let every10 = RebalancePolicy {
            enabled: true,
            frequency: Some(RebalanceFrequency::EveryN(10)),
            repack: None,
        };
        match self {
            HeteroConfiguration::StaticMegatron | HeteroConfiguration::StaticZeroBubble => {
                static_controller()
            }
            HeteroConfiguration::DynmoPartition => RebalanceController::new(
                Box::new(PartitionBalancer::new()),
                BalanceObjective::ByTime,
                every10,
            ),
            HeteroConfiguration::DynmoDiffusion => RebalanceController::new(
                Box::new(DiffusionBalancer::new()),
                BalanceObjective::ByTime,
                every10,
            ),
        }
    }
}

/// One row of the sweep: a (case, cluster, configuration) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroRow {
    /// The dynamic-model case label.
    pub case: String,
    /// The cluster flavor label (`uniform` / `3-gen`).
    pub cluster: String,
    /// The configuration label.
    pub configuration: String,
    /// The pipeline schedule the row ran.
    pub schedule: String,
    /// End-to-end training throughput.
    pub tokens_per_second: f64,
    /// Average pipeline bubble ratio.
    pub bubble_ratio: f64,
    /// Rebalances performed over the run (0 for static rows).
    pub rebalance_events: u64,
}

/// The margin summary of one case: best-DynMo over best-static throughput
/// on each flavor, and how much the margin grows with heterogeneity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroMargin {
    /// The dynamic-model case label.
    pub case: String,
    /// Best DynMo / best static on the uniform cluster.
    pub uniform_margin: f64,
    /// Best DynMo / best static on the 3-generation cluster.
    pub hetero_margin: f64,
    /// `hetero_margin / uniform_margin` (> 1 when heterogeneity widens
    /// DynMo's advantage).
    pub growth: f64,
}

/// Everything the sweep produces, serialized to `results/hetero_sweep.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroSweepReport {
    /// Every (case × cluster × configuration) cell.
    pub rows: Vec<HeteroRow>,
    /// Per-case margin summary across the two flavors.
    pub margins: Vec<HeteroMargin>,
}

/// Pipeline shape of the sweep at a given scale.
fn pipeline_shape(scale: ExperimentScale) -> (usize, usize, usize) {
    // (pipeline_stages, data_parallel, gpt_layers); stages divisible by 3
    // so the 3-generation cluster gets equal thirds.
    match scale {
        ExperimentScale::Smoke => (6, 1, 24),
        ExperimentScale::Default => (12, 2, 36),
        ExperimentScale::Paper => (24, 4, 48),
    }
}

/// The cases the sweep covers: one mechanism whose drift is gradual
/// (freezing) and one whose drift is stepwise (pruning) — enough to show
/// the margin effect is not mechanism-specific.
pub const HETERO_CASES: [DynamicCase; 2] = [DynamicCase::Freezing, DynamicCase::Pruning];

/// Run one (case, flavor, configuration) cell and return its report.
pub fn run_hetero_cell(
    case: DynamicCase,
    flavor: ClusterFlavor,
    configuration: HeteroConfiguration,
    scale: ExperimentScale,
) -> TrainingReport {
    let (stages, data_parallel, layers) = pipeline_shape(scale);
    let cluster = flavor.cluster(stages, data_parallel);
    let model = case.model(layers);
    let trainer_config = TrainerConfig {
        objective: BalanceObjective::ByTime,
        schedule: configuration.schedule(),
        ..TrainerConfig::paper_defaults(cluster.clone(), scale.iterations())
    };
    let initial = megatron_initial_assignment(&model, cluster.pipeline_stages);
    let mut engine = build_engine(
        case,
        &model,
        scale,
        crate::cases::BalancerKind::StaticMegatron,
        1234,
    );
    let mut trainer = Trainer::new(model, trainer_config, configuration.controller())
        .with_initial_assignment(initial);
    trainer.run(engine.as_mut())
}

/// Run the full sweep: every case on both flavors under all four
/// configurations, with the per-case margin summary.
pub fn run_hetero_sweep(scale: ExperimentScale) -> HeteroSweepReport {
    let mut rows = Vec::new();
    let mut margins = Vec::new();
    for case in HETERO_CASES {
        let margin_of = |flavor: ClusterFlavor, rows: &mut Vec<HeteroRow>| {
            let mut best_static = 0.0f64;
            let mut best_dynamic = 0.0f64;
            for configuration in HeteroConfiguration::ALL {
                let report = run_hetero_cell(case, flavor, configuration, scale);
                if configuration.is_dynamic() {
                    best_dynamic = best_dynamic.max(report.tokens_per_second);
                } else {
                    best_static = best_static.max(report.tokens_per_second);
                }
                rows.push(HeteroRow {
                    case: case.label().to_string(),
                    cluster: flavor.label().to_string(),
                    configuration: configuration.label().to_string(),
                    schedule: format!("{:?}", configuration.schedule()),
                    tokens_per_second: report.tokens_per_second,
                    bubble_ratio: report.average_bubble_ratio,
                    rebalance_events: report.rebalance_events,
                });
            }
            if best_static > 0.0 {
                best_dynamic / best_static
            } else {
                0.0
            }
        };
        let uniform_margin = margin_of(ClusterFlavor::Uniform, &mut rows);
        let hetero_margin = margin_of(ClusterFlavor::ThreeGen, &mut rows);
        margins.push(HeteroMargin {
            case: case.label().to_string(),
            uniform_margin,
            hetero_margin,
            growth: if uniform_margin > 0.0 {
                hetero_margin / uniform_margin
            } else {
                0.0
            },
        });
    }
    HeteroSweepReport { rows, margins }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_margin_exceeds_uniform_margin() {
        // The acceptance criterion of the hetero refactor: on a
        // 3-generation cluster DynMo's advantage over the static baselines
        // is *larger* than on the uniform cluster, for every case.
        let report = run_hetero_sweep(ExperimentScale::Smoke);
        assert_eq!(report.margins.len(), HETERO_CASES.len());
        assert_eq!(
            report.rows.len(),
            HETERO_CASES.len() * ClusterFlavor::ALL.len() * HeteroConfiguration::ALL.len()
        );
        for margin in &report.margins {
            assert!(
                margin.hetero_margin > margin.uniform_margin,
                "{}: hetero margin {:.3} should exceed uniform margin {:.3}",
                margin.case,
                margin.hetero_margin,
                margin.uniform_margin
            );
            assert!(margin.growth > 1.0);
            // The hetero margin is a real win, not a rounding artifact: on
            // the 3-generation cluster the even split bottlenecks on the
            // slowest generation.
            assert!(margin.hetero_margin > 1.1, "{}", margin.hetero_margin);
        }
    }

    #[test]
    fn static_rows_never_rebalance_and_dynamic_rows_do() {
        let static_report = run_hetero_cell(
            DynamicCase::Freezing,
            ClusterFlavor::ThreeGen,
            HeteroConfiguration::StaticMegatron,
            ExperimentScale::Smoke,
        );
        assert_eq!(static_report.rebalance_events, 0);
        let dynamic_report = run_hetero_cell(
            DynamicCase::Freezing,
            ClusterFlavor::ThreeGen,
            HeteroConfiguration::DynmoPartition,
            ExperimentScale::Smoke,
        );
        assert!(dynamic_report.rebalance_events > 0);
    }
}
