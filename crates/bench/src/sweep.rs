//! Parallel pipeline-schedule sweeps.
//!
//! The event-driven simulator makes large `(schedule × stages ×
//! micro-batches × imbalance)` grids cheap; this module fans such a grid
//! across threads with rayon and collects one flat JSON artifact
//! (`results/pipeline_sweep.json`) covering all four schedules, so the
//! bubble/idleness landscape behind the paper's Figure 1 can be regenerated
//! at any scale in one command (`cargo run -p dynmo-bench --bin
//! pipeline_sweep`).

use dynmo_model::{ClusterConfig, DeviceSpec, ModelConfig};
use dynmo_pipeline::load::StageLoad;
use dynmo_pipeline::{CommCostModel, PipelineSimulator, ScheduleKind};
use dynmo_telemetry::Recorder;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scale::ExperimentScale;

/// The grid a sweep covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Pipeline schedules to compare.
    pub schedules: Vec<ScheduleKind>,
    /// Pipeline depths (`p`).
    pub stage_counts: Vec<usize>,
    /// Micro-batch counts (`m`).
    pub microbatch_counts: Vec<usize>,
    /// Slow-stage factors: the last stage's compute is scaled by `1 + γ`,
    /// emulating the imbalance a dynamism event concentrates on one worker
    /// (`γ = 0` is the balanced pipeline).
    pub imbalance_factors: Vec<f64>,
    /// GPT layer count the synthetic stage loads are derived from.
    pub gpt_layers: usize,
}

impl SweepConfig {
    /// The sweep grid for a given experiment scale.  All scales cover the
    /// four schedules; larger scales widen the `(p, m, γ)` axes up to the
    /// `p = 32, m = 512` corner.
    pub fn for_scale(scale: ExperimentScale) -> Self {
        let (stage_counts, microbatch_counts, imbalance_factors) = match scale {
            ExperimentScale::Smoke => (vec![2, 4, 8], vec![8, 32], vec![0.0, 0.5]),
            ExperimentScale::Default => (
                vec![4, 8, 16, 32],
                vec![16, 64, 128],
                vec![0.0, 0.25, 0.5, 1.0],
            ),
            ExperimentScale::Paper => (
                vec![4, 8, 16, 24, 32],
                vec![16, 64, 128, 256, 512],
                vec![0.0, 0.25, 0.5, 1.0, 2.0],
            ),
        };
        SweepConfig {
            schedules: ScheduleKind::ALL.to_vec(),
            stage_counts,
            microbatch_counts,
            imbalance_factors,
            gpt_layers: 32,
        }
    }

    /// The cartesian product of the grid's axes.
    pub fn cells(&self) -> Vec<SweepCase> {
        let mut cases = Vec::new();
        for &schedule in &self.schedules {
            for &stages in &self.stage_counts {
                for &microbatches in &self.microbatch_counts {
                    for &imbalance in &self.imbalance_factors {
                        cases.push(SweepCase {
                            schedule,
                            stages,
                            microbatches,
                            imbalance,
                        });
                    }
                }
            }
        }
        cases
    }
}

/// One point of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepCase {
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Pipeline depth.
    pub stages: usize,
    /// Micro-batches per iteration.
    pub microbatches: usize,
    /// Slow-stage factor γ (last stage scaled by `1 + γ`).
    pub imbalance: f64,
}

/// The simulated outcome of one sweep point — one row of the JSON artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Schedule label (see [`ScheduleKind::label`]).
    pub schedule: String,
    /// Pipeline depth.
    pub stages: usize,
    /// Micro-batches per iteration.
    pub microbatches: usize,
    /// Requested slow-stage factor γ.
    pub imbalance_factor: f64,
    /// Iteration makespan in seconds.
    pub makespan: f64,
    /// Idle time relative to busy+idle, aggregated over the pipeline.
    pub bubble_ratio: f64,
    /// Average per-worker idleness fraction (Figure 1's y-axis).
    pub average_idleness: f64,
    /// The measured Eq. 2 imbalance of the stage compute times.
    pub load_imbalance: f64,
    /// Single-replica training throughput in tokens/second.
    pub tokens_per_second: f64,
}

/// Synthetic per-stage loads for a GPT model spread evenly over `stages`
/// workers, with the last stage slowed by `1 + imbalance`.
fn sweep_stage_loads(model: &ModelConfig, stages: usize, imbalance: f64) -> Vec<StageLoad> {
    let layers_per_stage = (model.num_layers / stages).max(1);
    let base_fwd = 2.0e-3 * layers_per_stage as f64;
    (0..stages)
        .map(|s| {
            let slow = if s == stages - 1 {
                1.0 + imbalance
            } else {
                1.0
            };
            StageLoad {
                fwd_time: base_fwd * slow,
                bwd_time: 2.0 * base_fwd * slow,
                param_count: 12 * (model.hidden_size as u64).pow(2) * layers_per_stage as u64,
                static_bytes: 0,
                activation_bytes: 0,
                // Dense model: every boundary carries the flat
                // residual-stream tensor.
                boundary_bytes: 0,
                num_layers: layers_per_stage,
            }
        })
        .collect()
}

/// Simulate one sweep point.
pub fn run_cell(gpt_layers: usize, case: &SweepCase) -> SweepCell {
    run_cell_recorded(gpt_layers, case, &dynmo_telemetry::NullRecorder, 0)
}

/// Simulate one sweep point, recording the iteration's per-rank timeline
/// into `recorder` under group `group` (one Perfetto process per cell).
/// The returned cell is byte-identical to [`run_cell`]'s — the recorder
/// observes the simulation, it never perturbs it.
pub fn run_cell_recorded(
    gpt_layers: usize,
    case: &SweepCase,
    recorder: &dyn Recorder,
    group: usize,
) -> SweepCell {
    let model = ModelConfig::gpt(gpt_layers);
    let cluster = ClusterConfig::homogeneous(4, case.stages, 1, DeviceSpec::h100_sxm5());
    let loads = sweep_stage_loads(&model, case.stages, case.imbalance);
    let simulator = PipelineSimulator::new(CommCostModel::new(cluster), case.schedule);
    let report = simulator.simulate(&model, &loads, case.microbatches);
    recorder.record_iteration(group, 0, 0.0, &report);
    let tokens = (case.microbatches * model.micro_batch_size * model.seq_len) as u64;
    SweepCell {
        schedule: case.schedule.label(),
        stages: case.stages,
        microbatches: case.microbatches,
        imbalance_factor: case.imbalance,
        makespan: report.makespan,
        bubble_ratio: report.bubble_ratio(),
        average_idleness: report.average_idleness(),
        load_imbalance: report.load_imbalance(),
        tokens_per_second: report.tokens_per_second(tokens),
    }
}

/// Run the whole grid, fanning the cells across rayon's thread pool, and
/// return the rows in grid order (schedule-major, matching
/// [`SweepConfig::cells`]).
pub fn run_sweep(config: &SweepConfig) -> Vec<SweepCell> {
    let cases = config.cells();
    cases
        .par_iter()
        .map(|case| run_cell(config.gpt_layers, case))
        .collect()
}

/// [`run_sweep`] with a telemetry recorder attached: cell `i` of the grid
/// records its timeline under group `i`.  The rows come back in the same
/// grid order with the same bytes as the unrecorded sweep.
pub fn run_sweep_recorded(config: &SweepConfig, recorder: &dyn Recorder) -> Vec<SweepCell> {
    let cases = config.cells();
    cases
        .par_iter()
        .enumerate()
        .map(|(group, case)| run_cell_recorded(config.gpt_layers, case, recorder, group))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_all_four_schedules() {
        let config = SweepConfig::for_scale(ExperimentScale::Smoke);
        let cells = run_sweep(&config);
        assert_eq!(
            cells.len(),
            config.schedules.len()
                * config.stage_counts.len()
                * config.microbatch_counts.len()
                * config.imbalance_factors.len()
        );
        let schedules: std::collections::HashSet<&str> =
            cells.iter().map(|c| c.schedule.as_str()).collect();
        assert_eq!(schedules.len(), 4);
        for cell in &cells {
            assert!(cell.makespan > 0.0);
            assert!(cell.bubble_ratio >= 0.0 && cell.bubble_ratio < 1.0);
            assert!(cell.tokens_per_second > 0.0);
        }
    }

    #[test]
    fn imbalance_raises_the_bubble_within_a_schedule() {
        let balanced = run_cell(
            32,
            &SweepCase {
                schedule: ScheduleKind::OneFOneB,
                stages: 8,
                microbatches: 32,
                imbalance: 0.0,
            },
        );
        let skewed = run_cell(
            32,
            &SweepCase {
                schedule: ScheduleKind::OneFOneB,
                stages: 8,
                microbatches: 32,
                imbalance: 1.0,
            },
        );
        assert!(skewed.bubble_ratio > balanced.bubble_ratio);
        assert!(skewed.load_imbalance > balanced.load_imbalance);
        assert!(skewed.tokens_per_second < balanced.tokens_per_second);
    }

    #[test]
    fn better_schedules_keep_their_ordering_on_balanced_grids() {
        let cell = |schedule| {
            run_cell(
                32,
                &SweepCase {
                    schedule,
                    stages: 8,
                    microbatches: 64,
                    imbalance: 0.0,
                },
            )
        };
        // GPipe and 1F1B share the same (p−1)/(m+p−1) bubble asymptotics
        // (they differ in memory, and under α–β link costs either can edge
        // out the other), so no ordering is asserted between them; the
        // interleaved and zero-bubble schedules must strictly beat both.
        let gpipe = cell(ScheduleKind::GPipe);
        let fb = cell(ScheduleKind::OneFOneB);
        let inter = cell(ScheduleKind::Interleaved1F1B { virtual_stages: 2 });
        let zb = cell(ScheduleKind::ZeroBubbleH1);
        for better in [&inter, &zb] {
            assert!(better.bubble_ratio < fb.bubble_ratio);
            assert!(better.bubble_ratio < gpipe.bubble_ratio);
        }
    }
}
