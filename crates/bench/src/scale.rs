//! Experiment scales: paper-faithful, default (compressed), and smoke.

use dynmo_dynamics::{FreezingPolicy, PruningSchedule};
use dynmo_model::ClusterConfig;
use serde::{Deserialize, Serialize};

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Seconds-long sanity run (CI / criterion benches).
    Smoke,
    /// The default: paper cluster shapes, schedules compressed into a few
    /// hundred iterations.
    Default,
    /// The paper's full 10,000-iteration schedules.
    Paper,
}

impl ExperimentScale {
    /// Parse from a CLI argument (`smoke` / `default` / `paper`).
    pub fn parse(arg: &str) -> Option<Self> {
        match arg.to_ascii_lowercase().as_str() {
            "smoke" => Some(ExperimentScale::Smoke),
            "default" => Some(ExperimentScale::Default),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// Read the scale from a binary's CLI arguments (`--scale X`), falling
    /// back to [`ExperimentScale::Default`].
    pub fn from_args(args: &[String]) -> Self {
        for window in args.windows(2) {
            if window[0] == "--scale" {
                if let Some(scale) = Self::parse(&window[1]) {
                    return scale;
                }
            }
        }
        ExperimentScale::Default
    }

    /// Read the scale straight from the process arguments (`--scale X` in
    /// `std::env::args`) — the one shared entry point every figure binary
    /// uses instead of collecting the arguments itself.
    pub fn from_process_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// Number of training iterations simulated per configuration.
    pub fn iterations(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 60,
            ExperimentScale::Default => 400,
            ExperimentScale::Paper => 10_000,
        }
    }

    /// The pipeline-parallel degree used for the non-MoE GPT experiments
    /// (the paper's 24-way pipeline on 720 GPUs).
    pub fn gpt_cluster(&self) -> ClusterConfig {
        match self {
            ExperimentScale::Smoke => ClusterConfig {
                pipeline_stages: 4,
                data_parallel: 1,
                ..ClusterConfig::paper_720_h100()
            },
            ExperimentScale::Default => ClusterConfig {
                pipeline_stages: 12,
                data_parallel: 4,
                ..ClusterConfig::paper_720_h100()
            },
            ExperimentScale::Paper => ClusterConfig::paper_720_h100(),
        }
    }

    /// The pipeline-parallel degree used for the MoE/MoD experiments
    /// (the paper's 16-way pipeline on 128 GPUs).
    pub fn moe_cluster(&self) -> ClusterConfig {
        match self {
            ExperimentScale::Smoke => ClusterConfig {
                pipeline_stages: 4,
                data_parallel: 1,
                ..ClusterConfig::paper_128_h100()
            },
            ExperimentScale::Default => ClusterConfig {
                pipeline_stages: 8,
                data_parallel: 2,
                ..ClusterConfig::paper_128_h100()
            },
            ExperimentScale::Paper => ClusterConfig::paper_128_h100(),
        }
    }

    /// Schedules for dynamism mechanisms whose behaviour is tied to the
    /// iteration count, compressed proportionally to the chosen scale.
    pub fn schedules(&self) -> ScaledSchedules {
        let iterations = self.iterations();
        ScaledSchedules {
            pruning: PruningSchedule {
                initial_sparsity: 0.0,
                final_sparsity: 0.9,
                start_iteration: (iterations as f64 * 0.3) as u64,
                frequency: ((iterations as f64 * 0.1) as u64).max(1),
                num_steps: 4,
            },
            freezing: FreezingPolicy {
                check_interval: (iterations / 20).max(1),
                first_freeze_iteration: (iterations as f64 * 0.1) as u64,
                stagger_per_layer: ((iterations as f64 * 0.6 / 48.0) as u64).max(1),
                never_freeze_fraction: 0.25,
                jitter: 0.15,
            },
        }
    }
}

/// Iteration-scaled dynamism schedules for the mechanisms that need them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledSchedules {
    /// Gradual-pruning schedule (Zhu–Gupta cubic), compressed to the scale.
    pub pruning: PruningSchedule,
    /// Layer-freezing policy, compressed to the scale.
    pub freezing: FreezingPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_from_args() {
        assert_eq!(
            ExperimentScale::parse("paper"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(
            ExperimentScale::parse("SMOKE"),
            Some(ExperimentScale::Smoke)
        );
        assert_eq!(ExperimentScale::parse("bogus"), None);
        let args = vec!["--scale".to_string(), "smoke".to_string()];
        assert_eq!(ExperimentScale::from_args(&args), ExperimentScale::Smoke);
        assert_eq!(
            ExperimentScale::from_args(&["--other".to_string()]),
            ExperimentScale::Default
        );
    }

    #[test]
    fn paper_scale_matches_the_evaluation_setup() {
        let scale = ExperimentScale::Paper;
        assert_eq!(scale.iterations(), 10_000);
        assert_eq!(scale.gpt_cluster().total_gpus(), 720);
        assert_eq!(scale.moe_cluster().total_gpus(), 128);
        let schedules = scale.schedules();
        assert_eq!(schedules.pruning.start_iteration, 3_000);
        assert_eq!(schedules.pruning.frequency, 1_000);
        assert!((schedules.pruning.final_sparsity - 0.9).abs() < 1e-12);
    }

    #[test]
    fn smaller_scales_compress_but_preserve_structure() {
        for scale in [ExperimentScale::Smoke, ExperimentScale::Default] {
            let iters = scale.iterations();
            let schedules = scale.schedules();
            assert!(schedules.pruning.start_iteration < iters);
            assert!(
                schedules.pruning.start_iteration
                    + schedules.pruning.num_steps * schedules.pruning.frequency
                    <= iters + schedules.pruning.frequency
            );
            assert!(schedules.freezing.first_freeze_iteration < iters);
            assert!(scale.gpt_cluster().validate().is_ok());
            assert!(scale.moe_cluster().validate().is_ok());
        }
    }
}
