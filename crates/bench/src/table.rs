//! Minimal aligned-text table printer for the figure binaries, plus a JSON
//! dump so EXPERIMENTS.md can be regenerated mechanically.

use serde::Serialize;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Serialize `value` as pretty JSON and write it under `results/` (created
/// if needed), returning the path.  Failures are reported but not fatal —
/// the printed tables remain the primary output.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(err) => {
                eprintln!("warning: could not write {}: {err}", path.display());
                None
            }
        },
        Err(err) => {
            eprintln!("warning: could not serialize {name}: {err}");
            None
        }
    }
}

/// Format a float with the given number of decimal places.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a fraction as a percentage string.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["longer-name".into(), "2.5".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("longer-name"));
        // All data lines have the same width up to trailing spaces.
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert!(lines.len() >= 4);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.254), "25.4%");
    }
}
