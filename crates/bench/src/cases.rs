//! Experiment configurations: (dynamic-model case × balancer) → training run.
//!
//! This is the glue that lets every figure binary express itself as "run
//! this case with these balancers and print a table": it knows which engine,
//! cluster shape, initial assignment, controller and schedule the paper uses
//! for each combination.

use dynmo_baselines::{
    deepspeed_initial_assignment, megatron_initial_assignment, static_controller,
    zero_bubble_baseline_schedule, DeepSpeedMethod, EgeriaEngine, TutelMoeEngine,
};
use dynmo_core::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_core::repack::RepackConfig;
use dynmo_core::report::TrainingReport;
use dynmo_core::trainer::{Trainer, TrainerConfig};
use dynmo_dynamics::{
    AttentionMode, DynamismEngine, EarlyExitEngine, EarlyExitMethod, FreezingEngine,
    GradualPruningEngine, MixtureOfDepthsEngine, ModConfig, MoeEngine, RoutingStrategy,
    SparseAttentionEngine,
};
use dynmo_model::{ClusterConfig, Model, ModelPreset};
use dynmo_pipeline::ScheduleKind;
use serde::{Deserialize, Serialize};

use crate::scale::ExperimentScale;

/// The dynamic-model cases of the paper's evaluation, including the two MoE
/// models that Figure 1/3 report separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamicCase {
    /// Mixtral-8x7B continual training (MoE).
    MoeMixtral,
    /// LLaMA-MoE-3.5B continual training (MoE).
    MoeLlama,
    /// Gradual global magnitude pruning on GPT.
    Pruning,
    /// Adaptive layer freezing on GPT.
    Freezing,
    /// Dynamic sparse flash attention on GPT.
    SparseAttention,
    /// Early exit (CALM-style) on GPT.
    EarlyExit,
    /// Mixture of Depths on GPT.
    MixtureOfDepths,
}

impl DynamicCase {
    /// The GPT-based cases that sweep 24/32/40/48 layers in the paper.
    pub const GPT_CASES: [DynamicCase; 5] = [
        DynamicCase::Pruning,
        DynamicCase::Freezing,
        DynamicCase::SparseAttention,
        DynamicCase::EarlyExit,
        DynamicCase::MixtureOfDepths,
    ];

    /// All cases, MoE models first (matching the paper's figure order).
    pub const ALL: [DynamicCase; 7] = [
        DynamicCase::MoeMixtral,
        DynamicCase::MoeLlama,
        DynamicCase::Pruning,
        DynamicCase::Freezing,
        DynamicCase::SparseAttention,
        DynamicCase::EarlyExit,
        DynamicCase::MixtureOfDepths,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DynamicCase::MoeMixtral => "MoE (Mixtral 8x7B)",
            DynamicCase::MoeLlama => "MoE (LLaMA-MoE-3.5B)",
            DynamicCase::Pruning => "Gradual Pruning",
            DynamicCase::Freezing => "Layer Freezing",
            DynamicCase::SparseAttention => "Dynamic Sparse Attention",
            DynamicCase::EarlyExit => "Early Exit",
            DynamicCase::MixtureOfDepths => "Mixture of Depths",
        }
    }

    /// Whether the case uses the MoE/MoD cluster (128 GPUs in the paper)
    /// instead of the 720-GPU cluster.
    pub fn uses_moe_cluster(&self) -> bool {
        matches!(
            self,
            DynamicCase::MoeMixtral | DynamicCase::MoeLlama | DynamicCase::MixtureOfDepths
        )
    }

    /// The model this case trains (GPT cases take the layer count).
    pub fn model(&self, gpt_layers: usize) -> Model {
        match self {
            DynamicCase::MoeMixtral => Model::from_preset(ModelPreset::Mixtral8x7b),
            DynamicCase::MoeLlama => Model::from_preset(ModelPreset::LlamaMoe3_5b),
            _ => Model::from_preset(ModelPreset::Gpt { layers: gpt_layers }),
        }
    }

    /// The label the paper uses for this case's non-DynMo comparison point.
    pub fn sota_label(&self) -> Option<&'static str> {
        match self {
            DynamicCase::MoeMixtral | DynamicCase::MoeLlama => Some("Tutel"),
            DynamicCase::Freezing => Some("Egeria"),
            DynamicCase::SparseAttention => Some("Dense Attn."),
            DynamicCase::EarlyExit => Some("No Early Exit"),
            DynamicCase::Pruning | DynamicCase::MixtureOfDepths => None,
        }
    }
}

/// The balancing configurations compared in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalancerKind {
    /// Static Megatron-LM (uniform layer split, never rebalanced).
    StaticMegatron,
    /// Static DeepSpeed (parameter-balanced split, never rebalanced).
    StaticDeepSpeedParam,
    /// The case-specific SoTA comparison point (Tutel / Egeria / dense
    /// attention / no early exit), run without rebalancing.
    Sota,
    /// DynMo centralized partitioning, balancing parameter counts.
    PartitionByParam,
    /// DynMo centralized partitioning, balancing layer execution times.
    PartitionByTime,
    /// DynMo diffusion, balancing parameter counts.
    DiffusionByParam,
    /// DynMo diffusion, balancing layer execution times.
    DiffusionByTime,
}

impl BalancerKind {
    /// The standard comparison set of Figure 3 (static baselines + the four
    /// DynMo variants).  The SoTA point is added separately where the case
    /// has one.
    pub const FIGURE3: [BalancerKind; 6] = [
        BalancerKind::StaticMegatron,
        BalancerKind::StaticDeepSpeedParam,
        BalancerKind::PartitionByParam,
        BalancerKind::PartitionByTime,
        BalancerKind::DiffusionByParam,
        BalancerKind::DiffusionByTime,
    ];

    /// Whether this configuration rebalances dynamically (a DynMo variant).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            BalancerKind::PartitionByParam
                | BalancerKind::PartitionByTime
                | BalancerKind::DiffusionByParam
                | BalancerKind::DiffusionByTime
        )
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BalancerKind::StaticMegatron => "Static (Megatron-LM)",
            BalancerKind::StaticDeepSpeedParam => "Static (DeepSpeed)",
            BalancerKind::Sota => "SoTA baseline",
            BalancerKind::PartitionByParam => "DynMo (Partition, by Param)",
            BalancerKind::PartitionByTime => "DynMo (Partition, by Time)",
            BalancerKind::DiffusionByParam => "DynMo (Diffusion, by Param)",
            BalancerKind::DiffusionByTime => "DynMo (Diffusion, by Time)",
        }
    }

    fn objective(&self) -> BalanceObjective {
        match self {
            BalancerKind::PartitionByParam | BalancerKind::DiffusionByParam => {
                BalanceObjective::ByParams
            }
            _ => BalanceObjective::ByTime,
        }
    }
}

/// One experiment cell: a case, model size, scale, pipeline schedule, and
/// whether re-packing is enabled for the DynMo variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseConfig {
    /// The dynamic-model case.
    pub case: DynamicCase,
    /// GPT layer count (ignored by the MoE cases).
    pub gpt_layers: usize,
    /// The experiment scale.
    pub scale: ExperimentScale,
    /// Pipeline schedule pinned for every configuration in the cell.
    /// `None` (the default) uses the paper's setup: 1F1B for the Megatron/
    /// DeepSpeed/DynMo rows and the "almost zero-bubble" baseline schedule
    /// for the SoTA row; `Some(s)` runs *every* row — SoTA included —
    /// under `s`.
    pub schedule: Option<ScheduleKind>,
    /// Whether DynMo variants may re-pack onto fewer GPUs.
    pub repack: bool,
    /// Periodic checkpointing interval for the trainer (None = disabled,
    /// the paper-faithful default: the paper assumes a reliable fleet).
    pub checkpoint_interval: Option<u64>,
}

impl CaseConfig {
    /// A config at the given scale with re-packing disabled.
    pub fn new(case: DynamicCase, gpt_layers: usize, scale: ExperimentScale) -> Self {
        CaseConfig {
            case,
            gpt_layers,
            scale,
            schedule: None,
            repack: false,
            checkpoint_interval: None,
        }
    }

    /// Pin one pipeline schedule for every row of the cell (builder style).
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Enable periodic trainer checkpointing (builder style); the write
    /// cost lands in the overhead report's `recovery` bucket.
    pub fn with_checkpointing(mut self, interval: u64) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// The cluster shape for this case at this scale.
    pub fn cluster(&self) -> ClusterConfig {
        if self.case.uses_moe_cluster() {
            self.scale.moe_cluster()
        } else {
            self.scale.gpt_cluster()
        }
    }
}

/// The outcome of running one (case, balancer) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigurationResult {
    /// The balancer configuration that produced the result.
    pub balancer: BalancerKind,
    /// Display label of the configuration.
    pub label: String,
    /// The pipeline schedule the run actually used (the SoTA row upgrades
    /// the cell's 1F1B default to the zero-bubble baseline schedule).
    pub schedule: ScheduleKind,
    /// The full training report.
    pub report: TrainingReport,
}

/// Build the dynamism engine the given (case, balancer) cell trains with.
/// The engine differs from the DynMo rows only for the SoTA baseline rows
/// (Tutel caps expert overload; Egeria adds bookkeeping overhead; the dense
/// attention / no-early-exit baselines disable the mechanism entirely).
pub fn build_engine(
    case: DynamicCase,
    model: &Model,
    scale: ExperimentScale,
    balancer: BalancerKind,
    seed: u64,
) -> Box<dyn DynamismEngine + Send> {
    let schedules = scale.schedules();
    let sota = balancer == BalancerKind::Sota;
    match case {
        DynamicCase::MoeMixtral | DynamicCase::MoeLlama => {
            let inner = MoeEngine::new(model, RoutingStrategy::TokenChoiceAuxLoss, seed);
            if sota {
                Box::new(TutelMoeEngine::new(model, inner))
            } else {
                Box::new(inner)
            }
        }
        DynamicCase::Pruning => Box::new(GradualPruningEngine::new(model, schedules.pruning, seed)),
        DynamicCase::Freezing => {
            if sota {
                Box::new(EgeriaEngine::new(model, schedules.freezing, seed))
            } else {
                Box::new(FreezingEngine::new(model, schedules.freezing, seed))
            }
        }
        DynamicCase::SparseAttention => {
            let mode = if sota {
                AttentionMode::Dense
            } else {
                AttentionMode::DynamicSparse
            };
            Box::new(SparseAttentionEngine::new(model, mode, seed))
        }
        DynamicCase::EarlyExit => {
            let method = if sota {
                EarlyExitMethod::None
            } else {
                EarlyExitMethod::Calm
            };
            Box::new(EarlyExitEngine::new(model, method, seed))
        }
        DynamicCase::MixtureOfDepths => Box::new(MixtureOfDepthsEngine::new(
            model,
            ModConfig::paper_default(),
            seed,
        )),
    }
}

/// Run one experiment cell and return its result.
pub fn run_configuration(config: &CaseConfig, balancer: BalancerKind) -> ConfigurationResult {
    let model = config.case.model(config.gpt_layers);
    let cluster = config.cluster();
    // The paper's setup: DynMo and the static rows run Megatron's 1F1B,
    // while the SoTA comparison point runs the strongest ("almost
    // zero-bubble") schedule, so DynMo's wins come from removing dynamic
    // imbalance rather than from a weaker baseline schedule.  A cell that
    // pins a schedule compares every row under that one.
    let schedule = config.schedule.unwrap_or_else(|| {
        if balancer == BalancerKind::Sota {
            zero_bubble_baseline_schedule()
        } else {
            ScheduleKind::OneFOneB
        }
    });
    let trainer_config = TrainerConfig {
        objective: balancer.objective(),
        schedule,
        ..TrainerConfig::paper_defaults(cluster.clone(), config.scale.iterations())
    };

    let controller = match balancer {
        BalancerKind::StaticMegatron | BalancerKind::StaticDeepSpeedParam | BalancerKind::Sota => {
            static_controller()
        }
        BalancerKind::PartitionByParam | BalancerKind::PartitionByTime => RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            balancer.objective(),
            repack_policy(config, cluster.clone()),
        ),
        BalancerKind::DiffusionByParam | BalancerKind::DiffusionByTime => RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            balancer.objective(),
            repack_policy(config, cluster.clone()),
        ),
    };

    let initial = match balancer {
        BalancerKind::StaticDeepSpeedParam => deepspeed_initial_assignment(
            &model,
            cluster.pipeline_stages,
            &DeepSpeedMethod::Parameters,
        ),
        _ => megatron_initial_assignment(&model, cluster.pipeline_stages),
    };

    let mut engine = build_engine(config.case, &model, config.scale, balancer, 1234);
    let mut trainer =
        Trainer::new(model, trainer_config, controller).with_initial_assignment(initial);
    if let Some(interval) = config.checkpoint_interval {
        trainer = trainer.with_checkpointing(
            Box::new(dynmo_resilience::MemoryCheckpointStore::new()),
            interval,
        );
    }
    let report = trainer.run(engine.as_mut());

    ConfigurationResult {
        balancer,
        label: if balancer == BalancerKind::Sota {
            config
                .case
                .sota_label()
                .unwrap_or("SoTA baseline")
                .to_string()
        } else {
            balancer.label().to_string()
        },
        schedule,
        report,
    }
}

fn repack_policy(config: &CaseConfig, cluster: ClusterConfig) -> RebalancePolicy {
    if config.repack {
        RebalancePolicy::dynamic_with_repack(RepackConfig {
            max_memory: cluster.device.memory_capacity,
            target_num_workers: 2,
            utilization_cap: 0.9,
        })
    } else {
        RebalancePolicy::dynamic()
    }
}

/// Run the full comparison set for one case config: static baselines, the
/// SoTA point (when the case has one), and the four DynMo variants.
pub fn run_comparison(config: &CaseConfig) -> Vec<ConfigurationResult> {
    let mut kinds: Vec<BalancerKind> = vec![
        BalancerKind::StaticMegatron,
        BalancerKind::StaticDeepSpeedParam,
    ];
    if config.case.sota_label().is_some() {
        kinds.push(BalancerKind::Sota);
    }
    kinds.extend([
        BalancerKind::PartitionByParam,
        BalancerKind::PartitionByTime,
        BalancerKind::DiffusionByParam,
        BalancerKind::DiffusionByTime,
    ]);
    kinds
        .into_iter()
        .map(|kind| run_configuration(config, kind))
        .collect()
}

/// The throughput of the reference baseline used by the paper's Figure 3
/// speedup annotations: the case's SoTA/mechanism-off point when one exists
/// (Dense attention, No early exit, Tutel, Egeria), otherwise the best of
/// the static Megatron-LM / DeepSpeed rows.
pub fn reference_throughput(results: &[ConfigurationResult]) -> f64 {
    let sota = results
        .iter()
        .find(|r| r.balancer == BalancerKind::Sota)
        .map(|r| r.report.tokens_per_second);
    match sota {
        Some(tps) if tps > 0.0 => tps,
        _ => results
            .iter()
            .filter(|r| !r.balancer.is_dynamic())
            .map(|r| r.report.tokens_per_second)
            .fold(0.0, f64::max),
    }
}

/// The paper's headline speedup: the best DynMo variant over the case's
/// reference baseline (see [`reference_throughput`]); this matches the
/// Figure 3 caption, which divides by "the highest among static Megatron-LM
/// and DeepSpeed (or SoTA baseline, when available)".
pub fn headline_speedup(results: &[ConfigurationResult]) -> f64 {
    let best_dynamic = results
        .iter()
        .filter(|r| r.balancer.is_dynamic())
        .map(|r| r.report.tokens_per_second)
        .fold(0.0, f64::max);
    let reference = reference_throughput(results);
    if reference <= 0.0 {
        0.0
    } else {
        best_dynamic / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_metadata_is_consistent() {
        assert_eq!(DynamicCase::ALL.len(), 7);
        for case in DynamicCase::ALL {
            assert!(!case.label().is_empty());
            let model = case.model(24);
            assert!(model.num_layers() > 2);
        }
        assert!(DynamicCase::MoeMixtral.uses_moe_cluster());
        assert!(DynamicCase::MixtureOfDepths.uses_moe_cluster());
        assert!(!DynamicCase::Pruning.uses_moe_cluster());
        assert_eq!(DynamicCase::Freezing.sota_label(), Some("Egeria"));
        assert_eq!(DynamicCase::Pruning.sota_label(), None);
    }

    #[test]
    fn balancer_kind_metadata() {
        assert!(BalancerKind::DiffusionByTime.is_dynamic());
        assert!(!BalancerKind::StaticMegatron.is_dynamic());
        assert_eq!(
            BalancerKind::PartitionByParam.objective(),
            BalanceObjective::ByParams
        );
        assert_eq!(
            BalancerKind::DiffusionByTime.objective(),
            BalanceObjective::ByTime
        );
        let labels: std::collections::HashSet<_> =
            BalancerKind::FIGURE3.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), BalancerKind::FIGURE3.len());
    }

    #[test]
    fn engines_are_built_for_every_case_and_balancer() {
        let scale = ExperimentScale::Smoke;
        for case in DynamicCase::ALL {
            let model = case.model(24);
            for kind in [
                BalancerKind::StaticMegatron,
                BalancerKind::Sota,
                BalancerKind::DiffusionByTime,
            ] {
                if kind == BalancerKind::Sota && case.sota_label().is_none() {
                    continue;
                }
                let mut engine = build_engine(case, &model, scale, kind, 7);
                let update = engine.step(0);
                assert_eq!(update.num_layers(), model.num_layers());
                update.validate().unwrap();
            }
        }
    }

    #[test]
    fn default_scale_early_exit_shows_dynmo_winning() {
        // The Default scale is needed here because early exit only
        // rebalances every ~100 iterations, which the 60-iteration smoke
        // scale never reaches.
        let config = CaseConfig::new(DynamicCase::EarlyExit, 24, ExperimentScale::Default);
        let static_run = run_configuration(&config, BalancerKind::StaticMegatron);
        let dynmo_run = run_configuration(&config, BalancerKind::PartitionByTime);
        assert!(
            dynmo_run.report.tokens_per_second > static_run.report.tokens_per_second,
            "dynmo {} vs static {}",
            dynmo_run.report.tokens_per_second,
            static_run.report.tokens_per_second
        );
        assert!(dynmo_run.report.rebalance_events > 0);
        assert_eq!(static_run.report.rebalance_events, 0);
    }

    #[test]
    fn schedules_thread_through_case_configs() {
        let base_config = CaseConfig::new(DynamicCase::EarlyExit, 24, ExperimentScale::Smoke);
        let zb_config = base_config.with_schedule(ScheduleKind::ZeroBubbleH1);
        assert_eq!(base_config.schedule, None);
        assert_eq!(zb_config.schedule, Some(ScheduleKind::ZeroBubbleH1));
        let base = run_configuration(&base_config, BalancerKind::StaticMegatron);
        let zb = run_configuration(&zb_config, BalancerKind::StaticMegatron);
        assert_eq!(base.schedule, ScheduleKind::OneFOneB);
        assert_eq!(zb.schedule, ScheduleKind::ZeroBubbleH1);
        // Same workload, stronger schedule: the bubble can only shrink.
        assert!(
            zb.report.average_bubble_ratio <= base.report.average_bubble_ratio + 1e-9,
            "ZB-H1 bubble {} vs 1F1B {}",
            zb.report.average_bubble_ratio,
            base.report.average_bubble_ratio
        );
    }

    #[test]
    fn sota_rows_run_the_zero_bubble_baseline_schedule() {
        // The paper compares against "almost zero-bubble" baselines: with
        // no pinned schedule the SoTA row runs ZB-H1...
        let config = CaseConfig::new(DynamicCase::EarlyExit, 24, ExperimentScale::Smoke);
        let sota = run_configuration(&config, BalancerKind::Sota);
        assert_eq!(sota.schedule, ScheduleKind::ZeroBubbleH1);
        // ...while DynMo rows run the paper's 1F1B default...
        let dynmo = run_configuration(&config, BalancerKind::PartitionByTime);
        assert_eq!(dynmo.schedule, ScheduleKind::OneFOneB);
        // ...and an explicit pin — even to 1F1B itself — wins everywhere,
        // SoTA row included.
        for pin in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let pinned = config.with_schedule(pin);
            assert_eq!(run_configuration(&pinned, BalancerKind::Sota).schedule, pin);
        }
    }

    #[test]
    fn headline_speedup_compares_best_dynamic_to_best_baseline() {
        let mk = |kind: BalancerKind, tps: f64| ConfigurationResult {
            balancer: kind,
            label: kind.label().to_string(),
            schedule: ScheduleKind::OneFOneB,
            report: {
                let config = CaseConfig::new(DynamicCase::EarlyExit, 24, ExperimentScale::Smoke);
                let mut r = run_configuration(&config, BalancerKind::StaticMegatron).report;
                r.tokens_per_second = tps;
                r
            },
        };
        let results = vec![
            mk(BalancerKind::StaticMegatron, 1000.0),
            mk(BalancerKind::Sota, 1200.0),
            mk(BalancerKind::PartitionByTime, 3000.0),
            mk(BalancerKind::DiffusionByTime, 2400.0),
        ];
        assert!((headline_speedup(&results) - 2.5).abs() < 1e-9);
        assert_eq!(headline_speedup(&[]), 0.0);
    }
}
