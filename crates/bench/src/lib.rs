//! # dynmo-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! DynMo paper (see the experiment index in `DESIGN.md`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_idleness` | Figure 1 — average GPU idleness per dynamic-model scheme |
//! | `fig3_throughput` | Figure 3 — end-to-end training throughput and speedups |
//! | `fig4_repack` | Figure 4 (left/middle/bottom) — re-packing to fewer GPUs |
//! | `fig4_overhead` | Figure 4 (right) — load-balancing overhead breakdown |
//! | `lemma2_convergence` | Lemma 2 — diffusion convergence rounds vs the Õ(N²) bound |
//! | `spmm_crossover` | §4.2.2 — Sputnik vs cuBLAS vs cuSPARSE crossover |
//! | `fault_tolerance` | Beyond the paper — recovery time vs checkpoint interval vs world size |
//! | `pipeline_sweep` | Beyond the paper — rayon-parallel (schedule × p × m × imbalance) bubble grid |
//! | `composite_sweep` | Beyond the paper — stacked-mechanism (stack × balancer × schedule) grid with crash/recovery checks |
//! | `serving_sweep` | Beyond the paper — continuous-batching inference (trace × early-exit × balancer × elasticity) SLO grid |
//! | `bench_pool` | Beyond the paper — work-stealing pool wall-clock (sweep bins and the sharded Kahn engine at 1 vs host threads), written to `results/BENCH_pool.json` |
//! | `hetero_sweep` | Beyond the paper — fig3-style margin comparison on a uniform vs 3-generation (H100/A100/V100) cluster, written to `results/hetero_sweep.json` |
//! | `fleet_sweep` | Beyond the paper — closed-loop fleet controller (elastic training + multi-tenant serving on one pool) vs a static GPU split, written to `results/BENCH_fleet.json` |
//!
//! Each binary accepts `--scale {smoke|default|paper}` to trade fidelity for
//! run time: `paper` uses the full 10,000-iteration schedules and the
//! 720-GPU / 128-GPU cluster shapes; `default` keeps the cluster shapes but
//! compresses the schedules into a few hundred iterations (the throughput
//! comparisons are steady-state properties, so the shape of the results is
//! preserved); `smoke` is a seconds-long sanity run used by CI.

#![warn(missing_docs)]

pub mod cases;
pub mod composite;
pub mod fleet;
pub mod hetero;
pub mod scale;
pub mod serving;
pub mod sweep;
pub mod table;

pub use cases::{
    build_engine, headline_speedup, reference_throughput, run_comparison, run_configuration,
    BalancerKind, CaseConfig, ConfigurationResult, DynamicCase,
};
pub use composite::{
    composite_grid, run_composite_cell, run_composite_sweep, standard_stacks, CompositeBalancer,
    CompositeCase, CompositeCell, Mechanism, StackSpec,
};
pub use fleet::{
    fleet_policy, run_closed_cell, run_fleet_sweep, run_static_cell, FleetCellReport,
    FleetSweepConfig, FleetSweepReport, FleetTenantOutcome,
};
pub use hetero::{
    run_hetero_cell, run_hetero_sweep, ClusterFlavor, HeteroConfiguration, HeteroMargin, HeteroRow,
    HeteroSweepReport, HETERO_CASES,
};
pub use scale::{ExperimentScale, ScaledSchedules};
pub use serving::{
    run_serving_cell, run_serving_cell_recorded, run_serving_sweep, ServingCase, ServingCell,
    ServingSweepConfig,
};
pub use sweep::{
    run_cell, run_cell_recorded, run_sweep, run_sweep_recorded, SweepCase, SweepCell, SweepConfig,
};
pub use table::{dump_json, fmt, pct, Table};
