//! Composite-dynamics sweep: stacked mechanisms × balancer × schedule.
//!
//! The paper evaluates the six dynamism cases one at a time; real dynamic
//! LLMs stack them.  This module fans a grid of 2- and 3-mechanism stacks
//! (built with [`ComposedEngine`](dynmo_dynamics::ComposedEngine)) across
//! both balancer families and the 1F1B / ZB-H1 schedules with rayon, and —
//! because composite runs are exactly the ones a long training campaign
//! cares about recovering — re-runs every cell through the checkpoint →
//! crash → resume harness and records whether the recovered trajectory is
//! bit-identical to the failure-free one.

use dynmo_core::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
use dynmo_core::composite::{run_composite_with_recovery, CompositeRunSpec};
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_core::trainer::TrainerConfig;
use dynmo_dynamics::{
    DynamismEngine, EarlyExitEngine, EarlyExitMethod, FreezingEngine, GradualPruningEngine,
    MoeEngine, RoutingStrategy,
};
use dynmo_model::{ClusterConfig, Model, ModelPreset};
use dynmo_pipeline::ScheduleKind;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scale::ExperimentScale;

/// One mechanism of a stack (the subset of the paper's cases the standard
/// composite grid draws from; MoE implies the Mixtral model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Token-choice MoE routing skew (requires an MoE model).
    Moe,
    /// Gradual global magnitude pruning.
    Pruning,
    /// Adaptive layer freezing.
    Freezing,
    /// Confidence-based early exit of tokens.
    EarlyExit,
}

impl Mechanism {
    /// Short label used in stack names.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::Moe => "moe",
            Mechanism::Pruning => "pruning",
            Mechanism::Freezing => "freezing",
            Mechanism::EarlyExit => "early-exit",
        }
    }
}

/// A named stack of mechanisms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackSpec {
    /// The mechanisms, in stack order.
    pub mechanisms: Vec<Mechanism>,
    /// Base RNG seed; mechanism `i` is seeded with `seed + i`.
    pub seed: u64,
}

impl StackSpec {
    /// `"moe+pruning+early-exit"`-style label.
    pub fn label(&self) -> String {
        self.mechanisms
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Whether the stack needs the MoE (Mixtral) model.
    pub fn needs_moe_model(&self) -> bool {
        self.mechanisms.contains(&Mechanism::Moe)
    }

    /// The model this stack trains: Mixtral when an MoE member is present,
    /// a GPT otherwise.
    pub fn model(&self, gpt_layers: usize) -> Model {
        if self.needs_moe_model() {
            Model::from_preset(ModelPreset::Mixtral8x7b)
        } else {
            Model::from_preset(ModelPreset::Gpt { layers: gpt_layers })
        }
    }

    /// Build the engine stack for `model` at `scale` (schedule-bearing
    /// mechanisms are compressed to the scale's iteration budget).
    pub fn build(
        &self,
        model: &Model,
        scale: ExperimentScale,
    ) -> Vec<Box<dyn DynamismEngine + Send>> {
        let schedules = scale.schedules();
        self.mechanisms
            .iter()
            .enumerate()
            .map(|(i, mechanism)| -> Box<dyn DynamismEngine + Send> {
                let seed = self.seed + i as u64;
                match mechanism {
                    Mechanism::Moe => Box::new(MoeEngine::new(
                        model,
                        RoutingStrategy::TokenChoiceAuxLoss,
                        seed,
                    )),
                    Mechanism::Pruning => {
                        Box::new(GradualPruningEngine::new(model, schedules.pruning, seed))
                    }
                    Mechanism::Freezing => {
                        Box::new(FreezingEngine::new(model, schedules.freezing, seed))
                    }
                    Mechanism::EarlyExit => {
                        Box::new(EarlyExitEngine::new(model, EarlyExitMethod::Calm, seed))
                    }
                }
            })
            .collect()
    }
}

/// The standard composite grid: 2- and 3-mechanism stacks covering every
/// pairing family (MoE×pruning, MoE×exit, pruning×freezing, freezing×exit)
/// plus the two headline 3-stacks — including the acceptance scenario
/// `moe+pruning+early-exit`.
pub fn standard_stacks() -> Vec<StackSpec> {
    let stacks: Vec<Vec<Mechanism>> = vec![
        vec![Mechanism::Moe, Mechanism::Pruning],
        vec![Mechanism::Moe, Mechanism::EarlyExit],
        vec![Mechanism::Pruning, Mechanism::Freezing],
        vec![Mechanism::Freezing, Mechanism::EarlyExit],
        vec![Mechanism::Moe, Mechanism::Pruning, Mechanism::EarlyExit],
        vec![
            Mechanism::Pruning,
            Mechanism::Freezing,
            Mechanism::EarlyExit,
        ],
    ];
    stacks
        .into_iter()
        .map(|mechanisms| StackSpec {
            mechanisms,
            seed: 1234,
        })
        .collect()
}

/// Which balancer family a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompositeBalancer {
    /// Centralized contiguous partitioning, by time.
    Partition,
    /// Decentralized diffusion, by time.
    Diffusion,
}

impl CompositeBalancer {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CompositeBalancer::Partition => "partition",
            CompositeBalancer::Diffusion => "diffusion",
        }
    }

    fn controller(&self) -> RebalanceController {
        match self {
            CompositeBalancer::Partition => RebalanceController::new(
                Box::new(PartitionBalancer::new()),
                BalanceObjective::ByTime,
                RebalancePolicy::dynamic(),
            ),
            CompositeBalancer::Diffusion => RebalanceController::new(
                Box::new(DiffusionBalancer::new()),
                BalanceObjective::ByTime,
                RebalancePolicy::dynamic(),
            ),
        }
    }
}

/// One cell of the composite grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeCase {
    /// The mechanism stack.
    pub stack: StackSpec,
    /// The balancer family.
    pub balancer: CompositeBalancer,
    /// The pipeline schedule.
    pub schedule: ScheduleKind,
}

/// The simulated outcome of one composite cell — one row of
/// `results/composite_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeCell {
    /// Stack label, e.g. `"moe+pruning+early-exit"`.
    pub stack: String,
    /// Number of stacked mechanisms.
    pub mechanisms: usize,
    /// Balancer label (`"partition"` / `"diffusion"`).
    pub balancer: String,
    /// Schedule label (`"1F1B"` / `"ZB-H1"`).
    pub schedule: String,
    /// Model trained (`"mixtral-8x7b"` / `"gpt"`).
    pub model: String,
    /// Pipeline stages.
    pub stages: usize,
    /// Training iterations simulated.
    pub iterations: u64,
    /// End-to-end throughput of the failure-free run, tokens/second.
    pub tokens_per_second: f64,
    /// Average pipeline bubble ratio.
    pub bubble_ratio: f64,
    /// Average per-worker idleness.
    pub average_idleness: f64,
    /// Mean Eq. 2 load imbalance over the run.
    pub mean_imbalance: f64,
    /// Rebalance events executed.
    pub rebalance_events: u64,
    /// Overhead fraction of total training time.
    pub overhead_fraction: f64,
    /// FNV-1a checksum of the failure-free run's simulated trajectory.
    pub trajectory_checksum: u64,
    /// Iteration the mid-run crash was injected at.
    pub killed_at: u64,
    /// Checkpoint iteration the recovery resumed from.
    pub resumed_from: u64,
    /// Whether the recovered run's trajectory matched the failure-free
    /// run's bit-for-bit.
    pub recovery_bit_identical: bool,
}

/// The composite grid for a scale: every standard stack × {Partition,
/// Diffusion} × {1F1B, ZB-H1}.
pub fn composite_grid(scale: ExperimentScale) -> Vec<CompositeCase> {
    let stacks = match scale {
        // Smoke: one 2-stack and the acceptance 3-stack keep CI fast.
        ExperimentScale::Smoke => {
            let all = standard_stacks();
            vec![all[2].clone(), all[4].clone()]
        }
        _ => standard_stacks(),
    };
    let mut cells = Vec::new();
    for stack in &stacks {
        for balancer in [CompositeBalancer::Partition, CompositeBalancer::Diffusion] {
            for schedule in [ScheduleKind::OneFOneB, ScheduleKind::ZeroBubbleH1] {
                cells.push(CompositeCase {
                    stack: stack.clone(),
                    balancer,
                    schedule,
                });
            }
        }
    }
    cells
}

fn composite_cluster(scale: ExperimentScale, needs_moe: bool) -> ClusterConfig {
    if needs_moe {
        scale.moe_cluster()
    } else {
        scale.gpt_cluster()
    }
}

/// Run one composite cell: the failure-free run plus the crash/recovery
/// session, both through the same trainer configuration.
pub fn run_composite_cell(case: &CompositeCase, scale: ExperimentScale) -> CompositeCell {
    let model = case.stack.model(32);
    let cluster = composite_cluster(scale, case.stack.needs_moe_model());
    let config = TrainerConfig {
        schedule: case.schedule,
        ..TrainerConfig::paper_defaults(cluster.clone(), scale.iterations())
    };
    let iterations = config.num_iterations;
    // Checkpoint four times per run; kill two thirds of the way through,
    // off the checkpoint grid, so the recovery genuinely replays.
    let checkpoint_interval = (iterations / 4).max(1);
    let kill_at = (iterations * 2 / 3)
        .max(checkpoint_interval)
        .min(iterations - 1);

    let make_controller = || case.balancer.controller();
    let make_stack = || case.stack.build(&model, scale);
    let spec = CompositeRunSpec {
        model: &model,
        config: &config,
        make_controller: &make_controller,
        make_stack: &make_stack,
    };
    let report = run_composite_with_recovery(&spec, checkpoint_interval, kill_at)
        .expect("composite recovery session failed");

    CompositeCell {
        stack: case.stack.label(),
        mechanisms: case.stack.mechanisms.len(),
        balancer: case.balancer.label().to_string(),
        schedule: case.schedule.label(),
        model: if case.stack.needs_moe_model() {
            "mixtral-8x7b".to_string()
        } else {
            "gpt".to_string()
        },
        stages: cluster.pipeline_stages,
        iterations,
        tokens_per_second: report.baseline.tokens_per_second,
        bubble_ratio: report.baseline.average_bubble_ratio,
        average_idleness: report.baseline.average_idleness,
        mean_imbalance: report.baseline.mean_imbalance,
        rebalance_events: report.baseline.rebalance_events,
        overhead_fraction: report.baseline.overhead_fraction,
        trajectory_checksum: report.baseline.trajectory_checksum,
        killed_at: report.killed_at,
        resumed_from: report.resumed_from,
        recovery_bit_identical: report.bit_identical,
    }
}

/// Run the whole composite grid, fanning cells across rayon's thread pool;
/// rows come back in grid order (stack-major).
pub fn run_composite_sweep(scale: ExperimentScale) -> Vec<CompositeCell> {
    let cells = composite_grid(scale);
    cells
        .par_iter()
        .map(|case| run_composite_cell(case, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_stacks_cover_2_and_3_mechanism_combinations() {
        let stacks = standard_stacks();
        assert!(stacks.iter().any(|s| s.mechanisms.len() == 2));
        assert!(stacks.iter().any(|s| s.mechanisms.len() == 3));
        // The acceptance stack is present.
        assert!(stacks.iter().any(|s| s.label() == "moe+pruning+early-exit"));
        // Labels are unique.
        let labels: std::collections::HashSet<String> = stacks.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), stacks.len());
    }

    #[test]
    fn smoke_grid_covers_both_balancers_and_schedules() {
        let grid = composite_grid(ExperimentScale::Smoke);
        assert_eq!(grid.len(), 2 * 2 * 2);
        assert!(grid
            .iter()
            .any(|c| c.balancer == CompositeBalancer::Partition));
        assert!(grid
            .iter()
            .any(|c| c.balancer == CompositeBalancer::Diffusion));
        assert!(grid
            .iter()
            .any(|c| c.schedule == ScheduleKind::ZeroBubbleH1));
        assert!(grid
            .iter()
            .any(|c| c.stack.label() == "moe+pruning+early-exit"));
    }

    #[test]
    fn one_smoke_cell_runs_and_recovers_bit_identically() {
        let grid = composite_grid(ExperimentScale::Smoke);
        let case = grid
            .iter()
            .find(|c| {
                c.stack.label() == "moe+pruning+early-exit"
                    && c.balancer == CompositeBalancer::Partition
                    && c.schedule == ScheduleKind::OneFOneB
            })
            .unwrap();
        let cell = run_composite_cell(case, ExperimentScale::Smoke);
        assert_eq!(cell.mechanisms, 3);
        assert_eq!(cell.model, "mixtral-8x7b");
        assert!(cell.tokens_per_second > 0.0);
        assert!(cell.rebalance_events > 0);
        assert!(cell.recovery_bit_identical);
        assert!(cell.resumed_from <= cell.killed_at);
    }
}
