//! Parallel inference-serving sweeps.
//!
//! Fans a `(trace × early-exit × balancer × {fixed, elastic})` grid across
//! threads with rayon: every cell generates a deterministic request trace,
//! serves it through `dynmo-serve`'s continuous-batching engine, and
//! reports SLO metrics (p50/p95/p99 TTFT and TPOT, goodput) plus the
//! autoscaler's scaling timeline.  Fixed and elastic cells on the same
//! trace see byte-identical traffic, so the artifact directly answers
//! "what did autoscaling buy on this trace?" —
//! `results/serving_sweep.json`, one object per cell (schema in
//! `crates/bench/README.md`).

use std::sync::Arc;

use dynmo_dynamics::{DynamismEngine, EarlyExitEngine, EarlyExitMethod};
use dynmo_model::Model;
use dynmo_serve::{
    ArrivalProcess, AutoscalerConfig, LengthModel, RequestTrace, ServeBalancerKind, ServingConfig,
    ServingEngine,
};
use dynmo_telemetry::{NullRecorder, Recorder};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scale::ExperimentScale;

/// The grid a serving sweep covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSweepConfig {
    /// Arrival processes to serve (the trace axis).
    pub processes: Vec<ArrivalProcess>,
    /// Trace length in (simulated) seconds.
    pub duration: f64,
    /// Early-exit axis: serve with and/or without CALM early exit.
    pub early_exit: Vec<bool>,
    /// Balancer families laying out replicas.
    pub balancers: Vec<ServeBalancerKind>,
    /// Capacity axis: fixed single replica and/or elastic (autoscaled).
    pub elastic: Vec<bool>,
    /// Replica ceiling for elastic cells.
    pub max_replicas: usize,
    /// Trace-generation seed (shared by every cell on the same process, so
    /// fixed and elastic cells compare on identical traffic).
    pub seed: u64,
}

impl ServingSweepConfig {
    /// The sweep grid for a given experiment scale.  All scales cover
    /// three traces × early-exit on/off × fixed/elastic; larger scales add
    /// the diffusion balancer and longer traces.
    pub fn for_scale(scale: ExperimentScale) -> Self {
        let (duration, balancers) = match scale {
            ExperimentScale::Smoke => (40.0, vec![ServeBalancerKind::Partition]),
            ExperimentScale::Default => (
                60.0,
                vec![ServeBalancerKind::Partition, ServeBalancerKind::Diffusion],
            ),
            ExperimentScale::Paper => (
                120.0,
                vec![ServeBalancerKind::Partition, ServeBalancerKind::Diffusion],
            ),
        };
        ServingSweepConfig {
            processes: vec![
                ArrivalProcess::Poisson { rate: 5.0 },
                ArrivalProcess::Bursty {
                    base_rate: 2.0,
                    spike_rate: 30.0,
                    spike_start: duration * 0.25,
                    spike_duration: duration * 0.4,
                },
                ArrivalProcess::Diurnal {
                    mean_rate: 5.0,
                    amplitude: 0.9,
                    period: duration * 0.8,
                },
            ],
            duration,
            early_exit: vec![false, true],
            balancers,
            elastic: vec![false, true],
            max_replicas: 4,
            seed: 0x5e11_ce11,
        }
    }

    /// The cartesian product of the grid's axes.
    pub fn cells(&self) -> Vec<ServingCase> {
        let mut cases = Vec::new();
        for &process in &self.processes {
            for &early_exit in &self.early_exit {
                for &balancer in &self.balancers {
                    for &elastic in &self.elastic {
                        cases.push(ServingCase {
                            process,
                            duration: self.duration,
                            early_exit,
                            balancer,
                            elastic,
                            max_replicas: self.max_replicas,
                            seed: self.seed,
                        });
                    }
                }
            }
        }
        cases
    }
}

/// One point of the serving grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingCase {
    /// Arrival process generating the trace.
    pub process: ArrivalProcess,
    /// Trace length in seconds.
    pub duration: f64,
    /// Whether CALM early exit runs in the serving engine.
    pub early_exit: bool,
    /// Balancer family laying out replicas.
    pub balancer: ServeBalancerKind,
    /// Whether the SLO-driven autoscaler is attached.
    pub elastic: bool,
    /// Replica ceiling when elastic.
    pub max_replicas: usize,
    /// Trace seed.
    pub seed: u64,
}

/// The served outcome of one sweep point — one row of the JSON artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingCell {
    /// Trace label (`poisson` / `bursty` / `diurnal`).
    pub trace: String,
    /// CALM early exit on?
    pub early_exit: bool,
    /// Balancer label (`partition` / `diffusion`).
    pub balancer: String,
    /// Autoscaler attached?
    pub elastic: bool,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests served (always equals `requests`).
    pub completed: usize,
    /// Engine steps executed.
    pub engine_steps: u64,
    /// Time the last request completed, in seconds.
    pub makespan: f64,
    /// Time-to-first-token percentiles, in seconds.
    pub ttft_p50: f64,
    /// 95th-percentile TTFT.
    pub ttft_p95: f64,
    /// 99th-percentile TTFT.
    pub ttft_p99: f64,
    /// Time-per-output-token percentiles, in seconds.
    pub tpot_p50: f64,
    /// 95th-percentile TPOT.
    pub tpot_p95: f64,
    /// 99th-percentile TPOT.
    pub tpot_p99: f64,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// SLO-met completions per second.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Output tokens decoded per second.
    pub output_tokens_per_second: f64,
    /// Time-weighted mean GPUs allocated.
    pub mean_gpus: f64,
    /// Largest replica count ever live.
    pub peak_replicas: usize,
    /// Replicas added by the autoscaler.
    pub scale_out_events: usize,
    /// Replicas released by the autoscaler.
    pub scale_in_events: usize,
    /// Per-replica KV capacity in tokens.
    pub kv_capacity_tokens: usize,
    /// Peak single-replica KV reservation in tokens.
    pub peak_kv_tokens: usize,
}

fn sweep_lengths() -> LengthModel {
    LengthModel {
        mean_prompt_tokens: 256,
        mean_output_tokens: 64,
        spread: 0.5,
    }
}

/// Serve one sweep point.
pub fn run_serving_cell(case: &ServingCase) -> ServingCell {
    run_serving_cell_recorded(case, Arc::new(NullRecorder))
}

/// Serve one sweep point with a telemetry recorder attached (engine steps
/// become per-replica spans, scale events become markers).  The returned
/// cell is byte-identical to [`run_serving_cell`]'s.
pub fn run_serving_cell_recorded(case: &ServingCase, recorder: Arc<dyn Recorder>) -> ServingCell {
    let trace = RequestTrace::generate(&case.process, case.duration, &sweep_lengths(), case.seed);
    let mut config = ServingConfig::small(1);
    config.balancer = case.balancer;
    if case.elastic {
        config.max_replicas = case.max_replicas;
        let ttft_target = config.slo.ttft;
        config = config.with_autoscaler(AutoscalerConfig::responsive(
            ttft_target,
            1,
            case.max_replicas,
        ));
    }
    let mut engine_storage;
    let engine: Option<&mut dyn DynamismEngine> = if case.early_exit {
        let model = Model::from_preset(config.preset);
        engine_storage = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, case.seed ^ 0xee);
        Some(&mut engine_storage)
    } else {
        None
    };
    let report = ServingEngine::new(config)
        .expect("sweep cell config is valid")
        .with_recorder(recorder)
        .serve(&trace, engine);
    ServingCell {
        trace: trace.label.clone(),
        early_exit: case.early_exit,
        balancer: case.balancer.label().to_string(),
        elastic: case.elastic,
        requests: report.requests,
        completed: report.completed,
        engine_steps: report.engine_steps,
        makespan: report.makespan,
        ttft_p50: report.ttft.p50,
        ttft_p95: report.ttft.p95,
        ttft_p99: report.ttft.p99,
        tpot_p50: report.tpot.p50,
        tpot_p95: report.tpot.p95,
        tpot_p99: report.tpot.p99,
        latency_p99: report.latency.p99,
        throughput_rps: report.throughput_rps,
        goodput_rps: report.goodput_rps,
        slo_attainment: report.slo_attainment(),
        output_tokens_per_second: report.output_tokens_per_second,
        mean_gpus: report.mean_gpus,
        peak_replicas: report.peak_replicas,
        scale_out_events: report.scale_out_events(),
        scale_in_events: report.scale_in_events(),
        kv_capacity_tokens: report.kv_capacity_tokens,
        peak_kv_tokens: report.peak_kv_tokens,
    }
}

/// Run the whole grid, fanning the cells across rayon's thread pool, and
/// return the rows in grid order (trace-major, matching
/// [`ServingSweepConfig::cells`]).
pub fn run_serving_sweep(config: &ServingSweepConfig) -> Vec<ServingCell> {
    let cases = config.cells();
    cases.par_iter().map(run_serving_cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_the_acceptance_axes() {
        let config = ServingSweepConfig::for_scale(ExperimentScale::Smoke);
        let cells = config.cells();
        // ≥ 3 traces × early-exit on/off, each with fixed and elastic.
        assert_eq!(cells.len(), 3 * 2 * 2);
        let traces: std::collections::HashSet<&str> =
            config.processes.iter().map(|p| p.label()).collect();
        assert_eq!(traces.len(), 3);
    }

    #[test]
    fn a_single_cell_reports_complete_percentiles() {
        let case = ServingCase {
            process: ArrivalProcess::Poisson { rate: 3.0 },
            duration: 10.0,
            early_exit: false,
            balancer: ServeBalancerKind::Partition,
            elastic: false,
            max_replicas: 2,
            seed: 5,
        };
        let cell = run_serving_cell(&case);
        assert_eq!(cell.completed, cell.requests);
        assert!(cell.requests > 0);
        assert!(cell.ttft_p50 > 0.0 && cell.ttft_p50 <= cell.ttft_p99);
        assert!(cell.tpot_p50 > 0.0 && cell.tpot_p50 <= cell.tpot_p99);
        assert!(cell.latency_p99 >= cell.ttft_p99);
        assert!(cell.throughput_rps > 0.0);
        assert_eq!(cell.scale_out_events, 0);
        assert!(cell.peak_kv_tokens <= cell.kv_capacity_tokens);
    }

    #[test]
    fn the_elastic_bursty_cell_beats_its_fixed_twin() {
        // The acceptance pair: same bursty trace, fixed vs elastic.
        let process = ArrivalProcess::Bursty {
            base_rate: 2.0,
            spike_rate: 30.0,
            spike_start: 10.0,
            spike_duration: 16.0,
        };
        let base = ServingCase {
            process,
            duration: 40.0,
            early_exit: false,
            balancer: ServeBalancerKind::Partition,
            elastic: false,
            max_replicas: 4,
            seed: 0x5e11_ce11,
        };
        let fixed = run_serving_cell(&base);
        let elastic = run_serving_cell(&ServingCase {
            elastic: true,
            ..base
        });
        assert!(elastic.scale_out_events >= 1);
        assert!(elastic.ttft_p99 < fixed.ttft_p99);
        assert!(elastic.mean_gpus > fixed.mean_gpus);
    }
}
