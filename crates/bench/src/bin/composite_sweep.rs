//! Composite-dynamics sweep — stacked mechanisms through both balancers.
//!
//! Fans a grid of 2- and 3-mechanism stacks (MoE routing skew, gradual
//! pruning, layer freezing, early exit — composed multiplicatively by
//! `ComposedEngine`) × {Partition, Diffusion} × {1F1B, ZB-H1} across
//! threads with rayon.  Every cell runs a failure-free training session
//! *and* a checkpoint → crash → resume session, and records whether the
//! recovered trajectory is bit-identical to the failure-free one.  Rows are
//! written to `results/composite_sweep.json` (schema in
//! `crates/bench/README.md`).  Run with `--scale {smoke|default|paper}`.

use dynmo_bench::{dump_json, fmt, pct, run_composite_sweep, ExperimentScale, Table};

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Composite dynamics sweep (scale: {scale:?})\n");

    let cells = run_composite_sweep(scale);

    let mut table = Table::new(
        "Composite stacks — failure-free throughput and recovery fidelity",
        &[
            "Stack",
            "Balancer",
            "Schedule",
            "Tokens/s",
            "Bubble",
            "Rebalances",
            "Recovery",
        ],
    );
    for cell in &cells {
        table.add_row(vec![
            cell.stack.clone(),
            cell.balancer.clone(),
            cell.schedule.clone(),
            fmt(cell.tokens_per_second, 0),
            pct(cell.bubble_ratio),
            cell.rebalance_events.to_string(),
            if cell.recovery_bit_identical {
                "bit-identical".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    table.print();

    let recovered = cells.iter().filter(|c| c.recovery_bit_identical).count();
    println!(
        "\n{recovered}/{} cells replayed their mid-run crash bit-identically.",
        cells.len()
    );
    assert_eq!(
        recovered,
        cells.len(),
        "some composite cells did not recover bit-identically"
    );

    if let Some(path) = dump_json("composite_sweep", &cells) {
        println!("({} sweep rows written to {})", cells.len(), path.display());
    }
}
