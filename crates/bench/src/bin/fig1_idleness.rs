//! Figure 1 — average GPU idleness per iteration for dynamic GPT models.
//!
//! For each of the six dynamic-model schemes the paper reports how idle the
//! pipeline's GPUs are when *no* dynamic rebalancing is applied (static
//! Megatron-style partitioning), compared against the scheme's own baseline
//! (dense attention, no early exit, static dense model, ...).  Run with
//! `--scale {smoke|default|paper}`.

use dynmo_bench::{
    dump_json, pct, run_configuration, BalancerKind, CaseConfig, DynamicCase, ExperimentScale,
    Table,
};
use dynmo_pipeline::ScheduleKind;
use serde::Serialize;

#[derive(Serialize)]
struct IdlenessRow {
    case: String,
    configuration: String,
    layers: usize,
    idleness: f64,
    bubble_ratio: f64,
    imbalance: f64,
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Figure 1: average GPU idleness (scale: {scale:?})\n");

    let mut rows: Vec<IdlenessRow> = Vec::new();
    let mut table = Table::new(
        "Figure 1 — average idleness per iteration (static partitioning)",
        &[
            "Case",
            "Configuration",
            "Layers",
            "Idleness",
            "Bubble ratio",
            "ΔL (Eq.2)",
        ],
    );

    // MoE: Mixtral and LLaMA-MoE under their routers (no rebalancing).
    for case in [DynamicCase::MoeMixtral, DynamicCase::MoeLlama] {
        let config = CaseConfig::new(case, 32, scale);
        let result = run_configuration(&config, BalancerKind::StaticMegatron);
        push(
            &mut table,
            &mut rows,
            case,
            "token-choice (aux loss)",
            32,
            &result.report,
        );
    }

    // GPT cases: sweep the paper's layer counts; report the dynamic scheme
    // under static partitioning and, where it exists, the scheme-free
    // baseline for contrast.
    let layer_counts = layer_sweep(scale);
    for case in DynamicCase::GPT_CASES {
        for &layers in &layer_counts {
            let config = CaseConfig::new(case, layers, scale);
            let dynamic = run_configuration(&config, BalancerKind::StaticMegatron);
            push(
                &mut table,
                &mut rows,
                case,
                "static partitioning",
                layers,
                &dynamic.report,
            );
            if case.sota_label().is_some() {
                let baseline = run_configuration(&config, BalancerKind::Sota);
                push(
                    &mut table,
                    &mut rows,
                    case,
                    case.sota_label().unwrap_or("baseline"),
                    layers,
                    &baseline.report,
                );
            }
        }
    }

    // Schedule ablation: the same dynamic workload under all four pipeline
    // schedules (static partitioning).  This is the bubble a balancer
    // starts from — the paper's Figure 1 baseline runs the strongest
    // ("almost zero-bubble") member of this family.
    for schedule in ScheduleKind::ALL {
        let config = CaseConfig::new(DynamicCase::EarlyExit, 24, scale).with_schedule(schedule);
        let result = run_configuration(&config, BalancerKind::StaticMegatron);
        push(
            &mut table,
            &mut rows,
            DynamicCase::EarlyExit,
            &schedule.label(),
            24,
            &result.report,
        );
    }

    table.print();
    if let Some(path) = dump_json("fig1_idleness", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}

fn layer_sweep(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Smoke => vec![24],
        _ => vec![24, 32, 40, 48],
    }
}

fn push(
    table: &mut Table,
    rows: &mut Vec<IdlenessRow>,
    case: DynamicCase,
    configuration: &str,
    layers: usize,
    report: &dynmo_core::report::TrainingReport,
) {
    table.add_row(vec![
        case.label().to_string(),
        configuration.to_string(),
        layers.to_string(),
        pct(report.average_idleness),
        pct(report.average_bubble_ratio),
        format!("{:.2}", report.mean_imbalance),
    ]);
    rows.push(IdlenessRow {
        case: case.label().to_string(),
        configuration: configuration.to_string(),
        layers,
        idleness: report.average_idleness,
        bubble_ratio: report.average_bubble_ratio,
        imbalance: report.mean_imbalance,
    });
}
