//! Figure 3 — end-to-end training throughput for the six dynamic-model
//! cases, comparing static Megatron-LM / DeepSpeed (and the case's SoTA
//! system where one exists) against the four DynMo variants.
//!
//! Flags:
//! * `--scale {smoke|default|paper}` — experiment size (default: `default`).
//! * `--ablate-repack` — additionally run the best DynMo variant with
//!   re-packing enabled, reproducing the paper's claim that re-packing adds
//!   only ~4–11% on top of rebalancing (§3.4.2 / §5.1).

use dynmo_bench::cases::reference_throughput;
use dynmo_bench::{
    dump_json, fmt, headline_speedup, run_comparison, run_configuration, BalancerKind, CaseConfig,
    ConfigurationResult, DynamicCase, ExperimentScale, Table,
};
use serde::Serialize;

#[derive(Serialize)]
struct ThroughputRow {
    case: String,
    layers: usize,
    configuration: String,
    tokens_per_second: f64,
    speedup_vs_best_baseline: f64,
    bubble_ratio: f64,
    overhead_fraction: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_process_args();
    let ablate_repack = args.iter().any(|a| a == "--ablate-repack");
    println!("Figure 3: end-to-end training throughput (scale: {scale:?})\n");

    let mut all_rows: Vec<ThroughputRow> = Vec::new();

    // MoE panels (Mixtral 8x7B and LLaMA-MoE-3.5B).
    for case in [DynamicCase::MoeMixtral, DynamicCase::MoeLlama] {
        let config = CaseConfig::new(case, 32, scale);
        let results = run_comparison(&config);
        print_case_table(case, 32, &results, &mut all_rows);
    }

    // GPT panels over the layer sweep.
    let layer_counts = layer_sweep(scale);
    for case in DynamicCase::GPT_CASES {
        for &layers in &layer_counts {
            let config = CaseConfig::new(case, layers, scale);
            let results = run_comparison(&config);
            print_case_table(case, layers, &results, &mut all_rows);
        }
    }

    if ablate_repack {
        ablation_repack(scale, &mut all_rows);
    }

    if let Some(path) = dump_json("fig3_throughput", &all_rows) {
        println!("(raw rows written to {})", path.display());
    }
}

fn layer_sweep(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Smoke => vec![24],
        _ => vec![24, 32, 40, 48],
    }
}

fn print_case_table(
    case: DynamicCase,
    layers: usize,
    results: &[ConfigurationResult],
    all_rows: &mut Vec<ThroughputRow>,
) {
    let reference = reference_throughput(results);
    let mut table = Table::new(
        &format!("{} — {} layers", case.label(), layers),
        &[
            "Configuration",
            "Tokens/sec",
            "Speedup",
            "Bubble",
            "Overhead",
        ],
    );
    for result in results {
        let speedup = if reference > 0.0 {
            result.report.tokens_per_second / reference
        } else {
            0.0
        };
        table.add_row(vec![
            result.label.clone(),
            fmt(result.report.tokens_per_second, 0),
            format!("{speedup:.2}x"),
            format!("{:.1}%", result.report.average_bubble_ratio * 100.0),
            format!("{:.2}%", result.report.overhead_fraction * 100.0),
        ]);
        all_rows.push(ThroughputRow {
            case: case.label().to_string(),
            layers,
            configuration: result.label.clone(),
            tokens_per_second: result.report.tokens_per_second,
            speedup_vs_best_baseline: speedup,
            bubble_ratio: result.report.average_bubble_ratio,
            overhead_fraction: result.report.overhead_fraction,
        });
    }
    table.print();
    println!(
        "  headline speedup (best DynMo / best non-DynMo): {:.2}x\n",
        headline_speedup(results)
    );
}

fn ablation_repack(scale: ExperimentScale, all_rows: &mut Vec<ThroughputRow>) {
    println!("Re-packing ablation (best DynMo variant, with vs without re-packing):\n");
    let mut table = Table::new(
        "ABL-REPACK — re-packing on top of rebalancing",
        &[
            "Case",
            "Without re-pack (tok/s)",
            "With re-pack (tok/s)",
            "Delta",
            "Avg GPUs (w/ re-pack)",
        ],
    );
    for case in [
        DynamicCase::Pruning,
        DynamicCase::Freezing,
        DynamicCase::EarlyExit,
    ] {
        let without = run_configuration(
            &CaseConfig::new(case, 24, scale),
            BalancerKind::PartitionByTime,
        );
        let with = run_configuration(
            &CaseConfig {
                repack: true,
                ..CaseConfig::new(case, 24, scale)
            },
            BalancerKind::PartitionByTime,
        );
        let delta = with.report.tokens_per_second / without.report.tokens_per_second - 1.0;
        table.add_row(vec![
            case.label().to_string(),
            fmt(without.report.tokens_per_second, 0),
            fmt(with.report.tokens_per_second, 0),
            format!("{:+.1}%", delta * 100.0),
            format!("{:.1}", with.report.average_active_workers),
        ]);
        all_rows.push(ThroughputRow {
            case: format!("{} (repack ablation)", case.label()),
            layers: 24,
            configuration: "DynMo (Partition, by Time) + re-pack".to_string(),
            tokens_per_second: with.report.tokens_per_second,
            speedup_vs_best_baseline: 1.0 + delta,
            bubble_ratio: with.report.average_bubble_ratio,
            overhead_fraction: with.report.overhead_fraction,
        });
    }
    table.print();
}
