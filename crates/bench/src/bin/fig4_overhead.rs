//! Figure 4 (right) — load-balancing overhead breakdown.
//!
//! For every dynamic-model case the paper reports DynMo's total overhead as
//! a percentage of training time, broken into profiling, the balancing
//! algorithm, and layer migration, together with the rebalance frequency
//! used.  This binary reproduces that table with the DynMo (Partition, by
//! Time) configuration, plus a fourth *recovery* column — the resilience
//! subsystem's checkpoint-write cost, with periodic checkpointing enabled
//! at a tenth of the run length — which the paper does not have (the paper
//! assumes a reliable fleet).

use dynmo_bench::{
    dump_json, run_configuration, BalancerKind, CaseConfig, DynamicCase, ExperimentScale, Table,
};
use serde::Serialize;

#[derive(Serialize)]
struct OverheadRow {
    case: String,
    layers: usize,
    overhead_percent: f64,
    profiling_percent: f64,
    algorithm_percent: f64,
    migration_percent: f64,
    recovery_percent: f64,
    rebalance_events: u64,
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Figure 4 (right): load-balancing overhead breakdown (scale: {scale:?})\n");

    let layer_counts = match scale {
        ExperimentScale::Smoke => vec![24],
        _ => vec![24, 32, 40, 48],
    };

    let mut rows: Vec<OverheadRow> = Vec::new();
    let mut table = Table::new(
        "DynMo overhead as a fraction of training time",
        &[
            "Case",
            "Layers/Model",
            "Total",
            "Profiling",
            "Algorithm",
            "Migration",
            "Recovery",
            "Rebalances",
        ],
    );

    let checkpoint_interval = (scale.iterations() / 10).max(1);
    for case in [DynamicCase::MoeMixtral, DynamicCase::MoeLlama] {
        let config = CaseConfig::new(case, 32, scale).with_checkpointing(checkpoint_interval);
        let result = run_configuration(&config, BalancerKind::PartitionByTime);
        add_row(&mut table, &mut rows, case, 32, &result.report);
    }

    for case in DynamicCase::GPT_CASES {
        for &layers in &layer_counts {
            let config =
                CaseConfig::new(case, layers, scale).with_checkpointing(checkpoint_interval);
            let result = run_configuration(&config, BalancerKind::PartitionByTime);
            add_row(&mut table, &mut rows, case, layers, &result.report);
        }
    }

    table.print();
    if let Some(path) = dump_json("fig4_overhead", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}

fn add_row(
    table: &mut Table,
    rows: &mut Vec<OverheadRow>,
    case: DynamicCase,
    layers: usize,
    report: &dynmo_core::report::TrainingReport,
) {
    let total = report.total_time.max(f64::MIN_POSITIVE);
    let overhead = &report.overhead;
    table.add_row(vec![
        case.label().to_string(),
        layers.to_string(),
        format!("{:.2}%", report.overhead_fraction * 100.0),
        format!("{:.2}%", overhead.profiling / total * 100.0),
        format!("{:.3}%", overhead.algorithm / total * 100.0),
        format!("{:.3}%", overhead.migration / total * 100.0),
        format!("{:.3}%", overhead.recovery / total * 100.0),
        report.rebalance_events.to_string(),
    ]);
    rows.push(OverheadRow {
        case: case.label().to_string(),
        layers,
        overhead_percent: report.overhead_fraction * 100.0,
        profiling_percent: overhead.profiling / total * 100.0,
        algorithm_percent: overhead.algorithm / total * 100.0,
        migration_percent: overhead.migration / total * 100.0,
        recovery_percent: overhead.recovery / total * 100.0,
        rebalance_events: report.rebalance_events,
    });
}
