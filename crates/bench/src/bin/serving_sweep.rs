//! Inference-serving sweep — continuous batching with SLO metrics and
//! elastic autoscaling.
//!
//! Fans a `(trace × early-exit × balancer × {fixed, elastic})` grid across
//! threads (rayon) through `dynmo-serve`'s continuous-batching engine and
//! writes one JSON artifact (`results/serving_sweep.json`).  Every elastic
//! cell sees byte-identical traffic to its fixed twin; the binary asserts
//! that at least one elastic cell recorded a scale-out *and* beat its twin
//! on p99 TTFT — the serving analogue of the paper's elasticity claim.
//! Run with `--scale {smoke|default|paper}`.

use dynmo_bench::serving::{run_serving_sweep, ServingCell, ServingSweepConfig};
use dynmo_bench::{dump_json, fmt, pct, ExperimentScale, Table};

fn main() {
    let scale = ExperimentScale::from_process_args();
    let config = ServingSweepConfig::for_scale(scale);
    println!(
        "Inference serving sweep (scale: {scale:?}, {} cells)\n",
        config.cells().len()
    );

    let cells = run_serving_sweep(&config);

    let mut table = Table::new(
        "Serving sweep — p99 TTFT / TPOT by trace (partition balancer)",
        &[
            "Trace",
            "Exit",
            "Elastic",
            "TTFT p50",
            "TTFT p99",
            "TPOT p99",
            "Goodput",
            "SLO",
            "GPUs",
            "Scale +/-",
        ],
    );
    for cell in cells.iter().filter(|c| c.balancer == "partition") {
        table.add_row(vec![
            cell.trace.clone(),
            if cell.early_exit { "calm" } else { "off" }.to_string(),
            if cell.elastic { "yes" } else { "no" }.to_string(),
            fmt(cell.ttft_p50, 3),
            fmt(cell.ttft_p99, 3),
            fmt(cell.tpot_p99, 4),
            fmt(cell.goodput_rps, 2),
            pct(cell.slo_attainment),
            fmt(cell.mean_gpus, 1),
            format!("{}/{}", cell.scale_out_events, cell.scale_in_events),
        ]);
    }
    table.print();

    // Every cell must conserve its requests.
    for cell in &cells {
        assert_eq!(
            cell.completed, cell.requests,
            "cell {}/{}/{} dropped requests",
            cell.trace, cell.balancer, cell.elastic
        );
    }

    // The elasticity acceptance check: at least one elastic cell recorded
    // a scale-out and beat its fixed twin's p99 TTFT on the same trace.
    let twin = |of: &ServingCell| {
        cells.iter().find(|c| {
            !c.elastic
                && c.trace == of.trace
                && c.early_exit == of.early_exit
                && c.balancer == of.balancer
        })
    };
    let wins: Vec<(&ServingCell, &ServingCell)> = cells
        .iter()
        .filter(|c| c.elastic && c.scale_out_events >= 1)
        .filter_map(|c| twin(c).map(|f| (c, f)))
        .filter(|(elastic, fixed)| elastic.ttft_p99 < fixed.ttft_p99)
        .collect();
    assert!(
        !wins.is_empty(),
        "no elastic cell scaled out and beat its fixed twin on p99 TTFT"
    );
    let (best_elastic, best_fixed) = wins
        .iter()
        .max_by(|a, b| {
            (a.1.ttft_p99 / a.0.ttft_p99)
                .partial_cmp(&(b.1.ttft_p99 / b.0.ttft_p99))
                .expect("latencies are finite")
        })
        .expect("wins is non-empty");
    println!(
        "Best elasticity win: {} (exit {}): p99 TTFT {:.2} s -> {:.2} s ({:.1}x) with {} scale-outs",
        best_elastic.trace,
        if best_elastic.early_exit { "calm" } else { "off" },
        best_fixed.ttft_p99,
        best_elastic.ttft_p99,
        best_fixed.ttft_p99 / best_elastic.ttft_p99,
        best_elastic.scale_out_events
    );

    if let Some(path) = dump_json("serving_sweep", &cells) {
        println!("({} sweep rows written to {})", cells.len(), path.display());
    }
}
