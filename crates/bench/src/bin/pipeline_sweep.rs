//! Pipeline-schedule sweep — the bubble/idleness landscape behind Figure 1.
//!
//! Fans a `(schedule × stages × micro-batches × imbalance)` grid across
//! threads (rayon) through the event-driven pipeline simulator and writes
//! one JSON artifact (`results/pipeline_sweep.json`) covering GPipe, 1F1B,
//! interleaved 1F1B, and ZB-H1.  Run with `--scale {smoke|default|paper}`;
//! the paper scale reaches the `p = 32, m = 512` corner of the grid.

use dynmo_bench::sweep::{run_sweep, SweepConfig};
use dynmo_bench::{dump_json, fmt, pct, ExperimentScale, Table};

fn main() {
    let scale = ExperimentScale::from_process_args();
    let config = SweepConfig::for_scale(scale);
    println!(
        "Pipeline schedule sweep (scale: {scale:?}, {} cells)\n",
        config.cells().len()
    );

    let cells = run_sweep(&config);

    let mut table = Table::new(
        "Pipeline sweep — bubble ratio by schedule (γ = 0, largest grid point)",
        &["Schedule", "p", "m", "Bubble", "Idleness", "Tokens/s"],
    );
    let p_max = *config.stage_counts.iter().max().unwrap();
    let m_max = *config.microbatch_counts.iter().max().unwrap();
    for cell in cells
        .iter()
        .filter(|c| c.stages == p_max && c.microbatches == m_max && c.imbalance_factor == 0.0)
    {
        table.add_row(vec![
            cell.schedule.clone(),
            cell.stages.to_string(),
            cell.microbatches.to_string(),
            pct(cell.bubble_ratio),
            pct(cell.average_idleness),
            fmt(cell.tokens_per_second, 0),
        ]);
    }
    table.print();

    if let Some(path) = dump_json("pipeline_sweep", &cells) {
        println!("({} sweep rows written to {})", cells.len(), path.display());
    }
}
