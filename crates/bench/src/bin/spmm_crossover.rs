//! §4.2.2 — SpMM backend crossover (ABL-SPMM in DESIGN.md).
//!
//! The paper selects Sputnik for sparse kernels because (a) it beats
//! cuSPARSE across the deep-learning sparsity range and (b) it overtakes
//! dense cuBLAS at ≈75% sparsity.  This binary sweeps sparsity and prints
//! the modeled kernel times for all three backends (reproducing the
//! crossover), and cross-checks the *shape* with real CPU kernels (this
//! crate's CSR SpMM vs dense GEMM), whose own crossover appears at high
//! sparsity for the same reason: work is proportional to the number of
//! stored values.

use std::time::Instant;

use dynmo_bench::{dump_json, ExperimentScale, Table};
use dynmo_sparse::{spmm, CsrMatrix, DenseMatrix, KernelCostModel, SpmmBackend};
use serde::Serialize;

#[derive(Serialize)]
struct SweepRow {
    sparsity: f64,
    cublas_model_us: f64,
    cusparse_model_us: f64,
    sputnik_model_us: f64,
    best_backend: String,
    cpu_dense_us: f64,
    cpu_sparse_us: f64,
}

fn random_dense(rows: usize, cols: usize, sparsity: f64, seed: u64) -> DenseMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if next() < sparsity {
                0.0
            } else {
                (next() - 0.5) as f32
            }
        })
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

// Benchmarking is a sanctioned wall-clock use (see clippy.toml).
#[allow(clippy::disallowed_methods)]
fn time_us<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1.0e6 / reps as f64
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("SpMM crossover sweep (scale: {scale:?})\n");

    // Modeled GPU shape: a transformer FFN GEMM; CPU check shape is smaller
    // so the sweep completes quickly.
    let (gm, gn, gk) = (4096usize, 4096, 1024);
    let (cm, cn, ck) = match scale {
        ExperimentScale::Smoke => (128usize, 64usize, 128usize),
        _ => (512, 128, 512),
    };
    let reps = if scale == ExperimentScale::Smoke {
        2
    } else {
        5
    };

    let model = KernelCostModel::h100();
    let mut table = Table::new(
        "Kernel time vs sparsity (model: H100; CPU cross-check in µs)",
        &[
            "Sparsity",
            "cuBLAS (µs)",
            "cuSPARSE (µs)",
            "Sputnik (µs)",
            "Best",
            "CPU dense (µs)",
            "CPU CSR (µs)",
        ],
    );
    let mut rows = Vec::new();
    for pct in [0, 30, 50, 70, 75, 80, 90, 95, 99] {
        let sparsity = pct as f64 / 100.0;
        let cublas = model.cublas_time(gm, gn, gk) * 1.0e6;
        let cusparse = model.cusparse_time(gm, gn, gk, sparsity) * 1.0e6;
        let sputnik = model.sputnik_time(gm, gn, gk, sparsity) * 1.0e6;
        let best = match model.best_backend(gm, gn, gk, sparsity) {
            SpmmBackend::CublasDense => "cuBLAS",
            SpmmBackend::Cusparse => "cuSPARSE",
            SpmmBackend::Sputnik => "Sputnik",
        };

        // Real CPU kernels on a smaller shape.
        let a_dense = random_dense(cm, ck, sparsity, 42 + pct);
        let b = random_dense(ck, cn, 0.0, 7);
        let a_csr = CsrMatrix::from_dense(&a_dense);
        let cpu_dense = time_us(
            || {
                let _ = a_dense.matmul(&b);
            },
            reps,
        );
        let cpu_sparse = time_us(
            || {
                let _ = spmm(&a_csr, &b);
            },
            reps,
        );

        table.add_row(vec![
            format!("{pct}%"),
            format!("{cublas:.1}"),
            format!("{cusparse:.1}"),
            format!("{sputnik:.1}"),
            best.to_string(),
            format!("{cpu_dense:.0}"),
            format!("{cpu_sparse:.0}"),
        ]);
        rows.push(SweepRow {
            sparsity,
            cublas_model_us: cublas,
            cusparse_model_us: cusparse,
            sputnik_model_us: sputnik,
            best_backend: best.to_string(),
            cpu_dense_us: cpu_dense,
            cpu_sparse_us: cpu_sparse,
        });
    }
    table.print();
    println!(
        "Modeled Sputnik/cuBLAS crossover sparsity: {:.0}%",
        model.sputnik_crossover_sparsity(gm, gn, gk) * 100.0
    );
    if let Some(path) = dump_json("spmm_crossover", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}
