//! Perfetto timeline export — one trace, three subsystems.
//!
//! Runs a training session (p = 8 pipeline ranks, m = 32 micro-batches,
//! CALM early exit, dynamic rebalancing, periodic checkpoints), an
//! autoscaled serving session on a bursty trace, and a fault-injected
//! resilient run, each with a telemetry recorder attached, and assembles
//! the three event streams into one Chrome-trace-event JSON artifact
//! (`results/trace_export.trace.json`) that `ui.perfetto.dev` opens
//! directly: one Perfetto *process* per subsystem, one *thread* per
//! pipeline rank / serving replica, with rebalance / checkpoint /
//! scale-out / fault / restore markers pinned across their process.
//!
//! The binary re-validates its own artifact with
//! [`dynmo_telemetry::validate_trace_json`] before exiting, so CI's
//! smoke-run is a structural test of the whole export path.  Timestamps
//! are *simulated* seconds (the resilience group uses the iteration index
//! as its time axis); recording changes nothing simulated — the trainer's
//! trajectory checksum is asserted against an unrecorded twin run.

use std::sync::Arc;

use dynmo_bench::ExperimentScale;
use dynmo_core::balancer::{BalanceObjective, PartitionBalancer};
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_core::recovery::{
    run_resilient, RecoveryConfig, ResilientTrainingConfig, WorkloadConfig,
};
use dynmo_core::trainer::{Trainer, TrainerConfig};
use dynmo_dynamics::{EarlyExitEngine, EarlyExitMethod};
use dynmo_model::{ClusterConfig, DeviceSpec, Model, ModelPreset};
use dynmo_pipeline::ScheduleKind;
use dynmo_resilience::MemoryCheckpointStore;
use dynmo_runtime::FaultPlan;
use dynmo_serve::{
    ArrivalProcess, AutoscalerConfig, LengthModel, RequestTrace, ServingConfig, ServingEngine,
};
use dynmo_telemetry::{validate_trace_json, MarkerKind, MemoryRecorder, Recorder, TraceBuilder};

const STAGES: usize = 8;
const MICROBATCHES: usize = 32;
const TRACE_PATH: &str = "results/trace_export.trace.json";

fn trainer_config(iterations: u64) -> TrainerConfig {
    TrainerConfig {
        cluster: ClusterConfig::homogeneous(4, STAGES, 1, DeviceSpec::h100_sxm5()),
        schedule: ScheduleKind::OneFOneB,
        num_iterations: iterations,
        num_microbatches: MICROBATCHES,
        allreduce_overlap: 0.8,
        objective: BalanceObjective::ByTime,
        min_workers: 1,
    }
}

fn dynamic_controller() -> RebalanceController {
    RebalanceController::new(
        Box::new(PartitionBalancer::new()),
        BalanceObjective::ByTime,
        RebalancePolicy::dynamic(),
    )
}

/// The training session: per-rank op spans + rebalance/checkpoint markers.
fn record_training(recorder: Arc<MemoryRecorder>) {
    let iterations = 150u64; // > the early-exit engine's EveryN(100) cadence
    let model = Model::from_preset(ModelPreset::Gpt { layers: 32 });

    let mut traced = Trainer::new(
        model.clone(),
        trainer_config(iterations),
        dynamic_controller(),
    )
    .with_checkpointing(Box::new(MemoryCheckpointStore::new()), 50)
    .with_recorder(recorder);
    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
    let traced_report = traced.run(&mut engine);

    let mut plain = Trainer::new(
        model.clone(),
        trainer_config(iterations),
        dynamic_controller(),
    )
    .with_checkpointing(Box::new(MemoryCheckpointStore::new()), 50);
    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
    let plain_report = plain.run(&mut engine);

    assert_eq!(
        traced_report.trajectory_checksum, plain_report.trajectory_checksum,
        "recording must not change the simulated trajectory"
    );
    println!(
        "training:   {} iterations, checksum {:016x}, measured overhead {:.3} ms over {} samples",
        iterations,
        traced_report.trajectory_checksum,
        traced_report.overhead.measured.total_seconds() * 1e3,
        traced_report.overhead.measured.samples
    );
}

/// The serving session: per-replica engine-step spans + scale markers.
fn record_serving(recorder: Arc<MemoryRecorder>) {
    let process = ArrivalProcess::Bursty {
        base_rate: 2.0,
        spike_rate: 40.0,
        spike_start: 10.0,
        spike_duration: 20.0,
    };
    let lengths = LengthModel {
        mean_prompt_tokens: 256,
        mean_output_tokens: 64,
        spread: 0.4,
    };
    let trace = RequestTrace::generate(&process, 40.0, &lengths, 21);
    let mut config = ServingConfig::small(1);
    config.max_replicas = 4;
    let config = config.with_autoscaler(AutoscalerConfig::responsive(2.0, 1, 4));
    let report = ServingEngine::new(config)
        .expect("serving config is valid")
        .with_recorder(recorder)
        .serve(&trace, None);
    assert!(
        report.scale_out_events() >= 1,
        "the bursty trace must trigger a scale-out"
    );
    println!(
        "serving:    {} requests, {} engine steps, {} scale-outs / {} scale-ins, p99 TTFT {:.2} s",
        report.completed,
        report.engine_steps,
        report.scale_out_events(),
        report.scale_in_events(),
        report.ttft.p99
    );
}

/// The resilient run: fault/restore markers + replay spans on an
/// iteration-index time axis.
fn record_resilience(recorder: Arc<MemoryRecorder>) {
    let config = ResilientTrainingConfig {
        world_size: 4,
        iterations: 35,
        workload: WorkloadConfig::small(12, 42),
        fault_plan: FaultPlan::none().kill(2, 18),
        recovery: RecoveryConfig {
            checkpoint_interval: 10,
            ..RecoveryConfig::default()
        },
    };
    let report = run_resilient(&config).expect("resilient run completes");
    assert!(!report.recoveries.is_empty(), "the kill must be recovered");

    recorder.counter(0, "world_size", 0.0, report.initial_world_size as f64);
    for recovery in &report.recoveries {
        let detected = recovery.detected_at as f64;
        recorder.instant(
            0,
            MarkerKind::Fault,
            &format!("ranks {:?}", recovery.failed_ranks),
            detected,
            &[("iteration", recovery.detected_at.to_string())],
        );
        recorder.instant(
            0,
            MarkerKind::Restore,
            &format!("from iter {}", recovery.resumed_from),
            detected,
            &[
                ("replayed", recovery.replayed.to_string()),
                ("world_size_after", recovery.world_size_after.to_string()),
                ("cost_s", format!("{:.4}", recovery.cost)),
            ],
        );
        recorder.span(
            0,
            0,
            &format!("replay {}..{}", recovery.resumed_from, recovery.detected_at),
            recovery.resumed_from as f64,
            detected,
        );
        recorder.counter(0, "world_size", detected, recovery.world_size_after as f64);
    }
    println!(
        "resilience: {} iterations, {} recoveries, {} iterations replayed, measured ckpt I/O {:.3} ms",
        report.iterations,
        report.recoveries.len(),
        report.replayed_iterations,
        report.overhead.measured.checkpoint_io_seconds * 1e3
    );
}

fn main() {
    // Accepted for CI-invocation uniformity; the export is fixed-size.
    let _ = ExperimentScale::from_process_args();
    println!("Perfetto trace export (p = {STAGES}, m = {MICROBATCHES})\n");

    let training = Arc::new(MemoryRecorder::new());
    let serving = Arc::new(MemoryRecorder::new());
    let resilience = Arc::new(MemoryRecorder::new());
    record_training(training.clone());
    record_serving(serving.clone());
    record_resilience(resilience.clone());

    let mut trace = TraceBuilder::new();
    trace.process_name(0, "training (p=8, m=32, CALM early exit)");
    for rank in 0..STAGES {
        trace.thread_name(0, rank as u64, &format!("rank {rank}"));
    }
    trace.add_events(0, &training.take());

    trace.process_name(1, "serving (bursty trace, autoscaled)");
    for replica in 0..4usize {
        trace.thread_name(1, replica as u64, &format!("replica {replica}"));
    }
    trace.add_events(1, &serving.take());

    trace.process_name(2, "resilience (iteration time axis)");
    trace.thread_name(2, 0, "replay");
    trace.add_events(2, &resilience.take());

    let json = trace.to_json();
    let stats = validate_trace_json(&json).expect("emitted trace must validate");
    assert!(stats.spans > 0, "trace must carry op spans");
    assert!(
        stats.span_tracks >= STAGES,
        "one span track per pipeline rank (got {})",
        stats.span_tracks
    );
    assert_eq!(stats.processes, 3, "training + serving + resilience");
    for required in ["rebalance", "checkpoint", "scale_out", "fault", "restore"] {
        assert!(
            stats
                .instant_names
                .iter()
                .any(|name| name.starts_with(&format!("{required}: "))),
            "trace must carry a `{required}` marker (names: {:?})",
            stats.instant_names
        );
    }

    trace.write(TRACE_PATH).expect("results/ is writable");
    println!(
        "\n{} events ({} spans on {} tracks, {} instants, {} counters) -> {}",
        stats.events, stats.spans, stats.span_tracks, stats.instants, stats.counters, TRACE_PATH
    );
    println!("open in https://ui.perfetto.dev (Open trace file)");
}
