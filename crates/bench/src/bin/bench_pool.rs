//! Thread-pool benchmark — wall-clock for the three sweep bins and the
//! sharded Kahn engine at 1 thread vs the host's thread count.
//!
//! Writes `results/BENCH_pool.json` with, per sweep bin, the best-of-N
//! wall-clock under a 1-thread and an `host_threads`-thread pool, the
//! resulting speedup, and whether the two runs produced identical rows
//! (byte-identical serialization for the pipeline and serving sweeps;
//! simulated-fields-identical for the composite sweep, whose rows embed
//! measured balancer wall-clock).  A second section times the pipeline
//! simulator's sequential Kahn engine against the sharded wavefront engine
//! on a very-large DAG and asserts bit-identical reports.
//!
//! Speedups are a property of the *host*: on a single-core container both
//! pools degenerate to one worker and every speedup is ~1×; on an 8-core
//! host the pipeline sweep's embarrassingly parallel grid reaches ≳3×.
//! `host_threads` is recorded so readers can interpret the numbers.

use std::time::Instant;

use dynmo_bench::serving::{run_serving_sweep, ServingSweepConfig};
use dynmo_bench::sweep::{run_sweep, SweepConfig};
use dynmo_bench::{dump_json, fmt, run_composite_sweep, ExperimentScale, Table};
use dynmo_model::ModelConfig;
use dynmo_model::{ClusterConfig, DeviceSpec};
use dynmo_pipeline::load::StageLoad;
use dynmo_pipeline::{CommCostModel, PipelineSimulator, ScheduleKind};
use serde::Serialize;

/// One sweep bin's before/after numbers.
#[derive(Debug, Serialize)]
struct SweepTiming {
    bin: String,
    cells: usize,
    threads1_secs: f64,
    threads_host_secs: f64,
    speedup: f64,
    identical: bool,
}

/// The sharded-engine comparison.
#[derive(Debug, Serialize)]
struct ShardedTiming {
    stages: usize,
    microbatches: usize,
    nodes: usize,
    sequential_secs: f64,
    sharded_secs: f64,
    speedup: f64,
    bit_identical: bool,
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct PoolBench {
    host_threads: usize,
    scale: String,
    repeats: usize,
    sweeps: Vec<SweepTiming>,
    sharded_engine: ShardedTiming,
}

/// Best-of-`repeats` wall-clock of `f`, returning the last result too.
// Benchmarking is a sanctioned wall-clock use (see clippy.toml).
#[allow(clippy::disallowed_methods)]
fn time_best<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let started = Instant::now();
        let value = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one repeat"))
}

fn bench_sweep<T, F, I>(
    bin: &str,
    repeats: usize,
    single: &rayon::ThreadPool,
    multi: &rayon::ThreadPool,
    run: F,
    identical: I,
) -> SweepTiming
where
    T: Send,
    F: Fn() -> Vec<T> + Send + Sync,
    I: Fn(&[T], &[T]) -> bool,
{
    let (t1, rows1) = time_best(repeats, || single.install(&run));
    let (tn, rows_n) = time_best(repeats, || multi.install(&run));
    SweepTiming {
        bin: bin.to_string(),
        cells: rows1.len(),
        threads1_secs: t1,
        threads_host_secs: tn,
        speedup: t1 / tn,
        identical: identical(&rows1, &rows_n),
    }
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    let host_threads = rayon::current_num_threads();
    let repeats = match scale {
        ExperimentScale::Smoke => 2,
        _ => 3,
    };
    println!("Thread-pool benchmark (scale: {scale:?}, host threads: {host_threads})\n");

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool construction cannot fail");
    let multi = rayon::ThreadPoolBuilder::new()
        .num_threads(host_threads)
        .build()
        .expect("pool construction cannot fail");

    let mut sweeps = Vec::new();

    let config = SweepConfig::for_scale(scale);
    sweeps.push(bench_sweep(
        "pipeline_sweep",
        repeats,
        &single,
        &multi,
        || run_sweep(&config),
        |a, b| {
            serde_json::to_string(a).expect("rows serialize")
                == serde_json::to_string(b).expect("rows serialize")
        },
    ));

    let serving = ServingSweepConfig::for_scale(scale);
    sweeps.push(bench_sweep(
        "serving_sweep",
        repeats,
        &single,
        &multi,
        || run_serving_sweep(&serving),
        |a, b| {
            serde_json::to_string(a).expect("rows serialize")
                == serde_json::to_string(b).expect("rows serialize")
        },
    ));

    sweeps.push(bench_sweep(
        "composite_sweep",
        repeats,
        &single,
        &multi,
        || run_composite_sweep(scale),
        // Composite rows embed measured balancer wall-clock
        // (overhead_fraction, tokens_per_second); compare the fields the
        // simulation computes.
        |a, b| {
            a.len() == b.len()
                && a.iter().zip(b.iter()).all(|(x, y)| {
                    x.trajectory_checksum == y.trajectory_checksum
                        && x.bubble_ratio.to_bits() == y.bubble_ratio.to_bits()
                        && x.rebalance_events == y.rebalance_events
                        && x.recovery_bit_identical == y.recovery_bit_identical
                })
        },
    ));

    // Sharded Kahn engine on a very-large DAG.  Axis sizes scale with the
    // requested fidelity so smoke runs stay CI-fast.
    let (stages, microbatches) = match scale {
        ExperimentScale::Smoke => (128, 512),
        ExperimentScale::Default => (512, 1024),
        ExperimentScale::Paper => (512, 4096),
    };
    let model = ModelConfig::gpt(32);
    let layers_per_stage = (model.num_layers / stages).max(1);
    let base_fwd = 2.0e-3 * layers_per_stage as f64;
    let loads: Vec<StageLoad> = (0..stages)
        .map(|s| StageLoad {
            fwd_time: base_fwd * (1.0 + 0.1 * (s % 5) as f64),
            bwd_time: 2.0 * base_fwd,
            param_count: 1_000_000,
            static_bytes: 0,
            activation_bytes: 0,
            boundary_bytes: 0,
            num_layers: layers_per_stage,
        })
        .collect();
    let cluster = ClusterConfig::homogeneous(8, stages, 1, DeviceSpec::h100_sxm5());
    let sim = PipelineSimulator::new(CommCostModel::new(cluster), ScheduleKind::OneFOneB);
    let nodes = 2 * stages * microbatches; // fwd + bwd per (stage, mb)
    let sequential_sim = sim.clone().with_shard_threshold(usize::MAX);
    let sharded_sim = sim.clone().with_shard_threshold(0);
    // At least 2 workers so the wavefront engine actually runs (its
    // dispatch falls back to sequential on a 1-thread pool) even on a
    // single-core host — where the timing comparison is then time-sliced
    // and speedup is honestly ~1×.
    let shard_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(host_threads.max(2))
        .build()
        .expect("pool construction cannot fail");
    let (seq_secs, seq_report) = time_best(repeats, || {
        sequential_sim.simulate(&model, &loads, microbatches)
    });
    let (shard_secs, shard_report) = time_best(repeats, || {
        shard_pool.install(|| sharded_sim.simulate(&model, &loads, microbatches))
    });
    let sharded_engine = ShardedTiming {
        stages,
        microbatches,
        nodes,
        sequential_secs: seq_secs,
        sharded_secs: shard_secs,
        speedup: seq_secs / shard_secs,
        bit_identical: seq_report == shard_report,
    };

    let mut table = Table::new(
        "Work-stealing pool — wall-clock by thread count",
        &[
            "Workload",
            "Cells/Nodes",
            "1 thread",
            &format!("{host_threads} threads"),
            "Speedup",
            "Identical",
        ],
    );
    for s in &sweeps {
        table.add_row(vec![
            s.bin.clone(),
            s.cells.to_string(),
            fmt(s.threads1_secs, 3),
            fmt(s.threads_host_secs, 3),
            fmt(s.speedup, 2),
            s.identical.to_string(),
        ]);
    }
    table.add_row(vec![
        format!("kahn p={stages} m={microbatches}"),
        sharded_engine.nodes.to_string(),
        fmt(sharded_engine.sequential_secs, 3),
        fmt(sharded_engine.sharded_secs, 3),
        fmt(sharded_engine.speedup, 2),
        sharded_engine.bit_identical.to_string(),
    ]);
    table.print();

    for s in &sweeps {
        assert!(s.identical, "{}: thread counts changed the artifact", s.bin);
    }
    assert!(
        sharded_engine.bit_identical,
        "sharded engine diverged from sequential"
    );

    let bench = PoolBench {
        host_threads,
        scale: format!("{scale:?}").to_lowercase(),
        repeats,
        sweeps,
        sharded_engine,
    };
    if let Some(path) = dump_json("BENCH_pool", &bench) {
        println!("(pool benchmark written to {})", path.display());
    }
}
