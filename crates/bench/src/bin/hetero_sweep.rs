//! Hetero sweep — DynMo's margin over the static baselines on a uniform
//! vs a 3-generation (H100/A100/V100) cluster.
//!
//! Flags:
//! * `--scale {smoke|default|paper}` — experiment size (default: `default`).
//!
//! Output: per-cell throughput tables, one `margin ...` line per case
//! (asserted by CI), and the full report as `results/hetero_sweep.json`.

use dynmo_bench::{
    dump_json, fmt, run_hetero_sweep, ClusterFlavor, ExperimentScale, HeteroSweepReport, Table,
    HETERO_CASES,
};

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Hetero sweep: uniform vs 3-generation cluster (scale: {scale:?})\n");

    let report = run_hetero_sweep(scale);
    print_tables(&report);

    for margin in &report.margins {
        println!(
            "margin {}: uniform {:.2}x | 3-gen {:.2}x | growth {:.2}x",
            margin.case, margin.uniform_margin, margin.hetero_margin, margin.growth
        );
    }

    if let Some(path) = dump_json("hetero_sweep", &report) {
        println!("\n(raw rows written to {})", path.display());
    }
}

fn print_tables(report: &HeteroSweepReport) {
    for case in HETERO_CASES {
        for flavor in ClusterFlavor::ALL {
            let mut table = Table::new(
                &format!("{} — {} cluster", case.label(), flavor.label()),
                &[
                    "Configuration",
                    "Schedule",
                    "Tokens/sec",
                    "Bubble",
                    "Rebalances",
                ],
            );
            for row in report
                .rows
                .iter()
                .filter(|r| r.case == case.label() && r.cluster == flavor.label())
            {
                table.add_row(vec![
                    row.configuration.clone(),
                    row.schedule.clone(),
                    fmt(row.tokens_per_second, 0),
                    format!("{:.1}%", row.bubble_ratio * 100.0),
                    row.rebalance_events.to_string(),
                ]);
            }
            table.print();
            println!();
        }
    }
}
