//! Fleet sweep — closed-loop co-location vs a static GPU split.
//!
//! Flags:
//! * `--scale {smoke|default|paper}` — experiment size (default: `default`).
//!
//! Output: per-cell tenant tables, one `margin fleet ...` line (asserted
//! and byte-compared across thread counts by CI), and the full report as
//! `results/BENCH_fleet.json`.  Exits non-zero if the closed loop fails
//! to beat the static split on either axis or the trainer trajectory pin
//! breaks — the margins are the bench's acceptance gate, not just prose.

use dynmo_bench::{dump_json, fmt, run_fleet_sweep, ExperimentScale, FleetCellReport};

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Fleet sweep: closed-loop controller vs static split (scale: {scale:?})\n");

    let report = run_fleet_sweep(scale);
    print_cell(&report.closed);
    print_cell(&report.static_split);

    println!(
        "reference (undisturbed world-12 training): {} tokens/s",
        fmt(report.reference_tokens_per_second, 0)
    );
    println!(
        "trajectory pin: {} pre-steal chunk boundaries bit-identical to the reference: {}",
        report.pinned_boundaries, report.trajectory_pinned
    );
    println!();
    println!(
        "margin fleet {}: peak slo closed {:.1}% vs static {:.1}% | training loss closed {:.1}% vs static {:.1}%",
        report.scale,
        report.closed.peak_attainment * 100.0,
        report.static_split.peak_attainment * 100.0,
        report.closed.training_loss * 100.0,
        report.static_split.training_loss * 100.0,
    );

    if let Some(path) = dump_json("BENCH_fleet", &report) {
        println!("\n(raw rows written to {})", path.display());
    }

    assert!(
        report.peak_attainment_margin_pp > 0.0,
        "the closed loop must beat the static split at the diurnal peak"
    );
    assert!(
        report.training_loss_margin_pp > 0.0,
        "the closed loop must lose less training throughput than the static split"
    );
    assert!(
        report.trajectory_pinned,
        "pre-steal trainer trajectory must be bit-identical to the undisturbed run"
    );
}

fn print_cell(cell: &FleetCellReport) {
    let mut table = dynmo_bench::Table::new(
        &format!(
            "{} — peak slo {:.1}%, day slo {:.1}%, training {} tokens/s (loss {:.1}%)",
            cell.label,
            cell.peak_attainment * 100.0,
            cell.attainment * 100.0,
            fmt(cell.trainer_tokens_per_second, 0),
            cell.training_loss * 100.0,
        ),
        &[
            "Tenant",
            "Requests",
            "Peak reqs",
            "Peak SLO",
            "Day SLO",
            "p99 TTFT",
        ],
    );
    for t in &cell.tenants {
        table.add_row(vec![
            t.tenant.clone(),
            t.requests.to_string(),
            t.peak_requests.to_string(),
            format!("{:.1}%", t.peak_attainment * 100.0),
            format!("{:.1}%", t.attainment * 100.0),
            format!("{:.2}s", t.p99_ttft),
        ]);
    }
    table.print();
    println!(
        "  trainer: {} iterations, mean world {:.1}, {} steals / {} returns / {} preemptions, {} rescales ({:.1}s checkpoint cost)\n",
        cell.trainer_iterations,
        cell.trainer_mean_world,
        cell.steals,
        cell.returns,
        cell.preemptions,
        cell.trainer_rescales,
        cell.trainer_rescale_cost,
    );
}
