//! Figure 4 (left/middle/bottom) — re-packing models onto fewer GPUs.
//!
//! Reproduces three pieces of the paper's Figure 4:
//!
//! 1. Throughput and throughput-per-GPU when the pipeline is packed onto
//!    8 / 6 / 4 / 2 GPUs (per model size), with OOM detection when a model
//!    no longer fits.
//! 2. The average number of GPUs used over the whole training run when
//!    DynMo re-packs dynamically as the model shrinks (gradual pruning,
//!    layer freezing, early exit).
//! 3. The re-pack trigger points along the run.
//!
//! Use `--section {packed|avg-gpus|all}` to select a part and `--scale` as
//! usual.

use dynmo_bench::{dump_json, fmt, BalancerKind, CaseConfig, DynamicCase, ExperimentScale, Table};
use dynmo_core::balancer::BalanceObjective;
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_core::repack::RepackConfig;
use dynmo_core::trainer::{Trainer, TrainerConfig};
use dynmo_core::PartitionBalancer;
use dynmo_model::{ClusterConfig, DeviceSpec, Model, ModelPreset};
use dynmo_pipeline::memory::{check_stage_memory, inflight_microbatches};
use dynmo_pipeline::{ScheduleKind, StageAssignment};
use serde::Serialize;

#[derive(Serialize)]
struct PackedRow {
    case: String,
    layers: usize,
    gpus: usize,
    tokens_per_second: f64,
    tokens_per_second_per_gpu: f64,
    oom: bool,
}

#[derive(Serialize)]
struct AvgGpuRow {
    case: String,
    layers: usize,
    average_gpus: f64,
    final_gpus: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_process_args();
    let section = args
        .windows(2)
        .find(|w| w[0] == "--section")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "all".to_string());
    println!("Figure 4: re-packing to fewer GPUs (scale: {scale:?})\n");

    if section == "packed" || section == "all" {
        packed_gpu_sweep(scale);
    }
    if section == "avg-gpus" || section == "all" {
        average_gpu_usage(scale);
    }
}

/// Part 1: run each model size on a fixed number of GPUs (8/6/4/2) under
/// the early-exit workload and report throughput, throughput/GPU, and OOM.
fn packed_gpu_sweep(scale: ExperimentScale) {
    let layer_counts = match scale {
        ExperimentScale::Smoke => vec![24],
        _ => vec![24, 32, 40, 48],
    };
    // The re-packing experiments use a single node with up to 8 GPUs in
    // pipeline parallelism (paper §5.3) and a device small enough that deep
    // models eventually stop fitting (so the OOM entries of Figure 4 appear).
    let device = DeviceSpec {
        memory_capacity: 24 * 1024 * 1024 * 1024,
        ..DeviceSpec::h100_sxm5()
    };
    let mut rows: Vec<PackedRow> = Vec::new();
    for case in [
        DynamicCase::Pruning,
        DynamicCase::Freezing,
        DynamicCase::EarlyExit,
    ] {
        let mut table = Table::new(
            &format!("{} — packed onto fewer GPUs", case.label()),
            &["Layers", "GPUs", "Tokens/sec", "Tokens/sec/GPU", "Status"],
        );
        for &layers in &layer_counts {
            for &gpus in &[8usize, 6, 4, 2] {
                let model = Model::from_preset(ModelPreset::Gpt { layers });
                let cluster = ClusterConfig::homogeneous(8, gpus, 1, device);
                let trainer_config = TrainerConfig {
                    num_microbatches: 4 * gpus,
                    ..TrainerConfig::paper_defaults(cluster.clone(), scale.iterations().min(200))
                };

                // OOM check against the device capacity before running.
                let engine_update = dynmo_dynamics::LoadUpdate::identity(model.num_layers());
                let loads =
                    dynmo_core::profiler::profile_layers(&model, &engine_update, &cluster.device);
                let assignment = StageAssignment::uniform(model.num_layers(), gpus);
                let memory = check_stage_memory(
                    &assignment,
                    &loads,
                    cluster.device.memory_capacity,
                    ScheduleKind::OneFOneB,
                    trainer_config.num_microbatches,
                );
                if !memory.all_fit() {
                    table.add_row(vec![
                        layers.to_string(),
                        gpus.to_string(),
                        "-".into(),
                        "-".into(),
                        "OOM".into(),
                    ]);
                    rows.push(PackedRow {
                        case: case.label().to_string(),
                        layers,
                        gpus,
                        tokens_per_second: 0.0,
                        tokens_per_second_per_gpu: 0.0,
                        oom: true,
                    });
                    continue;
                }

                let controller = RebalanceController::new(
                    Box::new(PartitionBalancer::new()),
                    BalanceObjective::ByTime,
                    RebalancePolicy::dynamic(),
                );
                let mut engine = dynmo_bench::build_engine(
                    case,
                    &model,
                    scale,
                    BalancerKind::PartitionByTime,
                    7,
                );
                let mut trainer = Trainer::new(model, trainer_config, controller);
                let report = trainer.run(engine.as_mut());
                table.add_row(vec![
                    layers.to_string(),
                    gpus.to_string(),
                    fmt(report.tokens_per_second, 0),
                    fmt(report.tokens_per_second / gpus as f64, 0),
                    "ok".into(),
                ]);
                rows.push(PackedRow {
                    case: case.label().to_string(),
                    layers,
                    gpus,
                    tokens_per_second: report.tokens_per_second,
                    tokens_per_second_per_gpu: report.tokens_per_second / gpus as f64,
                    oom: false,
                });
            }
        }
        table.print();
    }
    if let Some(path) = dump_json("fig4_packed", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}

/// Part 2: let DynMo re-pack dynamically during training and report the
/// average number of GPUs used (the Figure 4 bottom panel).
fn average_gpu_usage(scale: ExperimentScale) {
    let layer_counts = match scale {
        ExperimentScale::Smoke => vec![24],
        _ => vec![24, 32, 40, 48],
    };
    let mut rows: Vec<AvgGpuRow> = Vec::new();
    let mut table = Table::new(
        "Average number of GPUs used over the training run (dynamic re-packing)",
        &["Case", "Layers", "Avg GPUs", "Final GPUs"],
    );
    for case in [
        DynamicCase::Pruning,
        DynamicCase::Freezing,
        DynamicCase::EarlyExit,
    ] {
        for &layers in &layer_counts {
            let config = CaseConfig {
                repack: true,
                ..CaseConfig::new(case, layers, scale)
            };
            // Single-node 8-GPU pipeline, as in the paper's §5.3 setup; the
            // device memory is scaled down so that the memory-capacity
            // constraint binds for these (small) GPT models the way 80 GB
            // binds for the paper's full-size runs.
            let model = Model::from_preset(ModelPreset::Gpt { layers });
            let device = DeviceSpec {
                memory_capacity: 20 * 1024 * 1024 * 1024,
                ..DeviceSpec::h100_sxm5()
            };
            let cluster = ClusterConfig {
                device,
                ..ClusterConfig::single_node(8)
            };
            let trainer_config = TrainerConfig {
                num_microbatches: 32,
                ..TrainerConfig::paper_defaults(cluster.clone(), scale.iterations())
            };
            let controller = RebalanceController::new(
                Box::new(PartitionBalancer::new()),
                BalanceObjective::ByTime,
                RebalancePolicy::dynamic_with_repack(RepackConfig {
                    max_memory: cluster.device.memory_capacity,
                    target_num_workers: 2,
                    utilization_cap: 0.9,
                }),
            );
            let mut engine =
                dynmo_bench::build_engine(case, &model, scale, BalancerKind::PartitionByTime, 3);
            let mut trainer = Trainer::new(model, trainer_config, controller);
            let report = trainer.run(engine.as_mut());
            table.add_row(vec![
                case.label().to_string(),
                layers.to_string(),
                fmt(report.average_active_workers, 1),
                report.final_active_workers.to_string(),
            ]);
            rows.push(AvgGpuRow {
                case: case.label().to_string(),
                layers,
                average_gpus: report.average_active_workers,
                final_gpus: report.final_active_workers,
            });
            let _ = config;
        }
    }
    table.print();
    if let Some(path) = dump_json("fig4_avg_gpus", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}

/// Kept for parity with the paper's description of the schedule-driven
/// in-flight activation accounting; used in the OOM pre-check above.
#[allow(dead_code)]
fn max_inflight(stages: usize, microbatches: usize) -> usize {
    inflight_microbatches(ScheduleKind::OneFOneB, 0, stages, microbatches)
}
