//! Fault tolerance — recovery time vs checkpoint interval vs world size.
//!
//! Beyond the paper: DynMo's elastic story assumes a reliable fleet, so
//! this figure characterizes the resilience subsystem instead.  For each
//! (world size, checkpoint interval) cell the harness trains on the real
//! multi-rank runtime, kills one rank mid-run via a `FaultPlan`, recovers
//! on the surviving world, and reports:
//!
//! * the simulated recovery time (restore + communicator rebuild + replay),
//! * the iterations replayed (bounded by the checkpoint interval),
//! * the total checkpoint-write overhead paid to keep that bound,
//! * whether the recovered run's final state matches a failure-free run of
//!   the same seed bit-for-bit (it must).
//!
//! Run with `--scale {smoke|default|paper}`.

use dynmo_bench::{dump_json, fmt, ExperimentScale, Table};
use dynmo_core::recovery::{
    run_resilient, RecoveryConfig, ResilientTrainingConfig, WorkloadConfig,
};
use dynmo_runtime::FaultPlan;
use serde::Serialize;

#[derive(Serialize)]
struct FaultToleranceRow {
    world_size: usize,
    checkpoint_interval: u64,
    iterations: u64,
    kill_at: u64,
    recovery_time: f64,
    replayed_iterations: u64,
    checkpoints_taken: u64,
    checkpoint_overhead: f64,
    recovery_overhead_percent: f64,
    state_matches_failure_free: bool,
}

fn sweep(scale: ExperimentScale) -> (Vec<usize>, Vec<u64>, u64) {
    match scale {
        ExperimentScale::Smoke => (vec![4], vec![5, 10], 40),
        ExperimentScale::Default => (vec![4, 6, 8], vec![5, 10, 20, 40], 120),
        ExperimentScale::Paper => (vec![4, 8, 12, 16], vec![5, 10, 25, 50, 100], 400),
    }
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!(
        "Fault tolerance: recovery time vs checkpoint interval vs world size (scale: {scale:?})\n"
    );

    let (world_sizes, intervals, iterations) = sweep(scale);
    let kill_at = iterations * 3 / 5;

    let mut rows: Vec<FaultToleranceRow> = Vec::new();
    let mut table = Table::new(
        "Kill one rank mid-training, recover from the last checkpoint",
        &[
            "World",
            "Ckpt every",
            "Recovery (s)",
            "Replayed",
            "Ckpts",
            "Ckpt cost (s)",
            "Resilience ovh",
            "State match",
        ],
    );

    for &world_size in &world_sizes {
        for &interval in &intervals {
            let workload = WorkloadConfig::small(world_size * 3, 42);
            let recovery = RecoveryConfig {
                checkpoint_interval: interval,
                ..RecoveryConfig::default()
            };
            let clean = run_resilient(&ResilientTrainingConfig {
                world_size,
                iterations,
                workload,
                fault_plan: FaultPlan::none(),
                recovery,
            })
            .expect("failure-free run");
            let faulty = run_resilient(&ResilientTrainingConfig {
                world_size,
                iterations,
                workload,
                fault_plan: FaultPlan::none().kill(world_size - 1, kill_at),
                recovery,
            })
            .expect("fault-injected run");

            let recovery_time: f64 = faulty.recoveries.iter().map(|r| r.cost).sum();
            let checkpoint_overhead = faulty.overhead.recovery - recovery_time;
            let matches = faulty.weights_checksum == clean.weights_checksum;
            // A simulated iteration-time budget turns the overhead into a
            // fraction, mirroring the Figure 4 presentation.
            let run_time = iterations as f64 * recovery.iteration_cost;
            let overhead_percent = faulty.overhead.recovery / run_time * 100.0;

            table.add_row(vec![
                world_size.to_string(),
                interval.to_string(),
                fmt(recovery_time, 2),
                faulty.replayed_iterations.to_string(),
                faulty.checkpoints_taken.to_string(),
                fmt(checkpoint_overhead, 2),
                format!("{overhead_percent:.1}%"),
                if matches { "yes" } else { "DIVERGED" }.to_string(),
            ]);
            rows.push(FaultToleranceRow {
                world_size,
                checkpoint_interval: interval,
                iterations,
                kill_at,
                recovery_time,
                replayed_iterations: faulty.replayed_iterations,
                checkpoints_taken: faulty.checkpoints_taken,
                checkpoint_overhead,
                recovery_overhead_percent: overhead_percent,
                state_matches_failure_free: matches,
            });
        }
    }

    table.print();
    println!(
        "Expected trade-off: shorter intervals replay less on failure but pay\n\
         more checkpoint-write overhead; the recovered state must match the\n\
         failure-free run bit-for-bit in every cell."
    );
    if let Some(path) = dump_json("fault_tolerance", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}
