//! Lemma 2 — empirical convergence of the diffusion balancer vs its
//! theoretical Õ(N²) round bound.
//!
//! The paper proves that the decentralized diffusion balancer γ-converges in
//! `O(N² log(SN/γ) log N)` rounds.  This binary measures the actual number
//! of rounds needed on randomized workloads for growing worker counts and
//! prints it next to the bound, confirming the bound holds (and by how much
//! slack).

use dynmo_bench::{dump_json, ExperimentScale, Table};
use dynmo_core::balancer::{BalanceObjective, BalanceRequest, DiffusionBalancer, LoadBalancer};
use dynmo_core::load_imbalance;
use dynmo_pipeline::LayerLoad;
use serde::Serialize;

#[derive(Serialize)]
struct ConvergenceRow {
    workers: usize,
    layers: usize,
    rounds: u64,
    bound: f64,
    imbalance_before: f64,
    imbalance_after: f64,
    /// Wall-clock seconds using the O(p) incremental potential update.
    seconds_incremental: f64,
    /// Wall-clock seconds recomputing the full O(p²) potential per
    /// candidate move (the pre-fix behaviour), for the same workload.
    seconds_full_recompute: f64,
}

/// Median wall-clock seconds of `f` over `trials` runs.
// Benchmarking is a sanctioned wall-clock use (see clippy.toml).
#[allow(clippy::disallowed_methods)]
fn time_median(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn synthetic_loads(layers: usize, seed: u64) -> Vec<LayerLoad> {
    // Deterministic skewed layer times: a mix of heavy and light layers.
    (0..layers)
        .map(|i| {
            let x = ((i as u64 + 1).wrapping_mul(seed).wrapping_mul(2654435761)) % 1000;
            let time = 0.2 + (x as f64 / 1000.0) * 2.8;
            LayerLoad {
                layer_id: i,
                fwd_time: time / 3.0,
                bwd_time: 2.0 * time / 3.0,
                param_count: (time * 1.0e6) as u64,
                static_bytes: (time * 1.6e7) as u64,
                activation_bytes: 1_000,
                migration_bytes: (time * 1.6e7) as u64,
            }
        })
        .collect()
}

fn main() {
    let scale = ExperimentScale::from_process_args();
    println!("Lemma 2: diffusion-balancer convergence (scale: {scale:?})\n");

    let worker_counts: Vec<usize> = match scale {
        ExperimentScale::Smoke => vec![4, 8],
        _ => vec![2, 4, 8, 16, 24, 32, 48, 64],
    };

    let mut rows = Vec::new();
    let mut table = Table::new(
        "Diffusion convergence: measured rounds vs Lemma 2 bound",
        &[
            "Workers",
            "Layers",
            "Rounds",
            "Bound",
            "ΔL before",
            "ΔL after",
            "O(p) time",
            "O(p²) time",
        ],
    );
    let balancer = DiffusionBalancer::new();
    let full_recompute = DiffusionBalancer {
        use_incremental_potential: false,
        ..DiffusionBalancer::new()
    };
    let trials = match scale {
        ExperimentScale::Smoke => 3,
        _ => 7,
    };
    for &workers in &worker_counts {
        let layers = workers * 4;
        let loads = synthetic_loads(layers, 7);
        let request = BalanceRequest::new(&loads, workers, u64::MAX, BalanceObjective::ByTime);
        let uniform = dynmo_pipeline::StageAssignment::uniform(layers, workers);
        let before = load_imbalance(&dynmo_core::balancer::stage_weights(
            &uniform,
            &loads,
            BalanceObjective::ByTime,
        ));
        let outcome = balancer.rebalance(&request);
        let seconds_incremental = time_median(trials, || {
            std::hint::black_box(balancer.rebalance(&request));
        });
        let seconds_full_recompute = time_median(trials, || {
            std::hint::black_box(full_recompute.rebalance(&request));
        });
        // Both paths must commit exactly the same moves.
        assert_eq!(
            outcome.assignment,
            full_recompute.rebalance(&request).assignment
        );
        let after = load_imbalance(&dynmo_core::balancer::stage_weights(
            &outcome.assignment,
            &loads,
            BalanceObjective::ByTime,
        ));
        let total: f64 = loads.iter().map(|l| l.total_time()).sum();
        let bound = balancer.lemma2_round_bound(workers, total);
        table.add_row(vec![
            workers.to_string(),
            layers.to_string(),
            outcome.rounds.to_string(),
            format!("{bound:.0}"),
            format!("{before:.3}"),
            format!("{after:.3}"),
            format!("{:.2} ms", seconds_incremental * 1e3),
            format!("{:.2} ms", seconds_full_recompute * 1e3),
        ]);
        rows.push(ConvergenceRow {
            workers,
            layers,
            rounds: outcome.rounds,
            bound,
            imbalance_before: before,
            imbalance_after: after,
            seconds_incremental,
            seconds_full_recompute,
        });
        assert!(
            (outcome.rounds as f64) <= bound,
            "Lemma 2 bound violated at {workers} workers"
        );
    }
    table.print();
    println!("All measured round counts are within the Lemma 2 bound.");
    if let Some(row) = rows.iter().find(|r| r.workers == 64) {
        println!(
            "p = 64: incremental potential {:.2} ms vs full recompute {:.2} ms ({:.1}× faster)",
            row.seconds_incremental * 1e3,
            row.seconds_full_recompute * 1e3,
            row.seconds_full_recompute / row.seconds_incremental.max(1e-12),
        );
    }
    if let Some(path) = dump_json("lemma2_convergence", &rows) {
        println!("(raw rows written to {})", path.display());
    }
}
