//! Acceptance contract of the fleet co-location bench.
//!
//! `fleet_sweep` is only worth shipping if the closed loop beats the
//! static GPU split on *both* axes — higher aggregate serving SLO
//! attainment inside the diurnal crunch window AND a smaller training
//! throughput loss over the day — and if the story is reproducible: the
//! trainer's pre-steal trajectory must be bit-identical to an
//! undisturbed run, and the whole serialized report must be
//! byte-identical across rayon thread counts.  These tests pin that
//! contract at smoke scale (the cell CI gates on).

use dynmo_bench::{run_fleet_sweep, ExperimentScale};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail")
}

/// Serialize exactly like `dump_json` does, so equality here is equality
/// of the `results/BENCH_fleet.json` bytes on disk.
fn artifact<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("fleet report serializes")
}

#[test]
fn closed_loop_beats_static_split_on_both_axes_at_smoke_scale() {
    let report = run_fleet_sweep(ExperimentScale::Smoke);

    assert!(
        report.peak_attainment_margin_pp > 0.0,
        "closed loop must win the diurnal peak: closed {:.1}% vs static {:.1}%",
        report.closed.peak_attainment * 100.0,
        report.static_split.peak_attainment * 100.0,
    );
    assert!(
        report.training_loss_margin_pp > 0.0,
        "closed loop must lose less training throughput: closed {:.1}% vs static {:.1}%",
        report.closed.training_loss * 100.0,
        report.static_split.training_loss * 100.0,
    );

    // The margin is only interesting if the controller actually acted:
    // GPUs left the trainer during the crunch and came back afterwards.
    assert!(report.closed.steals > 0, "the crest must force a steal");
    assert!(report.closed.returns > 0, "the trough must return GPUs");
    assert!(
        report.closed.trainer_mean_world < 12.0,
        "steals must pull the mean trainer world below the initial 12"
    );
}

#[test]
fn pre_steal_trajectory_is_pinned_to_the_undisturbed_reference() {
    let report = run_fleet_sweep(ExperimentScale::Smoke);
    assert!(
        report.pinned_boundaries > 0,
        "the first steal must land after at least one chunk boundary"
    );
    assert!(
        report.trajectory_pinned,
        "pre-steal chunk checksums must be bit-identical to the undisturbed world-12 run"
    );
}

#[test]
fn fleet_sweep_is_byte_identical_across_thread_counts() {
    let single = pool(1).install(|| run_fleet_sweep(ExperimentScale::Smoke));
    let multi = pool(4).install(|| run_fleet_sweep(ExperimentScale::Smoke));
    assert_eq!(multi, single, "reports differ between 1 and 4 threads");
    assert_eq!(artifact(&multi), artifact(&single));
}
