//! The artifact-determinism contract of the work-stealing pool.
//!
//! Every sweep fans its grid across rayon and writes the rows to a JSON
//! artifact.  Those artifacts must not depend on the machine's core count:
//! a run under the real multi-thread pool has to be *byte-identical* —
//! same row order, same float bits, same serialized string — to a forced
//! single-thread run.  The rayon shim guarantees this by making every
//! parallel iterator index-addressable (result `i` always lands in slot
//! `i`); these tests pin the guarantee end-to-end through the actual sweep
//! entry points.

use dynmo_bench::serving::{run_serving_sweep, ServingSweepConfig};
use dynmo_bench::sweep::{run_sweep, SweepConfig};
use dynmo_bench::{run_composite_sweep, ExperimentScale};
use proptest::prelude::*;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail")
}

/// Serialize exactly like `dump_json` does, so equality here is equality
/// of the artifact bytes on disk.
fn artifact<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("sweep rows serialize")
}

#[test]
fn pipeline_sweep_is_byte_identical_across_thread_counts() {
    let config = SweepConfig::for_scale(ExperimentScale::Smoke);
    let single = pool(1).install(|| run_sweep(&config));
    let multi = pool(4).install(|| run_sweep(&config));
    assert_eq!(multi, single, "rows differ between 1 and 4 threads");
    assert_eq!(artifact(&multi), artifact(&single));
}

#[test]
fn serving_sweep_is_byte_identical_across_thread_counts() {
    let config = ServingSweepConfig::for_scale(ExperimentScale::Smoke);
    let single = pool(1).install(|| run_serving_sweep(&config));
    let multi = pool(4).install(|| run_serving_sweep(&config));
    assert_eq!(multi, single, "rows differ between 1 and 4 threads");
    assert_eq!(artifact(&multi), artifact(&single));
}

/// Composite cells embed real wall-clock — the balancer's measured
/// `algorithm_time` feeds `overhead_fraction` and `tokens_per_second` — so
/// those two fields differ even between two sequential runs.  Everything
/// the simulation itself computes (row order, bubble ratios, imbalance,
/// rebalance counts, trajectory checksums, recovery equivalence) must
/// still be exactly identical across thread counts.
#[test]
fn composite_sweep_simulated_fields_are_identical_across_thread_counts() {
    let single = pool(1).install(|| run_composite_sweep(ExperimentScale::Smoke));
    let multi = pool(4).install(|| run_composite_sweep(ExperimentScale::Smoke));
    assert_eq!(multi.len(), single.len());
    for (m, s) in multi.iter().zip(single.iter()) {
        assert_eq!(m.stack, s.stack);
        assert_eq!(m.balancer, s.balancer);
        assert_eq!(m.schedule, s.schedule);
        assert_eq!(m.model, s.model);
        assert_eq!(m.stages, s.stages);
        assert_eq!(m.iterations, s.iterations);
        assert_eq!(m.bubble_ratio.to_bits(), s.bubble_ratio.to_bits());
        assert_eq!(m.average_idleness.to_bits(), s.average_idleness.to_bits());
        assert_eq!(m.mean_imbalance.to_bits(), s.mean_imbalance.to_bits());
        assert_eq!(m.rebalance_events, s.rebalance_events);
        assert_eq!(m.trajectory_checksum, s.trajectory_checksum);
        assert_eq!(m.killed_at, s.killed_at);
        assert_eq!(m.resumed_from, s.resumed_from);
        assert_eq!(m.recovery_bit_identical, s.recovery_bit_identical);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random sub-grids of the pipeline sweep (random axis subsets and
    /// thread counts) stay byte-identical too — determinism is a property
    /// of the pool, not of one blessed grid shape.
    #[test]
    fn random_pipeline_subgrids_are_byte_identical(
        stage_pick in prop::collection::vec(0usize..3, 1..3),
        mb_pick in prop::collection::vec(0usize..2, 1..3),
        imbalance_pick in 0usize..2,
        threads in 2usize..6,
    ) {
        let base = SweepConfig::for_scale(ExperimentScale::Smoke);
        let mut config = base.clone();
        config.stage_counts = stage_pick
            .iter()
            .map(|&i| base.stage_counts[i])
            .collect();
        config.microbatch_counts = mb_pick
            .iter()
            .map(|&i| base.microbatch_counts[i])
            .collect();
        config.imbalance_factors = vec![base.imbalance_factors[imbalance_pick]];
        let single = pool(1).install(|| run_sweep(&config));
        let multi = pool(threads).install(|| run_sweep(&config));
        prop_assert_eq!(&multi, &single);
        prop_assert_eq!(artifact(&multi), artifact(&single));
    }
}
