//! Telemetry neutrality pins: attaching a recorder to a sweep must not
//! change a single byte of the sweep artifact, and the recorded event
//! stream itself must be a deterministic set (same events regardless of
//! which thread simulated which cell).

use std::sync::Arc;

use dynmo_bench::{
    run_serving_cell, run_serving_cell_recorded, run_sweep, run_sweep_recorded, ExperimentScale,
    ServingCase, SweepConfig,
};
use dynmo_serve::{ArrivalProcess, ServeBalancerKind};
use dynmo_telemetry::{Event, MemoryRecorder};

/// A stable textual key for one recorded event (float bits included), used
/// to compare event streams as multisets.
fn event_key(event: &Event) -> String {
    match event {
        Event::Span(s) => format!(
            "span/{}/{}/{}/{:016x}/{:016x}",
            s.group,
            s.lane,
            s.name,
            s.start.to_bits(),
            s.end.to_bits()
        ),
        Event::Instant(i) => format!(
            "instant/{}/{}/{}/{:016x}/{:?}",
            i.group,
            i.kind.name(),
            i.name,
            i.time.to_bits(),
            i.args
        ),
        Event::Counter(c) => format!(
            "counter/{}/{}/{:016x}/{:016x}",
            c.group,
            c.name,
            c.time.to_bits(),
            c.value.to_bits()
        ),
        Event::Log(l) => format!("log/{}/{}", l.level.label(), l.message),
    }
}

fn sorted_keys(recorder: &MemoryRecorder) -> Vec<String> {
    let mut keys: Vec<String> = recorder.snapshot().iter().map(event_key).collect();
    keys.sort();
    keys
}

#[test]
fn recorded_pipeline_sweep_is_byte_identical_to_plain() {
    let config = SweepConfig::for_scale(ExperimentScale::Smoke);
    let plain = run_sweep(&config);
    let recorder = MemoryRecorder::new();
    let recorded = run_sweep_recorded(&config, &recorder);

    let plain_json = serde_json::to_string_pretty(&plain).unwrap();
    let recorded_json = serde_json::to_string_pretty(&recorded).unwrap();
    assert_eq!(plain_json, recorded_json, "artifact bytes must not change");

    // Every cell recorded its per-rank timeline: at least one span per
    // stage of every cell, all on that cell's own group.
    assert!(!recorder.is_empty());
    let events = recorder.snapshot();
    let groups: std::collections::BTreeSet<usize> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span(s) => Some(s.group),
            _ => None,
        })
        .collect();
    assert_eq!(groups.len(), config.cells().len(), "one group per cell");
}

#[test]
fn recorded_event_stream_is_thread_independent() {
    // Two recorded runs of the same grid — scheduled by the work-stealing
    // pool in whatever order — must record the same event multiset.
    let config = SweepConfig::for_scale(ExperimentScale::Smoke);
    let first = MemoryRecorder::new();
    let second = MemoryRecorder::new();
    run_sweep_recorded(&config, &first);
    run_sweep_recorded(&config, &second);
    assert_eq!(sorted_keys(&first), sorted_keys(&second));
}

#[test]
fn recorded_serving_cell_matches_plain_bit_for_bit() {
    let case = ServingCase {
        process: ArrivalProcess::Bursty {
            base_rate: 2.0,
            spike_rate: 30.0,
            spike_start: 8.0,
            spike_duration: 12.0,
        },
        duration: 30.0,
        early_exit: true,
        balancer: ServeBalancerKind::Partition,
        elastic: true,
        max_replicas: 4,
        seed: 0x5e11_ce11,
    };
    let plain = run_serving_cell(&case);
    let recorder = Arc::new(MemoryRecorder::new());
    let recorded = run_serving_cell_recorded(&case, recorder.clone());
    assert_eq!(
        serde_json::to_string_pretty(&plain).unwrap(),
        serde_json::to_string_pretty(&recorded).unwrap(),
        "serving cell bytes must not change"
    );
    assert!(!recorder.is_empty(), "the serving run recorded events");
}
