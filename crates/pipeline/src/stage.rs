//! Layer→stage assignments.
//!
//! The assignment is the object DynMo's balancers optimize: moving a layer
//! between pipeline stages is exactly rewriting this map (and paying the
//! migration cost).  Pipeline parallelism requires the assignment to be
//! *contiguous* — stage `s` holds a consecutive run of layers — because
//! activations flow front-to-back; re-packing may leave later stages empty,
//! which corresponds to released GPUs.

use serde::{Deserialize, Serialize};

/// A mapping of model layers onto pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAssignment {
    num_stages: usize,
    /// `layer_to_stage[i]` is the stage holding layer `i`.
    layer_to_stage: Vec<usize>,
}

impl StageAssignment {
    /// Build an assignment from an explicit layer→stage map.
    pub fn new(num_stages: usize, layer_to_stage: Vec<usize>) -> Result<Self, String> {
        if num_stages == 0 {
            return Err("num_stages must be positive".into());
        }
        for (layer, &stage) in layer_to_stage.iter().enumerate() {
            if stage >= num_stages {
                return Err(format!(
                    "layer {layer} assigned to stage {stage}, but there are only {num_stages} stages"
                ));
            }
        }
        Ok(StageAssignment {
            num_stages,
            layer_to_stage,
        })
    }

    /// Build an assignment from per-stage layer *counts*, front to back
    /// (stage 0 gets the first `counts[0]` layers, and so on).
    pub fn from_counts(counts: &[usize]) -> Self {
        let num_stages = counts.len().max(1);
        let mut layer_to_stage = Vec::with_capacity(counts.iter().sum());
        for (stage, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                layer_to_stage.push(stage);
            }
        }
        StageAssignment {
            num_stages,
            layer_to_stage,
        }
    }

    /// Evenly split `num_layers` layers over `num_stages` stages (the
    /// Megatron-LM static baseline): earlier stages get the remainder.
    pub fn uniform(num_layers: usize, num_stages: usize) -> Self {
        let base = num_layers / num_stages;
        let extra = num_layers % num_stages;
        let counts: Vec<usize> = (0..num_stages)
            .map(|s| base + usize::from(s < extra))
            .collect();
        Self::from_counts(&counts)
    }

    /// Number of pipeline stages (including possibly-empty ones).
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of layers covered by the assignment.
    pub fn num_layers(&self) -> usize {
        self.layer_to_stage.len()
    }

    /// The stage holding `layer`.
    pub fn stage_of(&self, layer: usize) -> usize {
        self.layer_to_stage[layer]
    }

    /// The full layer→stage map.
    pub fn layer_to_stage(&self) -> &[usize] {
        &self.layer_to_stage
    }

    /// The layers assigned to `stage`, in model order.
    pub fn layers_of(&self, stage: usize) -> Vec<usize> {
        self.layer_to_stage
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == stage)
            .map(|(l, _)| l)
            .collect()
    }

    /// Per-stage layer counts.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_stages];
        for &s in &self.layer_to_stage {
            counts[s] += 1;
        }
        counts
    }

    /// Stages that hold at least one layer (re-packing releases the rest).
    pub fn active_stages(&self) -> Vec<usize> {
        self.counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, _)| s)
            .collect()
    }

    /// Whether the assignment is contiguous: every stage's layers form one
    /// consecutive run and stage indices are non-decreasing front-to-back.
    pub fn is_contiguous(&self) -> bool {
        self.layer_to_stage.windows(2).all(|w| w[0] <= w[1])
    }

    /// Move `layer` to `target_stage`, returning the previous stage.
    pub fn move_layer(&mut self, layer: usize, target_stage: usize) -> Result<usize, String> {
        if target_stage >= self.num_stages {
            return Err(format!(
                "target stage {target_stage} out of range ({} stages)",
                self.num_stages
            ));
        }
        if layer >= self.layer_to_stage.len() {
            return Err(format!("layer {layer} out of range"));
        }
        let prev = self.layer_to_stage[layer];
        self.layer_to_stage[layer] = target_stage;
        Ok(prev)
    }

    /// The set of `(layer, from_stage, to_stage)` moves needed to transform
    /// this assignment into `target` (the migration plan the controller
    /// executes after a balancing decision).
    pub fn diff(&self, target: &StageAssignment) -> Vec<(usize, usize, usize)> {
        assert_eq!(
            self.num_layers(),
            target.num_layers(),
            "assignments must cover the same layers"
        );
        self.layer_to_stage
            .iter()
            .zip(target.layer_to_stage.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(layer, (&a, &b))| (layer, a, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_split_matches_megatron_layout() {
        let a = StageAssignment::uniform(24, 4);
        assert_eq!(a.counts(), vec![6, 6, 6, 6]);
        assert!(a.is_contiguous());
        // Non-divisible: remainder goes to the earliest stages.
        let a = StageAssignment::uniform(26, 4);
        assert_eq!(a.counts(), vec![7, 7, 6, 6]);
        assert_eq!(a.num_layers(), 26);
    }

    #[test]
    fn from_counts_builds_contiguous_runs() {
        let a = StageAssignment::from_counts(&[2, 0, 3]);
        assert_eq!(a.num_stages(), 3);
        assert_eq!(a.layer_to_stage(), &[0, 0, 2, 2, 2]);
        assert_eq!(a.layers_of(1), Vec::<usize>::new());
        assert_eq!(a.layers_of(2), vec![2, 3, 4]);
        assert_eq!(a.active_stages(), vec![0, 2]);
        assert!(a.is_contiguous());
    }

    #[test]
    fn new_validates_stage_indices() {
        assert!(StageAssignment::new(2, vec![0, 1, 1]).is_ok());
        assert!(StageAssignment::new(2, vec![0, 2]).is_err());
        assert!(StageAssignment::new(0, vec![]).is_err());
    }

    #[test]
    fn move_layer_updates_the_map() {
        let mut a = StageAssignment::uniform(6, 3);
        assert_eq!(a.stage_of(5), 2);
        let prev = a.move_layer(5, 0).unwrap();
        assert_eq!(prev, 2);
        assert_eq!(a.stage_of(5), 0);
        assert!(!a.is_contiguous());
        assert!(a.move_layer(5, 9).is_err());
        assert!(a.move_layer(99, 0).is_err());
    }

    #[test]
    fn diff_lists_exactly_the_changed_layers() {
        let a = StageAssignment::uniform(6, 3);
        let mut b = a.clone();
        b.move_layer(2, 2).unwrap();
        b.move_layer(3, 0).unwrap();
        let moves = a.diff(&b);
        assert_eq!(moves, vec![(2, 1, 2), (3, 1, 0)]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    #[should_panic(expected = "same layers")]
    fn diff_requires_matching_layer_counts() {
        let a = StageAssignment::uniform(6, 3);
        let b = StageAssignment::uniform(7, 3);
        let _ = a.diff(&b);
    }

    #[test]
    fn uniform_with_more_stages_than_layers_leaves_empty_stages() {
        let a = StageAssignment::uniform(3, 8);
        assert_eq!(a.num_layers(), 3);
        assert_eq!(a.active_stages(), vec![0, 1, 2]);
        assert_eq!(a.counts()[3..], [0, 0, 0, 0, 0]);
    }
}
