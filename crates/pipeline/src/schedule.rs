//! Micro-batch schedules for pipeline parallelism.
//!
//! The paper's experiments use Megatron-style pipeline schedules (its
//! Figure 1 uses the "almost zero-bubble" scheme as the best-known
//! baseline).  Four schedules are implemented, spanning that space.  With
//! `p` stages, `m` micro-batches, per-micro-batch forward time `f` and
//! backward time `b` on a balanced pipeline, their inherent bubbles are:
//!
//! * **GPipe** — all forwards, then all backwards; bubble time
//!   `(p−1)·(f+b)` and every forward activation is held until its backward.
//! * **1F1B** (PipeDream-flush / Megatron default) — a warm-up of `p−s−1`
//!   forwards on stage `s` followed by alternating forward/backward; the
//!   same `(p−1)·(f+b)` bubble as GPipe but with at most `p−s` activations
//!   in flight.
//! * **Interleaved 1F1B** ([`ScheduleKind::Interleaved1F1B`], Megatron's
//!   `--num-layers-per-virtual-pipeline-stage` scheme) — each worker hosts
//!   `v` model chunks ("virtual stages"), so the pipeline ramps up in
//!   per-chunk steps of `(f+b)/v` and the bubble shrinks to
//!   `(p−1)·(f+b)/v`, at the cost of `v×` more activation ramp-up and more
//!   frequent boundary traffic.
//! * **ZB-H1** ([`ScheduleKind::ZeroBubbleH1`], the memory-neutral schedule
//!   of the zero-bubble pipeline-parallelism family) — the backward pass is
//!   split into an input-gradient half ([`OpKind::BackwardInput`], on the
//!   critical path to the previous stage) and a weight-gradient half
//!   ([`OpKind::BackwardWeight`], local fill work).  The gradient chain
//!   propagates at `b/2` per stage instead of `b`, shrinking the balanced
//!   bubble from `(p−1)·(f+b)` to `(p−1)·(f+b/2)` without holding more
//!   activations than 1F1B.
//!
//! What matters for DynMo is the *extra* bubble created when per-stage
//! compute times diverge, which all four schedules expose identically
//! through the simulator; the schedule choice sets the baseline each
//! balancer is measured against.

use serde::{Deserialize, Serialize};

/// Which pipeline schedule to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// All forward micro-batches, then all backward micro-batches.
    GPipe,
    /// One-forward-one-backward (Megatron's default non-interleaved
    /// schedule).
    OneFOneB,
    /// Megatron's interleaved 1F1B: every worker hosts `virtual_stages`
    /// model chunks, shrinking the warm-up bubble by that factor.
    Interleaved1F1B {
        /// Model chunks per worker (`v`); `1` degenerates to [`OneFOneB`].
        ///
        /// [`OneFOneB`]: ScheduleKind::OneFOneB
        virtual_stages: usize,
    },
    /// ZB-H1-style zero-bubble schedule: backward split into input-gradient
    /// and weight-gradient halves, with the weight half used as fill work.
    ZeroBubbleH1,
}

impl ScheduleKind {
    /// The four schedule family members at their canonical settings, in
    /// bubble-size order (largest first) — the sweep grid and figure bins
    /// iterate this list.
    pub const ALL: [ScheduleKind; 4] = [
        ScheduleKind::GPipe,
        ScheduleKind::OneFOneB,
        ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
        ScheduleKind::ZeroBubbleH1,
    ];

    /// Number of model chunks each worker hosts (1 for everything except
    /// the interleaved schedule).
    pub fn virtual_stages(&self) -> usize {
        match self {
            ScheduleKind::Interleaved1F1B { virtual_stages } => (*virtual_stages).max(1),
            _ => 1,
        }
    }

    /// The number of chunks the schedule actually uses for a pipeline of
    /// `num_stages` over `num_microbatches`: 1 whenever the interleaved
    /// schedule degrades to plain 1F1B (a single chunk, or a micro-batch
    /// count the chunk rotation cannot divide evenly over the ranks).
    pub fn effective_virtual_stages(&self, num_stages: usize, num_microbatches: usize) -> usize {
        let v = self.virtual_stages();
        if v > 1 && num_microbatches.is_multiple_of(num_stages) {
            v
        } else {
            1
        }
    }

    /// Number of warm-up forward ops (micro-batch *chunks* under the
    /// interleaved schedule) the worker at `stage` runs before its first
    /// backward.  This is the single source of the ramp-up depth: both
    /// [`worker_op_order`] and the memory model's in-flight activation
    /// count derive from it, so the two cannot drift apart.
    pub fn warmup_ops(&self, stage: usize, num_stages: usize, num_microbatches: usize) -> usize {
        let m = num_microbatches;
        let p = num_stages;
        match self {
            // GPipe runs every forward before any backward.
            ScheduleKind::GPipe => m,
            ScheduleKind::OneFOneB | ScheduleKind::ZeroBubbleH1 => (p - stage - 1).min(m),
            ScheduleKind::Interleaved1F1B { .. } => {
                let v = self.effective_virtual_stages(p, m);
                if v == 1 {
                    return (p - stage - 1).min(m);
                }
                // Megatron's warm-up: two extra slots per stage of depth
                // plus a full round per extra chunk; when m == p there is
                // no steady state and the schedule degenerates to
                // all-forwards-then-all-backwards (Megatron's
                // `num_microbatches == p` special case).
                if m == p {
                    m * v
                } else {
                    ((p - stage - 1) * 2 + (v - 1) * p).min(m * v)
                }
            }
        }
    }

    /// Whether the backward pass is split into input-gradient and
    /// weight-gradient ops.
    pub fn splits_backward(&self) -> bool {
        matches!(self, ScheduleKind::ZeroBubbleH1)
    }

    /// Human-readable label used in tables and sweep artifacts.
    pub fn label(&self) -> String {
        match self {
            ScheduleKind::GPipe => "GPipe".to_string(),
            ScheduleKind::OneFOneB => "1F1B".to_string(),
            ScheduleKind::Interleaved1F1B { virtual_stages } => {
                format!("Interleaved 1F1B (v={virtual_stages})")
            }
            ScheduleKind::ZeroBubbleH1 => "ZB-H1".to_string(),
        }
    }
}

/// The kind of work item a worker executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass of one micro-batch through the worker's stage (chunk).
    Forward,
    /// Full (fused) backward pass of one micro-batch.
    Backward,
    /// Input-gradient half of a split backward: computes the gradient
    /// handed to the previous stage, so it sits on the pipeline's critical
    /// path.
    BackwardInput,
    /// Weight-gradient half of a split backward: purely local work with no
    /// cross-stage consumer, schedulable into bubbles.
    BackwardWeight,
}

impl OpKind {
    /// Whether this op produces the gradient consumed by the previous
    /// stage (i.e. acts as the backward-chain producer).
    pub fn produces_input_gradient(&self) -> bool {
        matches!(self, OpKind::Backward | OpKind::BackwardInput)
    }
}

/// One work item in a worker's local order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// Forward, backward, or one half of a split backward.
    pub kind: OpKind,
    /// Micro-batch index.
    pub microbatch: usize,
    /// Model-chunk index on the worker (always 0 unless the schedule is
    /// interleaved; chunk `c` of worker `w` is virtual stage `c·p + w`).
    pub chunk: usize,
}

impl Op {
    fn new(kind: OpKind, microbatch: usize, chunk: usize) -> Self {
        Op {
            kind,
            microbatch,
            chunk,
        }
    }

    /// Compact label used for trace/timeline exports: `F3` (forward of
    /// micro-batch 3), `B3` (fused backward), `Bi3`/`Bw3` (split backward
    /// halves), with a `.c<chunk>` suffix for interleaved model chunks
    /// beyond the first (e.g. `F3.c1`).
    pub fn trace_label(&self) -> String {
        let kind = match self.kind {
            OpKind::Forward => "F",
            OpKind::Backward => "B",
            OpKind::BackwardInput => "Bi",
            OpKind::BackwardWeight => "Bw",
        };
        if self.chunk == 0 {
            format!("{kind}{}", self.microbatch)
        } else {
            format!("{kind}{}.c{}", self.microbatch, self.chunk)
        }
    }
}

/// Map position `i` of a rank's forward (or backward) sequence under the
/// interleaved schedule to its `(chunk, microbatch)`.
///
/// Megatron orders the `m·v` micro-batch-chunks in groups of `p`
/// micro-batches: within a group the rank runs chunk 0 for all `p`
/// micro-batches, then chunk 1, and so on; backwards visit chunks in
/// reverse.  Requires `p | m` (enforced by the caller's fallback).
fn interleaved_position(
    i: usize,
    num_stages: usize,
    v: usize,
    m: usize,
    forward: bool,
) -> (usize, usize) {
    debug_assert!(m.is_multiple_of(num_stages));
    let full_group = num_stages * v;
    let pos = i % full_group;
    let chunk = pos / num_stages;
    let microbatch = (i / full_group) * num_stages + pos % num_stages;
    let chunk = if forward { chunk } else { v - 1 - chunk };
    (chunk, microbatch)
}

/// The order in which the worker at `stage` (of `num_stages`) executes its
/// ops over `num_microbatches` micro-batches.
///
/// For [`ScheduleKind::Interleaved1F1B`] the worker runs `v` forwards and
/// `v` backwards per micro-batch (one per chunk); for
/// [`ScheduleKind::ZeroBubbleH1`] every backward is two ops
/// ([`OpKind::BackwardInput`] then [`OpKind::BackwardWeight`]); otherwise
/// each micro-batch contributes one forward and one fused backward.
pub fn worker_op_order(
    kind: ScheduleKind,
    stage: usize,
    num_stages: usize,
    num_microbatches: usize,
) -> Vec<Op> {
    assert!(stage < num_stages, "stage {stage} out of {num_stages}");
    let m = num_microbatches;
    let p = num_stages;
    let warmup = kind.warmup_ops(stage, p, m);
    match kind {
        ScheduleKind::GPipe => {
            let mut ops = Vec::with_capacity(2 * m);
            for mb in 0..m {
                ops.push(Op::new(OpKind::Forward, mb, 0));
            }
            // Backwards in reverse order (LIFO, freeing the most recent
            // activations first, as GPipe does).
            for mb in (0..m).rev() {
                ops.push(Op::new(OpKind::Backward, mb, 0));
            }
            ops
        }
        ScheduleKind::OneFOneB => one_f_one_b_order(warmup, m),
        ScheduleKind::Interleaved1F1B { .. } => {
            let v = kind.effective_virtual_stages(p, m);
            if v == 1 {
                // One chunk per worker is exactly the non-interleaved
                // schedule.  Megatron also requires the micro-batch count
                // to divide evenly over the ranks (its chunk rotation
                // deadlocks otherwise — the warm-up formula assumes full
                // groups); rather than reject such shapes, which DynMo's
                // re-packing can create mid-run by shrinking the stage
                // count, degrade gracefully to 1F1B.
                return one_f_one_b_order(warmup, m);
            }
            let total = m * v;
            let mut ops = Vec::with_capacity(2 * total);
            for i in 0..warmup {
                let (chunk, mb) = interleaved_position(i, p, v, m, true);
                ops.push(Op::new(OpKind::Forward, mb, chunk));
            }
            for i in 0..(total - warmup) {
                let (chunk, mb) = interleaved_position(warmup + i, p, v, m, true);
                ops.push(Op::new(OpKind::Forward, mb, chunk));
                let (chunk, mb) = interleaved_position(i, p, v, m, false);
                ops.push(Op::new(OpKind::Backward, mb, chunk));
            }
            for i in (total - warmup)..total {
                let (chunk, mb) = interleaved_position(i, p, v, m, false);
                ops.push(Op::new(OpKind::Backward, mb, chunk));
            }
            ops
        }
        ScheduleKind::ZeroBubbleH1 => {
            // 1F1B's warm-up and flush, with every backward split into the
            // critical-path input-gradient half and a weight-gradient half
            // that immediately reuses the still-hot activations (keeping
            // the in-flight activation count at 1F1B's level).
            let mut ops = Vec::with_capacity(3 * m);
            for mb in 0..warmup {
                ops.push(Op::new(OpKind::Forward, mb, 0));
            }
            for i in 0..(m - warmup) {
                ops.push(Op::new(OpKind::Forward, warmup + i, 0));
                ops.push(Op::new(OpKind::BackwardInput, i, 0));
                ops.push(Op::new(OpKind::BackwardWeight, i, 0));
            }
            for mb in (m - warmup)..m {
                ops.push(Op::new(OpKind::BackwardInput, mb, 0));
                ops.push(Op::new(OpKind::BackwardWeight, mb, 0));
            }
            ops
        }
    }
}

/// Non-interleaved 1F1B: `warmup` forwards, steady alternation, cool-down
/// backwards.
fn one_f_one_b_order(warmup: usize, m: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(2 * m);
    for mb in 0..warmup {
        ops.push(Op::new(OpKind::Forward, mb, 0));
    }
    // Steady state: 1F1B pairs.
    for i in 0..(m - warmup) {
        ops.push(Op::new(OpKind::Forward, warmup + i, 0));
        ops.push(Op::new(OpKind::Backward, i, 0));
    }
    // Cool-down: remaining backwards.
    for mb in (m - warmup)..m {
        ops.push(Op::new(OpKind::Backward, mb, 0));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kinds(ops: &[Op]) -> (usize, usize) {
        let fwd = ops.iter().filter(|o| o.kind == OpKind::Forward).count();
        let bwd = ops
            .iter()
            .filter(|o| o.kind.produces_input_gradient())
            .count();
        (fwd, bwd)
    }

    #[test]
    fn every_schedule_runs_each_microbatch_once_forward_and_once_backward() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            for num_stages in [1, 2, 4, 8] {
                for m in [1, 2, 4, 8, 32] {
                    for stage in 0..num_stages {
                        let ops = worker_op_order(kind, stage, num_stages, m);
                        let (fwd, bwd) = count_kinds(&ops);
                        assert_eq!(fwd, m, "{kind:?} stage {stage}/{num_stages} m={m}");
                        assert_eq!(bwd, m);
                        // Each microbatch appears exactly once per direction.
                        let mut seen_f = vec![false; m];
                        let mut seen_b = vec![false; m];
                        for op in &ops {
                            let seen = match op.kind {
                                OpKind::Forward => &mut seen_f,
                                OpKind::Backward => &mut seen_b,
                                _ => unreachable!("fused schedules never split backward"),
                            };
                            assert!(!seen[op.microbatch]);
                            seen[op.microbatch] = true;
                            assert_eq!(op.chunk, 0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_covers_every_microbatch_chunk_pair_once_per_direction() {
        for v in [1, 2, 3, 4] {
            let kind = ScheduleKind::Interleaved1F1B { virtual_stages: v };
            for num_stages in [1usize, 2, 4] {
                for m in [1usize, 2, 3, 4, 8, 9] {
                    let effective = kind.effective_virtual_stages(num_stages, m);
                    for stage in 0..num_stages {
                        let ops = worker_op_order(kind, stage, num_stages, m);
                        assert_eq!(ops.len(), 2 * m * effective, "v={v} p={num_stages} m={m}");
                        let mut seen_f = vec![vec![false; m]; effective];
                        let mut seen_b = vec![vec![false; m]; effective];
                        for op in &ops {
                            let seen = match op.kind {
                                OpKind::Forward => &mut seen_f,
                                OpKind::Backward => &mut seen_b,
                                _ => unreachable!("interleaved never splits backward"),
                            };
                            assert!(!seen[op.chunk][op.microbatch]);
                            seen[op.chunk][op.microbatch] = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_falls_back_to_1f1b_when_microbatches_do_not_divide() {
        // Megatron rejects m % p != 0; the reproduction degrades to the
        // non-interleaved schedule instead so re-packing to an awkward
        // stage count cannot crash a run.
        let kind = ScheduleKind::Interleaved1F1B { virtual_stages: 2 };
        for stage in 0..4 {
            assert_eq!(
                worker_op_order(kind, stage, 4, 6),
                worker_op_order(ScheduleKind::OneFOneB, stage, 4, 6)
            );
        }
        assert_eq!(kind.effective_virtual_stages(4, 6), 1);
        assert_eq!(kind.effective_virtual_stages(4, 8), 2);
        assert_eq!(kind.effective_virtual_stages(3, 6), 2);
    }

    #[test]
    fn zero_bubble_emits_split_backward_pairs() {
        let p = 4;
        let m = 8;
        for stage in 0..p {
            let ops = worker_op_order(ScheduleKind::ZeroBubbleH1, stage, p, m);
            assert_eq!(ops.len(), 3 * m);
            let inputs: Vec<usize> = ops
                .iter()
                .filter(|o| o.kind == OpKind::BackwardInput)
                .map(|o| o.microbatch)
                .collect();
            let weights: Vec<usize> = ops
                .iter()
                .filter(|o| o.kind == OpKind::BackwardWeight)
                .map(|o| o.microbatch)
                .collect();
            assert_eq!(inputs, (0..m).collect::<Vec<_>>());
            assert_eq!(weights, (0..m).collect::<Vec<_>>());
            // The weight half never precedes its input half.
            for mb in 0..m {
                let bi = ops
                    .iter()
                    .position(|o| o.kind == OpKind::BackwardInput && o.microbatch == mb)
                    .unwrap();
                let bw = ops
                    .iter()
                    .position(|o| o.kind == OpKind::BackwardWeight && o.microbatch == mb)
                    .unwrap();
                assert!(bw > bi);
            }
        }
    }

    #[test]
    fn interleaved_with_one_chunk_is_plain_1f1b() {
        for stage in 0..4 {
            assert_eq!(
                worker_op_order(
                    ScheduleKind::Interleaved1F1B { virtual_stages: 1 },
                    stage,
                    4,
                    8
                ),
                worker_op_order(ScheduleKind::OneFOneB, stage, 4, 8)
            );
        }
    }

    #[test]
    fn interleaved_runs_chunk_zero_first_and_reverses_for_backward() {
        let kind = ScheduleKind::Interleaved1F1B { virtual_stages: 2 };
        let p = 2;
        let ops = worker_op_order(kind, 0, p, 4);
        // First p forwards are chunk 0, next p are chunk 1.
        assert!(ops[..p].iter().all(|o| o.chunk == 0));
        assert!(ops[p..2 * p].iter().all(|o| o.chunk == 1));
        // The first backward touches the last chunk.
        let first_bwd = ops.iter().find(|o| o.kind == OpKind::Backward).unwrap();
        assert_eq!(first_bwd.chunk, 1);
        assert_eq!(first_bwd.microbatch, 0);
    }

    #[test]
    fn schedule_kind_helpers() {
        assert_eq!(ScheduleKind::GPipe.virtual_stages(), 1);
        assert_eq!(
            ScheduleKind::Interleaved1F1B { virtual_stages: 4 }.virtual_stages(),
            4
        );
        assert_eq!(
            ScheduleKind::Interleaved1F1B { virtual_stages: 0 }.virtual_stages(),
            1
        );
        assert!(ScheduleKind::ZeroBubbleH1.splits_backward());
        assert!(!ScheduleKind::OneFOneB.splits_backward());
        assert!(OpKind::Backward.produces_input_gradient());
        assert!(OpKind::BackwardInput.produces_input_gradient());
        assert!(!OpKind::BackwardWeight.produces_input_gradient());
        assert_eq!(ScheduleKind::ALL.len(), 4);
        let labels: std::collections::HashSet<String> =
            ScheduleKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn gpipe_runs_all_forwards_before_any_backward() {
        let ops = worker_op_order(ScheduleKind::GPipe, 1, 4, 6);
        let first_bwd = ops.iter().position(|o| o.kind == OpKind::Backward).unwrap();
        assert!(ops[..first_bwd].iter().all(|o| o.kind == OpKind::Forward));
        assert_eq!(first_bwd, 6);
    }

    #[test]
    fn one_f_one_b_warmup_depends_on_stage_depth() {
        let p = 4;
        let m = 8;
        // First stage has the longest warm-up (p-1 forwards).
        let ops0 = worker_op_order(ScheduleKind::OneFOneB, 0, p, m);
        let first_bwd0 = ops0
            .iter()
            .position(|o| o.kind == OpKind::Backward)
            .unwrap();
        assert_eq!(first_bwd0, p - 1 + 1); // warmup forwards + 1 steady forward
                                           // Last stage alternates immediately.
        let ops3 = worker_op_order(ScheduleKind::OneFOneB, p - 1, p, m);
        assert_eq!(ops3[0].kind, OpKind::Forward);
        assert_eq!(ops3[1].kind, OpKind::Backward);
        assert_eq!(ops3[0].microbatch, 0);
        assert_eq!(ops3[1].microbatch, 0);
    }

    #[test]
    fn one_f_one_b_backwards_are_in_microbatch_order() {
        let ops = worker_op_order(ScheduleKind::OneFOneB, 1, 4, 8);
        let bwd_order: Vec<usize> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Backward)
            .map(|o| o.microbatch)
            .collect();
        assert_eq!(bwd_order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn warmup_is_capped_by_microbatch_count() {
        // 8 stages but only 2 microbatches: warm-up cannot exceed 2.
        let ops = worker_op_order(ScheduleKind::OneFOneB, 0, 8, 2);
        let (fwd, bwd) = count_kinds(&ops);
        assert_eq!(fwd, 2);
        assert_eq!(bwd, 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn stage_out_of_range_panics() {
        let _ = worker_op_order(ScheduleKind::GPipe, 4, 4, 2);
    }
}
