//! Micro-batch schedules for pipeline parallelism.
//!
//! The paper's experiments use Megatron-style pipeline schedules (its
//! Figure 1 uses the "almost zero-bubble" scheme as the best-known
//! baseline).  The two schedules implemented here bracket that space:
//!
//! * **GPipe** — all forwards, then all backwards; large inherent bubble.
//! * **1F1B** (PipeDream-flush / Megatron default) — a warm-up of forwards
//!   followed by alternating forward/backward; the inherent bubble is
//!   `(p−1)/(m+p−1)` of the iteration, the same asymptotics as the
//!   zero-bubble schemes once `m ≫ p`.
//!
//! What matters for DynMo is not the absolute bubble of the schedule but
//! the *extra* bubble created when per-stage compute times diverge, which
//! both schedules expose identically through the simulator.

use serde::{Deserialize, Serialize};

/// Which pipeline schedule to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// All forward micro-batches, then all backward micro-batches.
    GPipe,
    /// One-forward-one-backward (Megatron's default non-interleaved
    /// schedule).
    OneFOneB,
}

/// The kind of work item a worker executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass of one micro-batch through the worker's stage.
    Forward,
    /// Backward pass of one micro-batch through the worker's stage.
    Backward,
}

/// One work item in a worker's local order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// Forward or backward.
    pub kind: OpKind,
    /// Micro-batch index.
    pub microbatch: usize,
}

/// The order in which the worker at `stage` (of `num_stages`) executes its
/// forward and backward passes over `num_microbatches` micro-batches.
pub fn worker_op_order(
    kind: ScheduleKind,
    stage: usize,
    num_stages: usize,
    num_microbatches: usize,
) -> Vec<Op> {
    assert!(stage < num_stages, "stage {stage} out of {num_stages}");
    let m = num_microbatches;
    let mut ops = Vec::with_capacity(2 * m);
    match kind {
        ScheduleKind::GPipe => {
            for mb in 0..m {
                ops.push(Op {
                    kind: OpKind::Forward,
                    microbatch: mb,
                });
            }
            // Backwards in reverse order (LIFO, freeing the most recent
            // activations first, as GPipe does).
            for mb in (0..m).rev() {
                ops.push(Op {
                    kind: OpKind::Backward,
                    microbatch: mb,
                });
            }
        }
        ScheduleKind::OneFOneB => {
            let warmup = (num_stages - stage - 1).min(m);
            for mb in 0..warmup {
                ops.push(Op {
                    kind: OpKind::Forward,
                    microbatch: mb,
                });
            }
            // Steady state: 1F1B pairs.
            for i in 0..(m - warmup) {
                ops.push(Op {
                    kind: OpKind::Forward,
                    microbatch: warmup + i,
                });
                ops.push(Op {
                    kind: OpKind::Backward,
                    microbatch: i,
                });
            }
            // Cool-down: remaining backwards.
            for mb in (m - warmup)..m {
                ops.push(Op {
                    kind: OpKind::Backward,
                    microbatch: mb,
                });
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kinds(ops: &[Op]) -> (usize, usize) {
        let fwd = ops.iter().filter(|o| o.kind == OpKind::Forward).count();
        let bwd = ops.iter().filter(|o| o.kind == OpKind::Backward).count();
        (fwd, bwd)
    }

    #[test]
    fn every_schedule_runs_each_microbatch_once_forward_and_once_backward() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            for num_stages in [1, 2, 4, 8] {
                for m in [1, 2, 4, 8, 32] {
                    for stage in 0..num_stages {
                        let ops = worker_op_order(kind, stage, num_stages, m);
                        let (fwd, bwd) = count_kinds(&ops);
                        assert_eq!(fwd, m, "{kind:?} stage {stage}/{num_stages} m={m}");
                        assert_eq!(bwd, m);
                        // Each microbatch appears exactly once per direction.
                        let mut seen_f = vec![false; m];
                        let mut seen_b = vec![false; m];
                        for op in &ops {
                            let seen = match op.kind {
                                OpKind::Forward => &mut seen_f,
                                OpKind::Backward => &mut seen_b,
                            };
                            assert!(!seen[op.microbatch]);
                            seen[op.microbatch] = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gpipe_runs_all_forwards_before_any_backward() {
        let ops = worker_op_order(ScheduleKind::GPipe, 1, 4, 6);
        let first_bwd = ops.iter().position(|o| o.kind == OpKind::Backward).unwrap();
        assert!(ops[..first_bwd].iter().all(|o| o.kind == OpKind::Forward));
        assert_eq!(first_bwd, 6);
    }

    #[test]
    fn one_f_one_b_warmup_depends_on_stage_depth() {
        let p = 4;
        let m = 8;
        // First stage has the longest warm-up (p-1 forwards).
        let ops0 = worker_op_order(ScheduleKind::OneFOneB, 0, p, m);
        let first_bwd0 = ops0
            .iter()
            .position(|o| o.kind == OpKind::Backward)
            .unwrap();
        assert_eq!(first_bwd0, p - 1 + 1); // warmup forwards + 1 steady forward
                                           // Last stage alternates immediately.
        let ops3 = worker_op_order(ScheduleKind::OneFOneB, p - 1, p, m);
        assert_eq!(ops3[0].kind, OpKind::Forward);
        assert_eq!(ops3[1].kind, OpKind::Backward);
        assert_eq!(ops3[0].microbatch, 0);
        assert_eq!(ops3[1].microbatch, 0);
    }

    #[test]
    fn one_f_one_b_backwards_are_in_microbatch_order() {
        let ops = worker_op_order(ScheduleKind::OneFOneB, 1, 4, 8);
        let bwd_order: Vec<usize> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Backward)
            .map(|o| o.microbatch)
            .collect();
        assert_eq!(bwd_order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn warmup_is_capped_by_microbatch_count() {
        // 8 stages but only 2 microbatches: warm-up cannot exceed 2.
        let ops = worker_op_order(ScheduleKind::OneFOneB, 0, 8, 2);
        let (fwd, bwd) = count_kinds(&ops);
        assert_eq!(fwd, 2);
        assert_eq!(bwd, 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn stage_out_of_range_panics() {
        let _ = worker_op_order(ScheduleKind::GPipe, 4, 4, 2);
    }
}
