//! Simulation outputs: per-iteration timing, idleness, and bubble ratio.

use serde::{Deserialize, Serialize};

use crate::schedule::Op;

/// A scheduled execution span of one op on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSpan {
    /// The op that was executed.
    pub op: Op,
    /// Start time in seconds from the beginning of the iteration.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// The full execution timeline of one worker within an iteration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerTimeline {
    /// Ordered op spans.
    pub spans: Vec<OpSpan>,
}

impl WorkerTimeline {
    /// Total busy time (sum of span durations).
    pub fn busy_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Completion time of the last span (0 if the worker did nothing).
    pub fn finish_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }
}

/// The result of simulating one training iteration on one pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Iteration makespan in seconds (time until the last worker finishes).
    pub makespan: f64,
    /// Per-worker busy time in seconds.
    pub per_worker_busy: Vec<f64>,
    /// Per-worker idle time in seconds (`makespan - busy`).
    pub per_worker_idle: Vec<f64>,
    /// Per-worker execution timelines.
    pub timelines: Vec<WorkerTimeline>,
    /// Per-stage compute time for a single micro-batch (fwd+bwd), i.e. the
    /// load vector the balancers see.
    pub stage_compute_times: Vec<f64>,
}

impl IterationReport {
    /// Number of workers simulated.
    pub fn num_workers(&self) -> usize {
        self.per_worker_busy.len()
    }

    /// Average idleness fraction across workers, in `[0, 1]`: the quantity
    /// plotted on the y-axis of the paper's Figure 1.
    pub fn average_idleness(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_worker_idle.is_empty() {
            return 0.0;
        }
        let total_idle: f64 = self.per_worker_idle.iter().sum();
        total_idle / (self.makespan * self.per_worker_idle.len() as f64)
    }

    /// Bubble ratio: idle time relative to busy time, aggregated over the
    /// pipeline (the way "bubble ratio" is reported in the paper's text,
    /// e.g. "~25% bubble ratio" for Mixtral).
    pub fn bubble_ratio(&self) -> f64 {
        let busy: f64 = self.per_worker_busy.iter().sum();
        if busy <= 0.0 {
            return 0.0;
        }
        let idle: f64 = self.per_worker_idle.iter().sum();
        idle / (busy + idle)
    }

    /// Training throughput in tokens/second given the number of tokens the
    /// pipeline processed this iteration.
    pub fn tokens_per_second(&self, tokens_per_iteration: u64) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        tokens_per_iteration as f64 / self.makespan
    }

    /// The load-imbalance metric ΔL of Equation 2 of the paper, computed
    /// over the per-stage compute times: `(L_max − L_min) / mean(L)`.
    pub fn load_imbalance(&self) -> f64 {
        imbalance(&self.stage_compute_times)
    }
}

/// Equation 2 of the paper: `(L_max − L_min) / mean(L)`, with empty or
/// all-zero load vectors mapping to 0.
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = loads.iter().copied().fold(f64::MIN, f64::max);
    let min = loads.iter().copied().fold(f64::MAX, f64::min);
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    (max - min) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::OpKind;

    fn span(start: f64, end: f64) -> OpSpan {
        OpSpan {
            op: Op {
                kind: OpKind::Forward,
                microbatch: 0,
                chunk: 0,
            },
            start,
            end,
        }
    }

    #[test]
    fn timeline_busy_and_finish_times() {
        let t = WorkerTimeline {
            spans: vec![span(0.0, 1.0), span(2.0, 3.5)],
        };
        assert_eq!(t.busy_time(), 2.5);
        assert_eq!(t.finish_time(), 3.5);
        assert_eq!(WorkerTimeline::default().busy_time(), 0.0);
        assert_eq!(WorkerTimeline::default().finish_time(), 0.0);
    }

    fn report(busy: Vec<f64>, makespan: f64, stage_times: Vec<f64>) -> IterationReport {
        let idle = busy.iter().map(|b| makespan - b).collect();
        IterationReport {
            makespan,
            per_worker_busy: busy,
            per_worker_idle: idle,
            timelines: vec![],
            stage_compute_times: stage_times,
        }
    }

    #[test]
    fn idleness_and_bubble_ratio() {
        // Two workers, makespan 10, busy 10 and 5 → idle 0 and 5.
        let r = report(vec![10.0, 5.0], 10.0, vec![1.0, 0.5]);
        assert!((r.average_idleness() - 0.25).abs() < 1e-12);
        assert!((r.bubble_ratio() - 5.0 / 20.0).abs() < 1e-12);
        assert_eq!(r.num_workers(), 2);
    }

    #[test]
    fn perfectly_balanced_pipeline_has_zero_idleness() {
        let r = report(vec![10.0, 10.0, 10.0], 10.0, vec![1.0, 1.0, 1.0]);
        assert_eq!(r.average_idleness(), 0.0);
        assert_eq!(r.bubble_ratio(), 0.0);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = report(vec![], 0.0, vec![]);
        assert_eq!(r.average_idleness(), 0.0);
        assert_eq!(r.bubble_ratio(), 0.0);
        assert_eq!(r.tokens_per_second(100), 0.0);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn throughput_is_tokens_over_makespan() {
        let r = report(vec![2.0], 2.0, vec![1.0]);
        assert_eq!(r.tokens_per_second(4096), 2048.0);
    }

    #[test]
    fn imbalance_matches_equation_two() {
        // loads 1, 2, 3 → (3-1)/2 = 1.
        assert!((imbalance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        // Uniform loads → 0.
        assert_eq!(imbalance(&[2.0, 2.0]), 0.0);
        // Empty and zero vectors → 0.
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
    }
}
