//! Discrete-event simulation of one pipeline-parallel training iteration.
//!
//! Given per-stage compute times (from the profiler / cost model), the
//! simulator replays the chosen micro-batch schedule while honoring:
//!
//! * in-order execution within each worker (the schedule's op order),
//! * activation dependencies between adjacent stages (forward), and
//!   gradient dependencies in the reverse direction (backward), each paying
//!   the α–β transfer cost of the link between the two stages.
//!
//! The output is the iteration makespan plus per-worker busy/idle time — the
//! quantities behind the paper's Figure 1 (idleness), Figure 3 (throughput)
//! and the bubble-ratio claims in §5.1.

use dynmo_model::ModelConfig;

use crate::comm::CommCostModel;
use crate::load::StageLoad;
use crate::metrics::{IterationReport, OpSpan, WorkerTimeline};
use crate::schedule::{worker_op_order, Op, OpKind, ScheduleKind};

/// Simulator for a single pipeline (one data-parallel replica).
#[derive(Debug, Clone)]
pub struct PipelineSimulator {
    comm: CommCostModel,
    schedule: ScheduleKind,
}

impl PipelineSimulator {
    /// Create a simulator with the given communication model and schedule.
    pub fn new(comm: CommCostModel, schedule: ScheduleKind) -> Self {
        PipelineSimulator { comm, schedule }
    }

    /// The schedule being simulated.
    pub fn schedule(&self) -> ScheduleKind {
        self.schedule
    }

    /// The communication model in use.
    pub fn comm(&self) -> &CommCostModel {
        &self.comm
    }

    /// Simulate one iteration of `num_microbatches` micro-batches over the
    /// given per-stage loads and return the timing report.
    pub fn simulate(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        num_microbatches: usize,
    ) -> IterationReport {
        let p = stage_loads.len();
        assert!(p > 0, "at least one pipeline stage is required");
        assert!(num_microbatches > 0, "at least one micro-batch is required");
        let m = num_microbatches;

        let orders: Vec<Vec<Op>> = (0..p)
            .map(|s| worker_op_order(self.schedule, s, p, m))
            .collect();

        let mut fwd_finish = vec![vec![f64::NAN; m]; p];
        let mut bwd_finish = vec![vec![f64::NAN; m]; p];
        let mut worker_time = vec![0.0f64; p];
        let mut next_idx = vec![0usize; p];
        let mut timelines: Vec<WorkerTimeline> = vec![WorkerTimeline::default(); p];
        let total_ops = 2 * m * p;
        let mut scheduled = 0usize;

        while scheduled < total_ops {
            let mut progressed = false;
            for s in 0..p {
                while next_idx[s] < orders[s].len() {
                    let op = orders[s][next_idx[s]];
                    let ready = match op.kind {
                        OpKind::Forward => {
                            if s == 0 {
                                Some(0.0)
                            } else {
                                let dep = fwd_finish[s - 1][op.microbatch];
                                if dep.is_nan() {
                                    None
                                } else {
                                    Some(dep + self.comm.activation_transfer_time(model, s - 1, s))
                                }
                            }
                        }
                        OpKind::Backward => {
                            let own_fwd = fwd_finish[s][op.microbatch];
                            if own_fwd.is_nan() {
                                None
                            } else if s == p - 1 {
                                Some(own_fwd)
                            } else {
                                let dep = bwd_finish[s + 1][op.microbatch];
                                if dep.is_nan() {
                                    None
                                } else {
                                    Some(
                                        dep.max(own_fwd)
                                            + self.comm.activation_transfer_time(model, s + 1, s),
                                    )
                                }
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let duration = match op.kind {
                        OpKind::Forward => stage_loads[s].fwd_time,
                        OpKind::Backward => stage_loads[s].bwd_time,
                    };
                    let start = worker_time[s].max(ready);
                    let end = start + duration;
                    match op.kind {
                        OpKind::Forward => fwd_finish[s][op.microbatch] = end,
                        OpKind::Backward => bwd_finish[s][op.microbatch] = end,
                    }
                    timelines[s].spans.push(OpSpan { op, start, end });
                    worker_time[s] = end;
                    next_idx[s] += 1;
                    scheduled += 1;
                    progressed = true;
                }
            }
            assert!(
                progressed,
                "pipeline schedule deadlocked ({} of {} ops scheduled)",
                scheduled, total_ops
            );
        }

        let makespan = worker_time.iter().copied().fold(0.0, f64::max);
        let per_worker_busy: Vec<f64> = timelines.iter().map(|t| t.busy_time()).collect();
        let per_worker_idle: Vec<f64> = per_worker_busy.iter().map(|b| makespan - b).collect();
        let stage_compute_times: Vec<f64> = stage_loads.iter().map(|l| l.total_time()).collect();

        IterationReport {
            makespan,
            per_worker_busy,
            per_worker_idle,
            timelines,
            stage_compute_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::{ClusterConfig, DeviceSpec};

    fn zero_comm_cluster(stages: usize) -> ClusterConfig {
        // A device with effectively infinite bandwidth and zero latency so
        // analytic pipeline formulas hold exactly in tests.
        ClusterConfig {
            gpus_per_node: stages.max(1),
            pipeline_stages: stages,
            data_parallel: 1,
            device: DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: f64::INFINITY,
                inter_node_bandwidth: f64::INFINITY,
                link_latency: 0.0,
                kernel_launch_overhead: 0.0,
            },
        }
    }

    fn stage(fwd: f64) -> StageLoad {
        StageLoad {
            fwd_time: fwd,
            bwd_time: 2.0 * fwd,
            param_count: 0,
            static_bytes: 0,
            activation_bytes: 0,
            num_layers: 1,
        }
    }

    fn simulate(schedule: ScheduleKind, fwd_times: &[f64], microbatches: usize) -> IterationReport {
        let loads: Vec<StageLoad> = fwd_times.iter().map(|&f| stage(f)).collect();
        let comm = CommCostModel::new(zero_comm_cluster(loads.len()));
        let sim = PipelineSimulator::new(comm, schedule);
        sim.simulate(&ModelConfig::gpt(24), &loads, microbatches)
    }

    #[test]
    fn single_stage_has_no_bubble() {
        for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let r = simulate(schedule, &[1.0], 4);
            // 4 microbatches × (1 + 2) seconds.
            assert!((r.makespan - 12.0).abs() < 1e-9);
            assert!(r.average_idleness() < 1e-9);
            assert!(r.bubble_ratio() < 1e-9);
        }
    }

    #[test]
    fn balanced_gpipe_matches_analytic_makespan() {
        // p balanced stages, m microbatches, zero comm: GPipe makespan is
        // (m + p − 1) · (f + b) with f=1, b=2.
        let p = 4;
        let m = 8;
        let r = simulate(ScheduleKind::GPipe, &vec![1.0; p], m);
        let expected = (m as f64 + p as f64 - 1.0) * 3.0;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn balanced_1f1b_matches_analytic_makespan() {
        // Balanced 1F1B with zero comm: makespan = (p−1)·(f+b) + m·(f+b)
        // = (m + p − 1)(f+b) — same steady-state as GPipe for equal f+b
        // per stage, which is the standard result for non-interleaved 1F1B.
        let p = 4;
        let m = 8;
        let r = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], m);
        let expected = (m as f64 + p as f64 - 1.0) * 3.0;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn inherent_bubble_shrinks_with_more_microbatches() {
        let p = 4;
        let small = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], 4);
        let large = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], 32);
        assert!(large.average_idleness() < small.average_idleness());
        // With m ≫ p the bubble approaches (p−1)/(m+p−1).
        let expected = (p as f64 - 1.0) / (32.0 + p as f64 - 1.0);
        assert!((large.average_idleness() - expected).abs() < 0.02);
    }

    #[test]
    fn imbalanced_stage_creates_extra_idleness() {
        let balanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 1.0], 16);
        let imbalanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 3.0], 16);
        assert!(imbalanced.average_idleness() > balanced.average_idleness() + 0.2);
        // The slow stage itself is (nearly) never idle.
        let slow_idle = imbalanced.per_worker_idle[3];
        assert!(slow_idle / imbalanced.makespan < 0.2);
        // Makespan is dominated by the slow stage: ≥ m × its per-mb time.
        assert!(imbalanced.makespan >= 16.0 * 9.0);
        // Imbalance metric reflects the 3× stage (Eq. 2).
        assert!(imbalanced.load_imbalance() > 1.0);
    }

    #[test]
    fn throughput_drops_when_one_stage_slows_down() {
        let tokens = 16 * 2 * 2048;
        let balanced = simulate(ScheduleKind::OneFOneB, &[1.0; 4], 16);
        let imbalanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 2.0], 16);
        assert!(balanced.tokens_per_second(tokens) > 1.5 * imbalanced.tokens_per_second(tokens));
    }

    #[test]
    fn empty_stages_pass_work_through_without_compute() {
        // Two real stages with an empty stage between them (a released GPU
        // kept in the pipeline layout for comparison purposes).
        let r = simulate(ScheduleKind::OneFOneB, &[1.0, 0.0, 1.0], 8);
        assert!(r.per_worker_busy[1] < 1e-9);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn communication_latency_increases_makespan() {
        let loads = vec![stage(1.0); 4];
        let model = ModelConfig::gpt(24);
        let fast = PipelineSimulator::new(
            CommCostModel::new(zero_comm_cluster(4)),
            ScheduleKind::OneFOneB,
        )
        .simulate(&model, &loads, 8);
        let slow_cluster = ClusterConfig {
            gpus_per_node: 1, // every hop crosses a (slow) node boundary
            pipeline_stages: 4,
            data_parallel: 1,
            device: DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: 1.0e9,
                inter_node_bandwidth: 1.0e8,
                link_latency: 0.05,
                kernel_launch_overhead: 0.0,
            },
        };
        let slow = PipelineSimulator::new(CommCostModel::new(slow_cluster), ScheduleKind::OneFOneB)
            .simulate(&model, &loads, 8);
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    #[should_panic(expected = "at least one pipeline stage")]
    fn zero_stages_is_rejected() {
        let comm = CommCostModel::new(zero_comm_cluster(1));
        let sim = PipelineSimulator::new(comm, ScheduleKind::GPipe);
        let _ = sim.simulate(&ModelConfig::gpt(24), &[], 4);
    }

    #[test]
    #[should_panic(expected = "at least one micro-batch")]
    fn zero_microbatches_is_rejected() {
        let comm = CommCostModel::new(zero_comm_cluster(1));
        let sim = PipelineSimulator::new(comm, ScheduleKind::GPipe);
        let _ = sim.simulate(&ModelConfig::gpt(24), &[stage(1.0)], 0);
    }

    #[test]
    fn timelines_are_consistent_with_busy_times() {
        let r = simulate(ScheduleKind::OneFOneB, &[1.0, 2.0, 1.0], 6);
        for (busy, timeline) in r.per_worker_busy.iter().zip(r.timelines.iter()) {
            assert!((busy - timeline.busy_time()).abs() < 1e-9);
            // Spans never overlap and are ordered.
            for w in timeline.spans.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12);
            }
        }
    }
}
