//! Event-driven simulation of one pipeline-parallel training iteration.
//!
//! Given per-stage compute times (from the profiler / cost model), the
//! simulator replays the chosen micro-batch schedule while honoring:
//!
//! * in-order execution within each worker (the schedule's op order),
//! * activation dependencies between adjacent (virtual) stages on the
//!   forward path, input-gradient dependencies in the reverse direction,
//!   and the local ordering of split-backward halves — each cross-worker
//!   edge paying the α–β cost of the link between the two workers, sized
//!   per boundary from the sending stage's boundary tensor, and
//! * empty stages (workers released by DynMo's re-packing): these are
//!   bypassed entirely — no ops are scheduled on them and their neighbours
//!   exchange tensors over a single direct link, matching the paper's
//!   post-repack topology.
//!
//! The engine is a topological relaxation over the typed dependency DAG:
//! every op counts its unmet predecessors (previous op on the same worker,
//! activation producer, gradient producer, input-gradient half), and each
//! completed op relaxes its successors' ready times and schedules any op
//! whose last dependency just resolved.  A worker's in-order execution is
//! itself an edge chain, so no time-ordered queue is needed at all —
//! start times are pure longest paths, and Kahn's algorithm over the CSR
//! edge array visits each op and edge exactly once: `O(n + e)` in the op
//! count with no comparisons, down from the binary-heap event queue's
//! `O(n log n)` and far below the legacy rescan loop (kept as
//! [`PipelineSimulator::simulate_reference`]), which rescanned every
//! worker's queue after each scheduling round.
//!
//! The output is the iteration makespan plus per-worker busy/idle time — the
//! quantities behind the paper's Figure 1 (idleness), Figure 3 (throughput)
//! and the bubble-ratio claims in §5.1.

use dynmo_model::ModelConfig;

use crate::comm::CommCostModel;
use crate::load::StageLoad;
use crate::metrics::{IterationReport, OpSpan, WorkerTimeline};
use crate::schedule::{worker_op_order, Op, OpKind, ScheduleKind};

/// Node-count threshold above which [`PipelineSimulator`] switches from the
/// sequential Kahn engine to the sharded wavefront engine (given a
/// multi-thread rayon pool).  Paper-scale sweeps sit well below this, so
/// their execution path — and artifacts — are unchanged.
const DEFAULT_SHARD_THRESHOLD: usize = 1 << 17;

/// Simulator for a single pipeline (one data-parallel replica).
#[derive(Debug, Clone)]
pub struct PipelineSimulator {
    comm: CommCostModel,
    schedule: ScheduleKind,
    /// Graphs with at least this many nodes run on the sharded engine.
    shard_threshold: usize,
}

/// The dependency DAG of one iteration: per-node op metadata plus typed
/// edges with communication weights.  Edges are stored in CSR form (one
/// flat array indexed by per-node offsets) — the per-node `Vec<Vec<_>>`
/// layout this replaced dominated the engine's runtime at paper scale
/// through allocator traffic.
struct OpGraph {
    /// The op behind each node.
    ops: Vec<Op>,
    /// Physical worker (stage index in the caller's layout) of each node.
    workers: Vec<usize>,
    /// Execution time of each node.
    durations: Vec<f64>,
    /// Node `i`'s outgoing edges are `edges[edge_offsets[i]..edge_offsets[i + 1]]`.
    edge_offsets: Vec<usize>,
    /// Outgoing edges: `(successor, edge weight)`, grouped by source node.
    edges: Vec<(usize, f64)>,
    /// Unmet predecessor count per node.
    preds: Vec<usize>,
}

impl OpGraph {
    /// Assemble a graph from an unordered edge list via a counting sort on
    /// the source node (stable, so per-node edge order follows insertion
    /// order).
    fn from_edge_list(
        ops: Vec<Op>,
        workers: Vec<usize>,
        durations: Vec<f64>,
        edge_list: &[(usize, usize, f64)],
    ) -> Self {
        let n = ops.len();
        let mut preds = vec![0usize; n];
        let mut counts = vec![0usize; n];
        for &(from, to, _) in edge_list {
            counts[from] += 1;
            preds[to] += 1;
        }
        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        edge_offsets.push(0);
        for &count in &counts {
            total += count;
            edge_offsets.push(total);
        }
        let mut cursor = edge_offsets[..n].to_vec();
        let mut edges = vec![(0usize, 0.0f64); total];
        for &(from, to, weight) in edge_list {
            edges[cursor[from]] = (to, weight);
            cursor[from] += 1;
        }
        OpGraph {
            ops,
            workers,
            durations,
            edge_offsets,
            edges,
            preds,
        }
    }

    /// Node `i`'s outgoing edges.
    fn succs(&self, node: usize) -> &[(usize, f64)] {
        &self.edges[self.edge_offsets[node]..self.edge_offsets[node + 1]]
    }
}

impl PipelineSimulator {
    /// Create a simulator with the given communication model and schedule.
    pub fn new(comm: CommCostModel, schedule: ScheduleKind) -> Self {
        PipelineSimulator {
            comm,
            schedule,
            shard_threshold: DEFAULT_SHARD_THRESHOLD,
        }
    }

    /// Override the node count at which the sharded wavefront engine takes
    /// over from the sequential Kahn engine (`0` forces sharded execution
    /// for every graph; `usize::MAX` forces sequential).  Both engines are
    /// bit-identical — this knob exists for very-large-DAG performance and
    /// for the property tests pinning that equivalence.
    pub fn with_shard_threshold(mut self, threshold: usize) -> Self {
        self.shard_threshold = threshold;
        self
    }

    /// Run a built graph on whichever engine its size calls for.
    fn run_graph(&self, graph: &OpGraph, timelines: &mut [WorkerTimeline]) {
        if graph.ops.len() >= self.shard_threshold && rayon::current_num_threads() > 1 {
            execute_graph_sharded(graph, timelines);
        } else {
            execute_graph(graph, timelines);
        }
    }

    /// The schedule being simulated.
    pub fn schedule(&self) -> ScheduleKind {
        self.schedule
    }

    /// The communication model in use.
    pub fn comm(&self) -> &CommCostModel {
        &self.comm
    }

    /// Simulate one iteration of `num_microbatches` micro-batches over the
    /// given per-stage loads and return the timing report.
    pub fn simulate(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        num_microbatches: usize,
    ) -> IterationReport {
        let p = stage_loads.len();
        assert!(p > 0, "at least one pipeline stage is required");
        assert!(num_microbatches > 0, "at least one micro-batch is required");
        let m = num_microbatches;

        // Released (empty) stages take no part in the schedule: the
        // pipeline is compressed to its non-empty stages and each skipped
        // boundary becomes one direct link between the real neighbours.
        let real: Vec<usize> = (0..p).filter(|&s| !stage_loads[s].is_empty()).collect();
        let mut timelines: Vec<WorkerTimeline> = vec![WorkerTimeline::default(); p];
        if real.is_empty() {
            return finish_report(stage_loads, timelines);
        }

        let graph = self.build_graph(model, stage_loads, &real, m);
        self.run_graph(&graph, &mut timelines);
        finish_report(stage_loads, timelines)
    }

    /// Simulate one *forward-only* pass of `num_microbatches` micro-batches
    /// — the inference iteration a serving engine runs: every stage executes
    /// its forward for each micro-batch in order, activations flow
    /// downstream paying the per-boundary α–β cost, and no backward ops are
    /// scheduled at all (so `StageLoad::bwd_time` is ignored).  Released
    /// (empty) stages are bypassed exactly as in
    /// [`PipelineSimulator::simulate`].
    ///
    /// The schedule kind is irrelevant here (all training schedules order
    /// forwards identically), so the same simulator instance can serve both
    /// training and inference queries.
    pub fn simulate_forward(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        num_microbatches: usize,
    ) -> IterationReport {
        let p = stage_loads.len();
        assert!(p > 0, "at least one pipeline stage is required");
        assert!(num_microbatches > 0, "at least one micro-batch is required");
        let m = num_microbatches;

        let real: Vec<usize> = (0..p).filter(|&s| !stage_loads[s].is_empty()).collect();
        let mut timelines: Vec<WorkerTimeline> = vec![WorkerTimeline::default(); p];
        if real.is_empty() {
            return finish_report(stage_loads, timelines);
        }

        let graph = self.build_forward_graph(model, stage_loads, &real, m);
        self.run_graph(&graph, &mut timelines);
        finish_report(stage_loads, timelines)
    }

    /// Build the forward-only dependency DAG for the compressed pipeline
    /// `real`: per worker, `m` forward ops in micro-batch order, chained
    /// in-order on the worker and to the previous stage's forward of the
    /// same micro-batch across each boundary.
    fn build_forward_graph(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        real: &[usize],
        m: usize,
    ) -> OpGraph {
        let q = real.len();
        let n = q * m;
        let mut ops = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut durations = Vec::with_capacity(n);
        let mut edge_list: Vec<(usize, usize, f64)> = Vec::with_capacity(2 * n);
        for (i, &stage) in real.iter().enumerate() {
            let load = &stage_loads[stage];
            assert!(
                load.fwd_time.is_finite() && load.fwd_time >= 0.0,
                "op duration must be finite and non-negative"
            );
            // One α–β evaluation per boundary, not per micro-batch (the
            // same hoist build_graph applies).
            let fwd_weight = if i > 0 {
                self.comm.boundary_transfer_time(
                    model,
                    &stage_loads[real[i - 1]],
                    real[i - 1],
                    stage,
                )
            } else {
                0.0
            };
            for mb in 0..m {
                let id = i * m + mb;
                ops.push(Op {
                    kind: OpKind::Forward,
                    microbatch: mb,
                    chunk: 0,
                });
                workers.push(stage);
                durations.push(load.fwd_time);
                if mb > 0 {
                    // In-order execution on the worker.
                    edge_list.push((id - 1, id, 0.0));
                }
                if i > 0 {
                    // Activation from the previous real stage, sized by its
                    // sender's boundary tensor.
                    edge_list.push(((i - 1) * m + mb, id, fwd_weight));
                }
            }
        }
        OpGraph::from_edge_list(ops, workers, durations, &edge_list)
    }

    /// Build the typed dependency DAG for the compressed pipeline `real`
    /// (indices into `stage_loads`) under the configured schedule.
    fn build_graph(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        real: &[usize],
        m: usize,
    ) -> OpGraph {
        let q = real.len();
        let v = self.schedule.effective_virtual_stages(q, m);
        let total_vs = q * v;
        let orders: Vec<Vec<Op>> = (0..q)
            .map(|i| worker_op_order(self.schedule, i, q, m))
            .collect();
        let mut offsets = Vec::with_capacity(q);
        let mut n = 0usize;
        for order in &orders {
            offsets.push(n);
            n += order.len();
        }

        // Producer lookup: node of the forward, and of the input-gradient
        // producer (fused backward or BackwardInput), per virtual stage and
        // micro-batch.  Virtual stage of chunk `c` on compressed worker `i`
        // is `c·q + i`.
        let mut fwd_node = vec![usize::MAX; total_vs * m];
        let mut grad_node = vec![usize::MAX; total_vs * m];
        let mut ops = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut durations = Vec::with_capacity(n);
        for (i, order) in orders.iter().enumerate() {
            let load = &stage_loads[real[i]];
            for (k, op) in order.iter().enumerate() {
                let id = offsets[i] + k;
                let vs = op.chunk * q + i;
                match op.kind {
                    OpKind::Forward => fwd_node[vs * m + op.microbatch] = id,
                    OpKind::Backward | OpKind::BackwardInput => {
                        grad_node[vs * m + op.microbatch] = id
                    }
                    OpKind::BackwardWeight => {}
                }
                ops.push(*op);
                workers.push(real[i]);
                // Interleaving splits a worker's layers evenly across its
                // `v` chunks, so each chunk costs `1/v` of the stage.
                let duration = match op.kind {
                    OpKind::Forward => load.fwd_time,
                    OpKind::Backward => load.bwd_time,
                    OpKind::BackwardInput => load.bwd_input_time(),
                    OpKind::BackwardWeight => load.bwd_weight_time(),
                } / v as f64;
                assert!(
                    duration.is_finite() && duration >= 0.0,
                    "op duration must be finite and non-negative"
                );
                durations.push(duration);
            }
        }

        // Per-boundary communication weights, hoisted out of the per-op
        // loop: a boundary's α–β cost is the same for every micro-batch
        // crossing it, and pricing it 2·m times dominated graph building
        // at paper scale.  `fwd_weight[vs]` prices the activation edge
        // into virtual stage `vs` from `vs − 1`; `grad_weight[vs]` prices
        // the input-gradient edge into `vs` from `vs + 1` (crossing the
        // boundary whose forward tensor `vs` produced).
        let mut fwd_weight = vec![0.0f64; total_vs];
        let mut grad_weight = vec![0.0f64; total_vs];
        for vs in 0..total_vs {
            let i = vs % q;
            if vs > 0 {
                let prev = (vs - 1) % q;
                if prev != i {
                    fwd_weight[vs] = self.comm.boundary_transfer_time(
                        model,
                        &stage_loads[real[prev]],
                        real[prev],
                        real[i],
                    );
                }
            }
            if vs + 1 < total_vs {
                let next = (vs + 1) % q;
                if next != i {
                    grad_weight[vs] = self.comm.gradient_transfer_time(
                        model,
                        &stage_loads[real[i]],
                        real[next],
                        real[i],
                    );
                }
            }
        }

        let mut edge_list: Vec<(usize, usize, f64)> = Vec::with_capacity(3 * n);
        let mut add_edge = |from: usize, to: usize, weight: f64| {
            edge_list.push((from, to, weight));
        };
        for (i, order) in orders.iter().enumerate() {
            for (k, op) in order.iter().enumerate() {
                let id = offsets[i] + k;
                // In-order execution on the worker.
                if k > 0 {
                    add_edge(id - 1, id, 0.0);
                }
                let vs = op.chunk * q + i;
                match op.kind {
                    OpKind::Forward => {
                        if vs > 0 {
                            // Activation from the previous virtual stage;
                            // the boundary tensor is sized by its sender.
                            add_edge(fwd_node[(vs - 1) * m + op.microbatch], id, fwd_weight[vs]);
                        }
                    }
                    OpKind::Backward | OpKind::BackwardInput => {
                        // The worker's own forward of this micro-batch.
                        add_edge(fwd_node[vs * m + op.microbatch], id, 0.0);
                        if vs + 1 < total_vs {
                            // Input gradient from the next virtual stage.
                            add_edge(grad_node[(vs + 1) * m + op.microbatch], id, grad_weight[vs]);
                        }
                    }
                    OpKind::BackwardWeight => {
                        // Local: only after the matching input-gradient op.
                        add_edge(grad_node[vs * m + op.microbatch], id, 0.0);
                    }
                }
            }
        }

        OpGraph::from_edge_list(ops, workers, durations, &edge_list)
    }

    /// The legacy busy-poll simulator, kept as a bit-for-bit oracle for the
    /// event-driven engine (see `tests/pipeline_schedules.rs`): it rescans
    /// every worker's op queue after each scheduling round — `O(p·ops)`
    /// per sweep — with NaN sentinels for unmet dependencies.  Supports the
    /// schedules the legacy loop knew ([`ScheduleKind::GPipe`] and
    /// [`ScheduleKind::OneFOneB`]) over fully non-empty stage loads, at the
    /// fixed communication semantics (per-boundary activation sizing on the
    /// forward path, [`CommCostModel::gradient_transfer_time`] on the
    /// backward path).
    ///
    /// # Panics
    ///
    /// On interleaved or split-backward schedules, and on empty stages —
    /// both are features of the event-driven engine only.
    pub fn simulate_reference(
        &self,
        model: &ModelConfig,
        stage_loads: &[StageLoad],
        num_microbatches: usize,
    ) -> IterationReport {
        assert!(
            matches!(self.schedule, ScheduleKind::GPipe | ScheduleKind::OneFOneB),
            "the reference simulator only supports GPipe and 1F1B"
        );
        assert!(
            stage_loads.iter().all(|l| !l.is_empty()),
            "the reference simulator does not model empty-stage bypass"
        );
        let p = stage_loads.len();
        assert!(p > 0, "at least one pipeline stage is required");
        assert!(num_microbatches > 0, "at least one micro-batch is required");
        let m = num_microbatches;

        let orders: Vec<Vec<Op>> = (0..p)
            .map(|s| worker_op_order(self.schedule, s, p, m))
            .collect();

        let mut fwd_finish = vec![vec![f64::NAN; m]; p];
        let mut bwd_finish = vec![vec![f64::NAN; m]; p];
        let mut worker_time = vec![0.0f64; p];
        let mut next_idx = vec![0usize; p];
        let mut timelines: Vec<WorkerTimeline> = vec![WorkerTimeline::default(); p];
        let total_ops = 2 * m * p;
        let mut scheduled = 0usize;

        while scheduled < total_ops {
            let mut progressed = false;
            for s in 0..p {
                while next_idx[s] < orders[s].len() {
                    let op = orders[s][next_idx[s]];
                    let ready = match op.kind {
                        OpKind::Forward => {
                            if s == 0 {
                                Some(0.0)
                            } else {
                                let dep = fwd_finish[s - 1][op.microbatch];
                                if dep.is_nan() {
                                    None
                                } else {
                                    Some(
                                        dep + self.comm.boundary_transfer_time(
                                            model,
                                            &stage_loads[s - 1],
                                            s - 1,
                                            s,
                                        ),
                                    )
                                }
                            }
                        }
                        OpKind::Backward => {
                            let own_fwd = fwd_finish[s][op.microbatch];
                            if own_fwd.is_nan() {
                                None
                            } else if s == p - 1 {
                                Some(own_fwd)
                            } else {
                                let dep = bwd_finish[s + 1][op.microbatch];
                                if dep.is_nan() {
                                    None
                                } else {
                                    Some(own_fwd.max(
                                        dep + self.comm.gradient_transfer_time(
                                            model,
                                            &stage_loads[s],
                                            s + 1,
                                            s,
                                        ),
                                    ))
                                }
                            }
                        }
                        _ => unreachable!("reference schedules never split backward"),
                    };
                    let Some(ready) = ready else { break };
                    let duration = match op.kind {
                        OpKind::Forward => stage_loads[s].fwd_time,
                        _ => stage_loads[s].bwd_time,
                    };
                    let start = worker_time[s].max(ready);
                    let end = start + duration;
                    match op.kind {
                        OpKind::Forward => fwd_finish[s][op.microbatch] = end,
                        _ => bwd_finish[s][op.microbatch] = end,
                    }
                    timelines[s].spans.push(OpSpan { op, start, end });
                    worker_time[s] = end;
                    next_idx[s] += 1;
                    scheduled += 1;
                    progressed = true;
                }
            }
            assert!(
                progressed,
                "pipeline schedule deadlocked ({} of {} ops scheduled)",
                scheduled, total_ops
            );
        }

        finish_report(stage_loads, timelines)
    }
}

/// Run the engine over a dependency graph, pushing the resulting op spans
/// onto `timelines` (indexed by physical worker).  Kahn's algorithm: a
/// node's start time is the max over its predecessors of `end + edge
/// weight` (a worker's in-order execution is an explicit edge chain, so
/// per-worker spans come out chain-ordered), and processing order only has
/// to be topological — no time-ordered queue.  Panics if the graph
/// deadlocks (a cycle, i.e. a malformed schedule).
fn execute_graph(graph: &OpGraph, timelines: &mut [WorkerTimeline]) {
    let n = graph.ops.len();
    let mut ready = vec![0.0f64; n];
    let mut preds = graph.preds.clone();
    let mut stack: Vec<usize> = (0..n).filter(|&node| preds[node] == 0).collect();
    let mut scheduled = 0usize;

    while let Some(node) = stack.pop() {
        let start = ready[node];
        let end = start + graph.durations[node];
        timelines[graph.workers[node]].spans.push(OpSpan {
            op: graph.ops[node],
            start,
            end,
        });
        scheduled += 1;
        for &(succ, weight) in graph.succs(node) {
            ready[succ] = ready[succ].max(end + weight);
            preds[succ] -= 1;
            if preds[succ] == 0 {
                stack.push(succ);
            }
        }
    }
    assert!(
        scheduled == n,
        "pipeline schedule deadlocked ({scheduled} of {n} ops scheduled)"
    );
}

/// Frontier size below which a wavefront is relaxed inline rather than
/// fanned across the pool (per-task overhead would dominate).
const PARALLEL_FRONTIER: usize = 128;

/// Raise `slot` (an `f64` stored as bits) to at least `value`.  All ready
/// times are non-negative finite `f64`s, so plain float comparison on the
/// decoded bits is a total order here.
fn atomic_max_f64(slot: &std::sync::atomic::AtomicU64, value: f64) {
    use std::sync::atomic::Ordering;
    let mut current = slot.load(Ordering::Relaxed);
    while f64::from_bits(current) < value {
        match slot.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// The sharded (multi-threaded) twin of [`execute_graph`], used for
/// very-large DAGs (hundreds of thousands of ops — e.g. deep pipelines with
/// thousands of micro-batches).
///
/// Level-synchronous wavefront relaxation: each round takes the current
/// frontier of dependency-free nodes, relaxes them across the rayon pool
/// (atomic `f64`-max on successor ready times, atomic decrement on
/// predecessor counts), and the nodes whose last dependency just resolved
/// form the next frontier.
///
/// Bit-identical to the sequential engine by construction:
///
/// * a node's final ready time is the max of `end + weight` over its
///   predecessors — `f64::max` over the *same* finite non-negative values
///   is order-independent, and every predecessor finishes its relaxation
///   before the node enters a frontier (the push happens only after the
///   last `preds` decrement, which each predecessor performs after its
///   max), so no node is processed with a partial ready time;
/// * spans are assembled afterwards in node-id order, which for each
///   worker equals chain order — exactly the order the sequential engine's
///   in-order chain edges force it to emit.
fn execute_graph_sharded(graph: &OpGraph, timelines: &mut [WorkerTimeline]) {
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    let n = graph.ops.len();
    let ready: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    let preds: Vec<AtomicUsize> = graph.preds.iter().map(|&p| AtomicUsize::new(p)).collect();

    // Relax one completed node: raise successor ready times, release
    // successors whose last dependency this was into `next`.
    let relax = |node: usize, next: &mut Vec<usize>| {
        let start = f64::from_bits(ready[node].load(Ordering::Acquire));
        let end = start + graph.durations[node];
        for &(succ, weight) in graph.succs(node) {
            atomic_max_f64(&ready[succ], end + weight);
            if preds[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                next.push(succ);
            }
        }
    };

    let mut frontier: Vec<usize> = (0..n).filter(|&node| graph.preds[node] == 0).collect();
    let mut scheduled = 0usize;
    while !frontier.is_empty() {
        scheduled += frontier.len();
        frontier = if frontier.len() >= PARALLEL_FRONTIER {
            let chunk = frontier.len().div_ceil(rayon::current_num_threads() * 4);
            let locals: Vec<Vec<usize>> = frontier
                .par_chunks(chunk.max(1))
                .map(|nodes| {
                    let mut local = Vec::with_capacity(nodes.len());
                    for &node in nodes {
                        relax(node, &mut local);
                    }
                    local
                })
                .collect();
            locals.into_iter().flatten().collect()
        } else {
            let mut local = Vec::with_capacity(frontier.len());
            for &node in &frontier {
                relax(node, &mut local);
            }
            local
        };
    }
    assert!(
        scheduled == n,
        "pipeline schedule deadlocked ({scheduled} of {n} ops scheduled)"
    );

    // Node ids ascend in chain order within each worker, so pushing in id
    // order reproduces the sequential engine's per-worker span order.
    for node in 0..n {
        let start = f64::from_bits(ready[node].load(Ordering::Relaxed));
        timelines[graph.workers[node]].spans.push(OpSpan {
            op: graph.ops[node],
            start,
            end: start + graph.durations[node],
        });
    }
}

/// Assemble the [`IterationReport`] from per-worker timelines.
fn finish_report(stage_loads: &[StageLoad], timelines: Vec<WorkerTimeline>) -> IterationReport {
    let makespan = timelines
        .iter()
        .map(|t| t.finish_time())
        .fold(0.0, f64::max);
    let per_worker_busy: Vec<f64> = timelines.iter().map(|t| t.busy_time()).collect();
    let per_worker_idle: Vec<f64> = per_worker_busy.iter().map(|b| makespan - b).collect();
    let stage_compute_times: Vec<f64> = stage_loads.iter().map(|l| l.total_time()).collect();
    IterationReport {
        makespan,
        per_worker_busy,
        per_worker_idle,
        timelines,
        stage_compute_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::{ClusterConfig, DeviceSpec};

    fn zero_comm_cluster(stages: usize) -> ClusterConfig {
        // A device with effectively infinite bandwidth and zero latency so
        // analytic pipeline formulas hold exactly in tests.
        ClusterConfig::homogeneous(
            stages.max(1),
            stages,
            1,
            DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: f64::INFINITY,
                inter_node_bandwidth: f64::INFINITY,
                link_latency: 0.0,
                kernel_launch_overhead: 0.0,
            },
        )
    }

    fn stage(fwd: f64) -> StageLoad {
        StageLoad {
            fwd_time: fwd,
            bwd_time: 2.0 * fwd,
            param_count: 1000,
            static_bytes: 1 << 20,
            activation_bytes: 6 * 34 * 2048 * 2 * 1024,
            // 0 = the model's flat residual-stream tensor, so
            // comm-sensitive tests see non-zero boundary traffic.
            boundary_bytes: 0,
            num_layers: 6,
        }
    }

    fn released() -> StageLoad {
        StageLoad::default()
    }

    fn simulate(schedule: ScheduleKind, fwd_times: &[f64], microbatches: usize) -> IterationReport {
        simulate_loads(
            schedule,
            &fwd_times.iter().map(|&f| stage(f)).collect::<Vec<_>>(),
            microbatches,
        )
    }

    fn simulate_loads(
        schedule: ScheduleKind,
        loads: &[StageLoad],
        microbatches: usize,
    ) -> IterationReport {
        let comm = CommCostModel::new(zero_comm_cluster(loads.len()));
        let sim = PipelineSimulator::new(comm, schedule);
        sim.simulate(&ModelConfig::gpt(24), loads, microbatches)
    }

    #[test]
    fn single_stage_has_no_bubble() {
        for schedule in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let r = simulate(schedule, &[1.0], 4);
            // 4 microbatches × (1 + 2) seconds.
            assert!(
                (r.makespan - 12.0).abs() < 1e-9,
                "{schedule:?}: makespan {}",
                r.makespan
            );
            assert!(r.average_idleness() < 1e-9);
            assert!(r.bubble_ratio() < 1e-9);
        }
    }

    #[test]
    fn balanced_gpipe_matches_analytic_makespan() {
        // p balanced stages, m microbatches, zero comm: GPipe makespan is
        // (m + p − 1) · (f + b) with f=1, b=2.
        let p = 4;
        let m = 8;
        let r = simulate(ScheduleKind::GPipe, &vec![1.0; p], m);
        let expected = (m as f64 + p as f64 - 1.0) * 3.0;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn balanced_1f1b_matches_analytic_makespan() {
        // Balanced 1F1B with zero comm: makespan = (p−1)·(f+b) + m·(f+b)
        // = (m + p − 1)(f+b) — same steady-state as GPipe for equal f+b
        // per stage, which is the standard result for non-interleaved 1F1B.
        let p = 4;
        let m = 8;
        let r = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], m);
        let expected = (m as f64 + p as f64 - 1.0) * 3.0;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn balanced_interleaved_shrinks_the_warmup_bubble_by_v() {
        // Interleaved 1F1B with v chunks per worker: the ramp-up advances
        // in (f+b)/v steps, so makespan = m·(f+b) + (p−1)·(f+b)/v.
        let p = 4;
        let m = 16;
        for v in [2, 4] {
            let r = simulate(
                ScheduleKind::Interleaved1F1B { virtual_stages: v },
                &vec![1.0; p],
                m,
            );
            let expected = m as f64 * 3.0 + (p as f64 - 1.0) * 3.0 / v as f64;
            assert!(
                (r.makespan - expected).abs() < 1e-9,
                "v={v}: makespan {} vs expected {expected}",
                r.makespan
            );
        }
    }

    #[test]
    fn balanced_zero_bubble_h1_matches_analytic_makespan() {
        // ZB-H1 with an even backward split: the warm-up ramp costs
        // (p−1)·f, the gradient chain drains at b/2 per stage, and the
        // weight halves fill the remaining gaps, so makespan
        // = m·(f+b) + (p−1)·(f + b/2).
        let p = 4;
        let m = 16;
        let r = simulate(ScheduleKind::ZeroBubbleH1, &vec![1.0; p], m);
        let expected = m as f64 * 3.0 + (p as f64 - 1.0) * (1.0 + 1.0);
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn advanced_schedules_strictly_beat_1f1b_on_balanced_stages() {
        let p = 4;
        let m = 4 * p;
        let base = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], m);
        for schedule in [
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let r = simulate(schedule, &vec![1.0; p], m);
            assert!(
                r.bubble_ratio() < base.bubble_ratio(),
                "{schedule:?}: bubble {} vs 1F1B {}",
                r.bubble_ratio(),
                base.bubble_ratio()
            );
            assert!(r.makespan < base.makespan);
        }
    }

    #[test]
    fn no_schedule_deadlocks_across_shapes() {
        // The engine asserts internally when a schedule deadlocks; sweep
        // the shape grid (including ragged m for the interleaved
        // generalization) to prove liveness and op-count conservation.
        for schedule in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::Interleaved1F1B { virtual_stages: 3 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            for p in [1usize, 2, 3, 4, 8] {
                for m in [1usize, 2, 3, 5, 8, 16] {
                    let r = simulate(schedule, &vec![1.0; p], m);
                    let v = schedule.effective_virtual_stages(p, m);
                    let ops_per_worker = match schedule {
                        ScheduleKind::ZeroBubbleH1 => 3 * m,
                        _ => 2 * m * v,
                    };
                    for t in &r.timelines {
                        assert_eq!(t.spans.len(), ops_per_worker, "{schedule:?} p={p} m={m}");
                    }
                    // All schedules do the same total work.
                    let busy: f64 = r.per_worker_busy.iter().sum();
                    assert!((busy - (p * m) as f64 * 3.0).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn inherent_bubble_shrinks_with_more_microbatches() {
        let p = 4;
        let small = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], 4);
        let large = simulate(ScheduleKind::OneFOneB, &vec![1.0; p], 32);
        assert!(large.average_idleness() < small.average_idleness());
        // With m ≫ p the bubble approaches (p−1)/(m+p−1).
        let expected = (p as f64 - 1.0) / (32.0 + p as f64 - 1.0);
        assert!((large.average_idleness() - expected).abs() < 0.02);
    }

    #[test]
    fn imbalanced_stage_creates_extra_idleness() {
        let balanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 1.0], 16);
        let imbalanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 3.0], 16);
        assert!(imbalanced.average_idleness() > balanced.average_idleness() + 0.2);
        // The slow stage itself is (nearly) never idle.
        let slow_idle = imbalanced.per_worker_idle[3];
        assert!(slow_idle / imbalanced.makespan < 0.2);
        // Makespan is dominated by the slow stage: ≥ m × its per-mb time.
        assert!(imbalanced.makespan >= 16.0 * 9.0);
        // Imbalance metric reflects the 3× stage (Eq. 2).
        assert!(imbalanced.load_imbalance() > 1.0);
    }

    #[test]
    fn throughput_drops_when_one_stage_slows_down() {
        let tokens = 16 * 2 * 2048;
        let balanced = simulate(ScheduleKind::OneFOneB, &[1.0; 4], 16);
        let imbalanced = simulate(ScheduleKind::OneFOneB, &[1.0, 1.0, 1.0, 2.0], 16);
        assert!(balanced.tokens_per_second(tokens) > 1.5 * imbalanced.tokens_per_second(tokens));
    }

    #[test]
    fn released_stages_are_bypassed_entirely() {
        // Two real stages with a released (layer-less) stage between them:
        // the empty worker schedules no ops and the pipeline behaves as a
        // two-stage pipeline over a single direct 0 → 2 link.
        let loads = [stage(1.0), released(), stage(1.0)];
        let r = simulate_loads(ScheduleKind::OneFOneB, &loads, 8);
        assert!(r.timelines[1].spans.is_empty());
        assert_eq!(r.per_worker_busy[1], 0.0);
        // Identical to simulating just the two real stages.
        let two = simulate_loads(ScheduleKind::OneFOneB, &[stage(1.0), stage(1.0)], 8);
        assert_eq!(r.makespan, two.makespan);
        assert_eq!(r.per_worker_busy[0], two.per_worker_busy[0]);
        assert_eq!(r.per_worker_busy[2], two.per_worker_busy[1]);
    }

    #[test]
    fn bypassing_a_released_stage_pays_one_hop_instead_of_two() {
        // With real link costs the legacy loop made a released middle stage
        // relay the tensor — two transfers, s−1 → s → s+1.  The bypass
        // pays a single direct hop: the layout must match a two-stage
        // pipeline at the same per-hop cost exactly, and beat a cluster
        // whose links are priced like the old two-hop relay.
        // every hop crosses a node boundary (one GPU per node)
        let cluster = ClusterConfig::homogeneous(
            1,
            3,
            1,
            DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: 1.0e9,
                inter_node_bandwidth: 1.0e8,
                link_latency: 0.05,
                kernel_launch_overhead: 0.0,
            },
        );
        let model = ModelConfig::gpt(24);
        let sim =
            PipelineSimulator::new(CommCostModel::new(cluster.clone()), ScheduleKind::OneFOneB);
        let bypassed = sim.simulate(&model, &[stage(1.0), released(), stage(1.0)], 8);
        // The same two real stages at the same physical distance (0 and 2).
        // A two-stage pipeline at adjacent slots pays the same per-hop cost
        // here because every hop is inter-node in this cluster.
        let direct = sim.simulate(&model, &[stage(1.0), stage(1.0)], 8);
        assert!((bypassed.makespan - direct.makespan).abs() < 1e-9);
        // And strictly cheaper than paying the boundary twice: simulate the
        // two-hop relay by doubling the per-hop latency.
        let relay_cluster = ClusterConfig {
            device: DeviceSpec {
                link_latency: 0.1,
                inter_node_bandwidth: 5.0e7,
                ..cluster.device
            },
            ..cluster
        };
        let relay =
            PipelineSimulator::new(CommCostModel::new(relay_cluster), ScheduleKind::OneFOneB)
                .simulate(&model, &[stage(1.0), stage(1.0)], 8);
        assert!(bypassed.makespan < relay.makespan);
    }

    #[test]
    fn all_stages_released_yields_an_empty_iteration() {
        let r = simulate_loads(ScheduleKind::OneFOneB, &[released(), released()], 4);
        assert_eq!(r.makespan, 0.0);
        assert!(r.per_worker_busy.iter().all(|&b| b == 0.0));
        assert_eq!(r.average_idleness(), 0.0);
    }

    #[test]
    fn communication_latency_increases_makespan() {
        let loads = vec![stage(1.0); 4];
        let model = ModelConfig::gpt(24);
        let fast = PipelineSimulator::new(
            CommCostModel::new(zero_comm_cluster(4)),
            ScheduleKind::OneFOneB,
        )
        .simulate(&model, &loads, 8);
        // every hop crosses a (slow) node boundary
        let slow_cluster = ClusterConfig::homogeneous(
            1,
            4,
            1,
            DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: 1.0e9,
                inter_node_bandwidth: 1.0e8,
                link_latency: 0.05,
                kernel_launch_overhead: 0.0,
            },
        );
        let slow = PipelineSimulator::new(CommCostModel::new(slow_cluster), ScheduleKind::OneFOneB)
            .simulate(&model, &loads, 8);
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn reference_simulator_agrees_with_the_engine() {
        // Spot check here; the exhaustive randomized comparison lives in
        // the workspace-level property tests.
        let model = ModelConfig::gpt(24);
        let loads = vec![stage(1.0), stage(0.7), stage(1.3), stage(1.0)];
        let cluster = ClusterConfig::homogeneous(2, 4, 1, DeviceSpec::h100_sxm5());
        for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let sim = PipelineSimulator::new(CommCostModel::new(cluster.clone()), schedule);
            let engine = sim.simulate(&model, &loads, 7);
            let reference = sim.simulate_reference(&model, &loads, 7);
            assert_eq!(engine.makespan, reference.makespan);
            assert_eq!(engine.per_worker_busy, reference.per_worker_busy);
        }
    }

    #[test]
    #[should_panic(expected = "at least one pipeline stage")]
    fn zero_stages_is_rejected() {
        let comm = CommCostModel::new(zero_comm_cluster(1));
        let sim = PipelineSimulator::new(comm, ScheduleKind::GPipe);
        let _ = sim.simulate(&ModelConfig::gpt(24), &[], 4);
    }

    #[test]
    #[should_panic(expected = "at least one micro-batch")]
    fn zero_microbatches_is_rejected() {
        let comm = CommCostModel::new(zero_comm_cluster(1));
        let sim = PipelineSimulator::new(comm, ScheduleKind::GPipe);
        let _ = sim.simulate(&ModelConfig::gpt(24), &[stage(1.0)], 0);
    }

    #[test]
    fn forward_only_matches_the_analytic_fill_drain_makespan() {
        // p balanced stages, m micro-batches, zero comm: a forward-only
        // pipeline completes in (m + p − 1) · f.
        let p = 4;
        let m = 8;
        let comm = CommCostModel::new(zero_comm_cluster(p));
        let sim = PipelineSimulator::new(comm, ScheduleKind::OneFOneB);
        let loads: Vec<StageLoad> = (0..p).map(|_| stage(1.0)).collect();
        let r = sim.simulate_forward(&ModelConfig::gpt(24), &loads, m);
        let expected = (m as f64 + p as f64 - 1.0) * 1.0;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} vs expected {expected}",
            r.makespan
        );
        // No backward ops: each worker runs exactly m forwards.
        for t in &r.timelines {
            assert_eq!(t.spans.len(), m);
            assert!(t.spans.iter().all(|s| s.op.kind == OpKind::Forward));
        }
        // Total busy time is p · m forwards; bwd_time is ignored.
        let busy: f64 = r.per_worker_busy.iter().sum();
        assert!((busy - (p * m) as f64).abs() < 1e-9);
    }

    #[test]
    fn forward_only_bypasses_released_stages_and_prices_boundaries() {
        let model = ModelConfig::gpt(24);
        let cluster = ClusterConfig::homogeneous(
            1,
            3,
            1,
            DeviceSpec {
                sustained_flops: 1.0,
                memory_capacity: u64::MAX,
                intra_node_bandwidth: 1.0e9,
                inter_node_bandwidth: 1.0e8,
                link_latency: 0.05,
                kernel_launch_overhead: 0.0,
            },
        );
        let sim = PipelineSimulator::new(CommCostModel::new(cluster), ScheduleKind::OneFOneB);
        let bypassed = sim.simulate_forward(&model, &[stage(1.0), released(), stage(1.0)], 8);
        assert!(bypassed.timelines[1].spans.is_empty());
        let direct = sim.simulate_forward(&model, &[stage(1.0), stage(1.0)], 8);
        assert!((bypassed.makespan - direct.makespan).abs() < 1e-9);
        // A shrunk boundary tensor lowers the forward hand-off cost.
        let mut shrunk = [stage(1.0), stage(1.0)];
        shrunk[0].boundary_bytes = 1;
        let cheap = sim.simulate_forward(&model, &shrunk, 8);
        assert!(cheap.makespan < direct.makespan);
    }

    #[test]
    fn forward_only_is_faster_than_the_training_iteration() {
        let loads = vec![stage(1.0); 4];
        let comm = CommCostModel::new(zero_comm_cluster(4));
        let sim = PipelineSimulator::new(comm, ScheduleKind::OneFOneB);
        let model = ModelConfig::gpt(24);
        let fwd = sim.simulate_forward(&model, &loads, 8);
        let train = sim.simulate(&model, &loads, 8);
        assert!(fwd.makespan < train.makespan);
    }

    #[test]
    fn timelines_are_consistent_with_busy_times() {
        for schedule in [
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let r = simulate(schedule, &[1.0, 2.0, 1.0], 6);
            for (busy, timeline) in r.per_worker_busy.iter().zip(r.timelines.iter()) {
                assert!((busy - timeline.busy_time()).abs() < 1e-9);
                // Spans never overlap and are ordered.
                for w in timeline.spans.windows(2) {
                    assert!(w[1].start >= w[0].end - 1e-12);
                }
            }
        }
    }
}
