//! Hybrid data + pipeline parallel throughput accounting.
//!
//! The paper's multi-node experiments run a *hybrid* of data and pipeline
//! parallelism (30-way DP × 24-way PP on 720 GPUs; 8-way DP × 16-way PP on
//! 128 GPUs for MoE/MoD) and report end-to-end throughput in tokens/second.
//! Each data-parallel replica runs the same pipeline; after the pipeline
//! flush, gradients are all-reduced across replicas (per stage, so the cost
//! is driven by the heaviest stage's parameter bytes).

use serde::{Deserialize, Serialize};

use dynmo_model::ModelConfig;

use crate::comm::CommCostModel;
use crate::load::StageLoad;
use crate::metrics::IterationReport;

/// Converts a single-pipeline iteration report into end-to-end hybrid
/// throughput.
#[derive(Debug, Clone)]
pub struct HybridThroughputModel {
    comm: CommCostModel,
    /// Fraction of the gradient all-reduce that overlaps with the backward
    /// pass (Megatron overlaps most of it; 0.0 = fully exposed).
    pub allreduce_overlap: f64,
}

/// End-to-end throughput numbers for a hybrid data+pipeline parallel job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Seconds per optimizer iteration, including the exposed all-reduce.
    pub iteration_time: f64,
    /// Pipeline makespan portion of the iteration.
    pub pipeline_time: f64,
    /// Exposed (non-overlapped) gradient all-reduce time.
    pub exposed_allreduce_time: f64,
    /// Tokens processed per iteration across all replicas.
    pub tokens_per_iteration: u64,
    /// End-to-end training throughput in tokens/second.
    pub tokens_per_second: f64,
}

impl HybridThroughputModel {
    /// Build a throughput model; `allreduce_overlap` is clamped to `[0, 1]`.
    pub fn new(comm: CommCostModel, allreduce_overlap: f64) -> Self {
        HybridThroughputModel {
            comm,
            allreduce_overlap: allreduce_overlap.clamp(0.0, 1.0),
        }
    }

    /// Combine a pipeline iteration report with the data-parallel gradient
    /// synchronization cost.
    ///
    /// * `stage_loads` — the per-stage loads used for the pipeline run
    ///   (their `param_count` drives the all-reduce volume).
    /// * `num_microbatches` — micro-batches per pipeline per iteration.
    pub fn throughput(
        &self,
        model: &ModelConfig,
        report: &IterationReport,
        stage_loads: &[StageLoad],
        num_microbatches: usize,
    ) -> ThroughputReport {
        let dp = self.comm.cluster().data_parallel;
        // Gradient all-reduce happens per stage across replicas, in
        // parallel; the exposed time is set by the heaviest stage.
        let (heaviest_stage, max_stage_grad_bytes) = stage_loads
            .iter()
            .map(|s| s.param_count * model.param_bytes as u64)
            .enumerate()
            .max_by_key(|&(_, bytes)| bytes)
            .unwrap_or((0, 0));
        let full_allreduce = self
            .comm
            .allreduce_time(max_stage_grad_bytes, dp, heaviest_stage);
        let exposed = full_allreduce * (1.0 - self.allreduce_overlap);
        let iteration_time = report.makespan + exposed;
        let tokens_per_iteration =
            (dp * num_microbatches * model.micro_batch_size * model.seq_len) as u64;
        let tokens_per_second = if iteration_time > 0.0 {
            tokens_per_iteration as f64 / iteration_time
        } else {
            0.0
        };
        ThroughputReport {
            iteration_time,
            pipeline_time: report.makespan,
            exposed_allreduce_time: exposed,
            tokens_per_iteration,
            tokens_per_second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;
    use crate::simulator::PipelineSimulator;
    use dynmo_model::{ClusterConfig, DeviceSpec};

    fn cluster(dp: usize) -> ClusterConfig {
        ClusterConfig::homogeneous(4, 4, dp, DeviceSpec::h100_sxm5())
    }

    fn stage_loads() -> Vec<StageLoad> {
        (0..4)
            .map(|_| StageLoad {
                fwd_time: 0.01,
                bwd_time: 0.02,
                param_count: 100_000_000,
                static_bytes: 0,
                activation_bytes: 0,
                boundary_bytes: 0,
                num_layers: 6,
            })
            .collect()
    }

    fn report(dp: usize) -> (IterationReport, HybridThroughputModel) {
        let comm = CommCostModel::new(cluster(dp));
        let sim = PipelineSimulator::new(comm.clone(), ScheduleKind::OneFOneB);
        let loads = stage_loads();
        let r = sim.simulate(&ModelConfig::gpt(24), &loads, 16);
        (r, HybridThroughputModel::new(comm, 0.5))
    }

    #[test]
    fn throughput_scales_with_data_parallel_degree() {
        let model = ModelConfig::gpt(24);
        let (r1, m1) = report(1);
        let (r8, m8) = report(8);
        let t1 = m1.throughput(&model, &r1, &stage_loads(), 16);
        let t8 = m8.throughput(&model, &r8, &stage_loads(), 16);
        assert_eq!(t8.tokens_per_iteration, 8 * t1.tokens_per_iteration);
        // 8 replicas pay an all-reduce, so speedup is below 8× but above 4×.
        let speedup = t8.tokens_per_second / t1.tokens_per_second;
        assert!(speedup > 4.0 && speedup <= 8.0, "speedup {speedup}");
    }

    #[test]
    fn dp1_has_no_exposed_allreduce() {
        let model = ModelConfig::gpt(24);
        let (r, m) = report(1);
        let t = m.throughput(&model, &r, &stage_loads(), 16);
        assert_eq!(t.exposed_allreduce_time, 0.0);
        assert!((t.iteration_time - t.pipeline_time).abs() < 1e-12);
    }

    #[test]
    fn overlap_reduces_exposed_allreduce() {
        let model = ModelConfig::gpt(24);
        let comm = CommCostModel::new(cluster(8));
        let sim = PipelineSimulator::new(comm.clone(), ScheduleKind::OneFOneB);
        let loads = stage_loads();
        let r = sim.simulate(&model, &loads, 16);
        let none = HybridThroughputModel::new(comm.clone(), 0.0).throughput(&model, &r, &loads, 16);
        let full = HybridThroughputModel::new(comm.clone(), 1.0).throughput(&model, &r, &loads, 16);
        assert!(none.exposed_allreduce_time > 0.0);
        assert_eq!(full.exposed_allreduce_time, 0.0);
        assert!(full.tokens_per_second > none.tokens_per_second);
        // Out-of-range overlap is clamped.
        let clamped = HybridThroughputModel::new(comm, 7.0);
        assert_eq!(clamped.allreduce_overlap, 1.0);
    }

    #[test]
    fn tokens_per_iteration_counts_all_replicas() {
        let model = ModelConfig::gpt(24);
        let (r, m) = report(4);
        let t = m.throughput(&model, &r, &stage_loads(), 16);
        // 4 replicas × 16 microbatches × 2 sequences × 2048 tokens.
        assert_eq!(t.tokens_per_iteration, 4 * 16 * 2 * 2048);
        assert!(t.tokens_per_second > 0.0);
    }
}
