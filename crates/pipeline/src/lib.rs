//! # dynmo-pipeline
//!
//! Pipeline-parallel execution modeling for the DynMo reproduction.
//!
//! The paper measures how dynamic models create *bubbles* (idle time) in
//! pipeline-parallel training and how rebalancing removes them.  On the
//! paper's testbed those numbers come from running Megatron-Core on
//! hundreds of H100s; here they come from a discrete-event simulation of
//! the same pipeline schedules:
//!
//! * [`stage`] — the layer→stage assignment that the balancers manipulate,
//!   plus [`load::LayerLoad`], the profiled per-layer cost snapshot.
//! * [`schedule`] — micro-batch orderings for GPipe, 1F1B, Megatron-style
//!   interleaved 1F1B (virtual stages), and a ZB-H1-style zero-bubble
//!   schedule with split backward (the "almost zero-bubble" baseline of
//!   the paper's Figure 1).
//! * [`simulator`] — an event-driven engine (Kahn topological relaxation
//!   over a CSR dependency DAG, `O(n + e)`) that tracks, for every worker,
//!   when each op can start given activation/gradient dependencies and
//!   communication latencies, bypasses stages released by re-packing,
//!   supports a forward-only inference mode for the serving engine, and
//!   reports makespan, per-worker idleness and the bubble ratio.
//! * [`comm`] — an α–β communication model for per-boundary activation and
//!   gradient hand-offs, locality-aware gradient all-reduce, MoE
//!   all-to-all, and layer migration.
//! * [`memory`] — per-stage memory-capacity checks (OOM detection used by
//!   re-packing).
//! * [`data_parallel`] — hybrid data+pipeline parallel throughput
//!   accounting (tokens/sec across replicas).

#![warn(missing_docs)]

pub mod comm;
pub mod data_parallel;
pub mod load;
pub mod memory;
pub mod metrics;
pub mod schedule;
pub mod simulator;
pub mod stage;

pub use comm::CommCostModel;
pub use data_parallel::HybridThroughputModel;
pub use load::{LayerLoad, StageLoad};
pub use memory::{check_stage_memory, StageMemoryReport};
pub use metrics::{IterationReport, WorkerTimeline};
pub use schedule::ScheduleKind;
pub use simulator::PipelineSimulator;
pub use stage::StageAssignment;
