//! Communication cost model (α–β model over the cluster's links).
//!
//! The simulator needs the time to (a) hand activations between adjacent
//! pipeline stages and (b) return the matching input gradients on the
//! backward path, (c) all-reduce gradients across data-parallel replicas,
//! (d) all-to-all tokens between expert-parallel ranks (MoE), and (e)
//! migrate a layer's state between workers during rebalancing — the cost
//! the paper's Figure 4 overhead breakdown calls "migration of layers
//! between GPUs".
//!
//! Boundary traffic is sized *per boundary*: each stage carries the byte
//! size of the hidden-state tensor it hands downstream
//! ([`StageLoad::boundary_bytes`], defaulting to the model's unshrunk
//! residual-stream tensor), so mechanisms that drop tokens can shrink the
//! wire cost of the boundaries behind them.  The backward hand-off prices
//! the gradient of the same boundary tensor through
//! [`CommCostModel::gradient_bytes`] rather than re-charging the forward
//! activation.

use serde::{Deserialize, Serialize};

use dynmo_model::{ClusterConfig, ModelConfig};

use crate::load::StageLoad;

/// Communication cost model bound to a cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    cluster: ClusterConfig,
}

impl CommCostModel {
    /// Build a cost model for the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        CommCostModel { cluster }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Bytes of one micro-batch's activations at a pipeline stage boundary.
    pub fn activation_bytes(&self, model: &ModelConfig) -> u64 {
        (model.micro_batch_size * model.seq_len * model.hidden_size * model.param_bytes) as u64
    }

    /// Time to send one micro-batch's activations from `from_stage` to
    /// `to_stage` (point-to-point, NVLink within a node, InfiniBand across),
    /// at the flat model-level tensor size.  The simulator itself uses the
    /// per-boundary [`CommCostModel::boundary_transfer_time`]; this remains
    /// the reference cost for a dense, un-shrunk boundary.
    pub fn activation_transfer_time(
        &self,
        model: &ModelConfig,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.activation_bytes(model) as f64;
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes, intra)
    }

    /// Bytes of the hidden-state tensor leaving `sender`: the stage's own
    /// [`StageLoad::boundary_bytes`] when set, else the model's unshrunk
    /// residual-stream tensor ([`CommCostModel::activation_bytes`]).  A
    /// released (bypassed) stage carries no `boundary_bytes` and so
    /// forwards the tensor unchanged.
    pub fn boundary_activation_bytes(&self, model: &ModelConfig, sender: &StageLoad) -> u64 {
        if sender.boundary_bytes > 0 {
            sender.boundary_bytes
        } else {
            self.activation_bytes(model)
        }
    }

    /// Bytes of the input gradient returned across a stage boundary on the
    /// backward path: the gradient of the boundary tensor, so it matches
    /// [`CommCostModel::boundary_activation_bytes`] of the stage that
    /// *produced* the forward activation at that boundary.
    pub fn gradient_bytes(&self, model: &ModelConfig, boundary_sender: &StageLoad) -> u64 {
        self.boundary_activation_bytes(model, boundary_sender)
    }

    /// Time to hand the forward boundary tensor produced by `sender` from
    /// `from_stage` to `to_stage`.
    pub fn boundary_transfer_time(
        &self,
        model: &ModelConfig,
        sender: &StageLoad,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.boundary_activation_bytes(model, sender) as f64;
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes, intra)
    }

    /// Time to return the input gradient across the boundary whose forward
    /// tensor was produced by `boundary_sender`, from `from_stage` back to
    /// `to_stage`.  This is the backward-path counterpart of
    /// [`CommCostModel::boundary_transfer_time`]; the legacy simulator
    /// mis-charged the *forward* activation cost here.
    pub fn gradient_transfer_time(
        &self,
        model: &ModelConfig,
        boundary_sender: &StageLoad,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.gradient_bytes(model, boundary_sender) as f64;
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes, intra)
    }

    /// Time for a ring all-reduce of `bytes` across `replicas` data-parallel
    /// workers: `2·(n−1)/n · bytes / bandwidth` plus per-step latencies.
    ///
    /// Each parallel dimension is costed under its own idealized placement,
    /// the way production launchers map hybrid jobs: pipeline stages sit on
    /// consecutive slots within a replica (the point-to-point costs'
    /// [`ClusterConfig::same_node`] layout), and each stage's data-parallel
    /// replica group is *node-aligned*, so a group no wider than a node
    /// rides NVLink — expressed through the same `same_node` routing over
    /// group-relative slots.  The legacy model billed every all-reduce at
    /// inter-node bandwidth, even for single-node replica groups.
    pub fn allreduce_time(&self, bytes: u64, replicas: usize) -> f64 {
        if replicas <= 1 || bytes == 0 {
            return 0.0;
        }
        let n = replicas as f64;
        let bw = if self.cluster.same_node(0, replicas - 1) {
            self.cluster.device.intra_node_bandwidth
        } else {
            self.cluster.device.inter_node_bandwidth
        };
        let steps = 2.0 * (n - 1.0);
        steps * self.cluster.device.link_latency + 2.0 * (n - 1.0) / n * bytes as f64 / bw
    }

    /// Time for an all-to-all exchange of `bytes_per_peer` with each of
    /// `peers` ranks (the MoE token shuffle).
    pub fn alltoall_time(&self, bytes_per_peer: u64, peers: usize) -> f64 {
        if peers <= 1 || bytes_per_peer == 0 {
            return 0.0;
        }
        let n = peers as f64;
        let bw = self.cluster.device.inter_node_bandwidth;
        (n - 1.0) * (self.cluster.device.link_latency + bytes_per_peer as f64 / bw)
    }

    /// Time to migrate `bytes` of layer state from stage `from` to stage
    /// `to` during rebalancing.
    pub fn migration_time(&self, bytes: u64, from_stage: usize, to_stage: usize) -> f64 {
        if from_stage == to_stage || bytes == 0 {
            return 0.0;
        }
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes as f64, intra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::DeviceSpec;

    fn model() -> ModelConfig {
        ModelConfig::gpt(24)
    }

    fn comm() -> CommCostModel {
        CommCostModel::new(ClusterConfig {
            gpus_per_node: 4,
            pipeline_stages: 8,
            data_parallel: 2,
            device: DeviceSpec::h100_sxm5(),
        })
    }

    #[test]
    fn activation_bytes_match_tensor_shape() {
        let c = comm();
        // 2 sequences × 2048 tokens × 1024 hidden × 2 bytes = 8 MiB.
        assert_eq!(c.activation_bytes(&model()), 2 * 2048 * 1024 * 2);
    }

    #[test]
    fn cross_node_activation_transfer_is_slower() {
        let c = comm();
        let within = c.activation_transfer_time(&model(), 0, 1);
        let across = c.activation_transfer_time(&model(), 3, 4);
        assert!(across > within);
        assert!(within > 0.0);
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_replicas() {
        let c = comm();
        assert_eq!(c.allreduce_time(1_000_000, 1), 0.0);
        assert_eq!(c.allreduce_time(0, 8), 0.0);
        let t2 = c.allreduce_time(1_000_000_000, 2);
        let t8 = c.allreduce_time(1_000_000_000, 8);
        assert!(t8 > t2);
        let small = c.allreduce_time(1_000_000, 8);
        assert!(small < t8);
    }

    #[test]
    fn allreduce_uses_nvlink_when_the_replica_group_fits_in_a_node() {
        let c = comm(); // 4 GPUs per node
        let d = c.cluster().device;
        let bytes = 1_000_000_000u64;
        // 4 replicas fit in one node → intra-node bandwidth.
        let within = c.allreduce_time(bytes, 4);
        let expected_within =
            6.0 * d.link_latency + 2.0 * 3.0 / 4.0 * bytes as f64 / d.intra_node_bandwidth;
        assert!((within - expected_within).abs() < 1e-12);
        // 5 replicas spill across nodes → inter-node bandwidth.
        let across = c.allreduce_time(bytes, 5);
        let expected_across =
            8.0 * d.link_latency + 2.0 * 4.0 / 5.0 * bytes as f64 / d.inter_node_bandwidth;
        assert!((across - expected_across).abs() < 1e-12);
        assert!(across > within);
    }

    fn stage_with_boundary(boundary_bytes: u64) -> StageLoad {
        StageLoad {
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 100,
            static_bytes: 1_000,
            activation_bytes: 10_000,
            boundary_bytes,
            num_layers: 6,
        }
    }

    #[test]
    fn boundary_bytes_follow_the_sender_stage_profile() {
        let c = comm();
        let m = model();
        let flat = c.activation_bytes(&m);
        // A dense stage (no explicit boundary size) sends the flat tensor.
        assert_eq!(
            c.boundary_activation_bytes(&m, &stage_with_boundary(0)),
            flat
        );
        // A stage that dropped half its tokens sends half the bytes.
        let shrunk = stage_with_boundary(flat / 2);
        assert_eq!(c.boundary_activation_bytes(&m, &shrunk), flat / 2);
        // An empty (bypassed) stage forwards the tensor unchanged.
        assert_eq!(c.boundary_activation_bytes(&m, &StageLoad::default()), flat);
        // The gradient of a boundary matches the boundary tensor.
        assert_eq!(c.gradient_bytes(&m, &shrunk), flat / 2);
    }

    #[test]
    fn boundary_and_gradient_transfers_respect_link_locality() {
        let c = comm();
        let m = model();
        let sender = stage_with_boundary(c.activation_bytes(&m));
        let within = c.boundary_transfer_time(&m, &sender, 0, 1);
        let across = c.boundary_transfer_time(&m, &sender, 3, 4);
        assert!(across > within && within > 0.0);
        // Gradient hand-off pays the same boundary, in the reverse direction.
        assert_eq!(
            c.gradient_transfer_time(&m, &sender, 1, 0),
            c.boundary_transfer_time(&m, &sender, 0, 1)
        );
        // A shrunk boundary is cheaper to cross in both directions.
        let shrunk = stage_with_boundary(c.activation_bytes(&m) / 4);
        assert!(c.boundary_transfer_time(&m, &shrunk, 0, 1) < within);
        assert!(c.gradient_transfer_time(&m, &shrunk, 1, 0) < within);
    }

    #[test]
    fn alltoall_time_scales_with_peer_count() {
        let c = comm();
        assert_eq!(c.alltoall_time(1_000_000, 1), 0.0);
        let t4 = c.alltoall_time(1_000_000, 4);
        let t16 = c.alltoall_time(1_000_000, 16);
        assert!(t16 > t4);
    }

    #[test]
    fn migration_is_free_within_the_same_stage() {
        let c = comm();
        assert_eq!(c.migration_time(1_000_000, 3, 3), 0.0);
        assert_eq!(c.migration_time(0, 0, 1), 0.0);
        assert!(c.migration_time(1_000_000, 0, 1) > 0.0);
        assert!(c.migration_time(1_000_000, 0, 7) > c.migration_time(1_000_000, 0, 1));
    }
}
