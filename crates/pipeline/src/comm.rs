//! Communication cost model (α–β model over the cluster's links).
//!
//! The simulator needs the time to (a) hand activations between adjacent
//! pipeline stages, (b) all-reduce gradients across data-parallel replicas,
//! (c) all-to-all tokens between expert-parallel ranks (MoE), and (d)
//! migrate a layer's state between workers during rebalancing — the cost
//! the paper's Figure 4 overhead breakdown calls "migration of layers
//! between GPUs".

use serde::{Deserialize, Serialize};

use dynmo_model::{ClusterConfig, ModelConfig};

/// Communication cost model bound to a cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    cluster: ClusterConfig,
}

impl CommCostModel {
    /// Build a cost model for the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        CommCostModel { cluster }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Bytes of one micro-batch's activations at a pipeline stage boundary.
    pub fn activation_bytes(&self, model: &ModelConfig) -> u64 {
        (model.micro_batch_size * model.seq_len * model.hidden_size * model.param_bytes) as u64
    }

    /// Time to send one micro-batch's activations from `from_stage` to
    /// `to_stage` (point-to-point, NVLink within a node, InfiniBand across).
    pub fn activation_transfer_time(
        &self,
        model: &ModelConfig,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.activation_bytes(model) as f64;
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes, intra)
    }

    /// Time for a ring all-reduce of `bytes` across `replicas` data-parallel
    /// workers: `2·(n−1)/n · bytes / bandwidth` plus per-step latencies.
    pub fn allreduce_time(&self, bytes: u64, replicas: usize) -> f64 {
        if replicas <= 1 || bytes == 0 {
            return 0.0;
        }
        let n = replicas as f64;
        let bw = self.cluster.device.inter_node_bandwidth;
        let steps = 2.0 * (n - 1.0);
        steps * self.cluster.device.link_latency + 2.0 * (n - 1.0) / n * bytes as f64 / bw
    }

    /// Time for an all-to-all exchange of `bytes_per_peer` with each of
    /// `peers` ranks (the MoE token shuffle).
    pub fn alltoall_time(&self, bytes_per_peer: u64, peers: usize) -> f64 {
        if peers <= 1 || bytes_per_peer == 0 {
            return 0.0;
        }
        let n = peers as f64;
        let bw = self.cluster.device.inter_node_bandwidth;
        (n - 1.0) * (self.cluster.device.link_latency + bytes_per_peer as f64 / bw)
    }

    /// Time to migrate `bytes` of layer state from stage `from` to stage
    /// `to` during rebalancing.
    pub fn migration_time(&self, bytes: u64, from_stage: usize, to_stage: usize) -> f64 {
        if from_stage == to_stage || bytes == 0 {
            return 0.0;
        }
        let intra = self.cluster.same_node(from_stage, to_stage);
        self.cluster.device.transfer_time(bytes as f64, intra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::DeviceSpec;

    fn model() -> ModelConfig {
        ModelConfig::gpt(24)
    }

    fn comm() -> CommCostModel {
        CommCostModel::new(ClusterConfig {
            gpus_per_node: 4,
            pipeline_stages: 8,
            data_parallel: 2,
            device: DeviceSpec::h100_sxm5(),
        })
    }

    #[test]
    fn activation_bytes_match_tensor_shape() {
        let c = comm();
        // 2 sequences × 2048 tokens × 1024 hidden × 2 bytes = 8 MiB.
        assert_eq!(c.activation_bytes(&model()), 2 * 2048 * 1024 * 2);
    }

    #[test]
    fn cross_node_activation_transfer_is_slower() {
        let c = comm();
        let within = c.activation_transfer_time(&model(), 0, 1);
        let across = c.activation_transfer_time(&model(), 3, 4);
        assert!(across > within);
        assert!(within > 0.0);
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_replicas() {
        let c = comm();
        assert_eq!(c.allreduce_time(1_000_000, 1), 0.0);
        assert_eq!(c.allreduce_time(0, 8), 0.0);
        let t2 = c.allreduce_time(1_000_000_000, 2);
        let t8 = c.allreduce_time(1_000_000_000, 8);
        assert!(t8 > t2);
        let small = c.allreduce_time(1_000_000, 8);
        assert!(small < t8);
    }

    #[test]
    fn alltoall_time_scales_with_peer_count() {
        let c = comm();
        assert_eq!(c.alltoall_time(1_000_000, 1), 0.0);
        let t4 = c.alltoall_time(1_000_000, 4);
        let t16 = c.alltoall_time(1_000_000, 16);
        assert!(t16 > t4);
    }

    #[test]
    fn migration_is_free_within_the_same_stage() {
        let c = comm();
        assert_eq!(c.migration_time(1_000_000, 3, 3), 0.0);
        assert_eq!(c.migration_time(0, 0, 1), 0.0);
        assert!(c.migration_time(1_000_000, 0, 1) > 0.0);
        assert!(c.migration_time(1_000_000, 0, 7) > c.migration_time(1_000_000, 0, 1));
    }
}
