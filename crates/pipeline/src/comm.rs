//! Communication cost model (α–β model over the cluster's links).
//!
//! The simulator needs the time to (a) hand activations between adjacent
//! pipeline stages and (b) return the matching input gradients on the
//! backward path, (c) all-reduce gradients across data-parallel replicas,
//! (d) all-to-all tokens between expert-parallel ranks (MoE), and (e)
//! migrate a layer's state between workers during rebalancing — the cost
//! the paper's Figure 4 overhead breakdown calls "migration of layers
//! between GPUs".
//!
//! Boundary traffic is sized *per boundary*: each stage carries the byte
//! size of the hidden-state tensor it hands downstream
//! ([`StageLoad::boundary_bytes`], defaulting to the model's unshrunk
//! residual-stream tensor), so mechanisms that drop tokens can shrink the
//! wire cost of the boundaries behind them.  The backward hand-off prices
//! the gradient of the same boundary tensor through
//! [`CommCostModel::gradient_bytes`] rather than re-charging the forward
//! activation.

use serde::{Deserialize, Serialize};

use dynmo_model::{ClusterConfig, ModelConfig};

use crate::load::StageLoad;

/// Communication cost model bound to a cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    cluster: ClusterConfig,
}

impl CommCostModel {
    /// Build a cost model for the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        CommCostModel { cluster }
    }

    /// The cluster this model describes.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Effective bandwidth of the link between stages `a` and `b`: the
    /// slower endpoint bounds a point-to-point transfer, and inter-node
    /// links optionally share one NIC among the cluster's concurrent
    /// streams ([`ClusterConfig::inter_contention_factor`]).  On a
    /// homogeneous cluster with contention off this is exactly the single
    /// device's bandwidth.
    fn link_bandwidth(&self, a: usize, b: usize, intra: bool) -> f64 {
        let da = self.cluster.device_of(a);
        let db = self.cluster.device_of(b);
        if intra {
            da.intra_node_bandwidth.min(db.intra_node_bandwidth)
        } else {
            da.inter_node_bandwidth.min(db.inter_node_bandwidth)
                / self.cluster.inter_contention_factor()
        }
    }

    /// α–β time to move `bytes` across the edge between stages `from` and
    /// `to`: the larger endpoint latency plus bytes over the edge's
    /// effective bandwidth.  Reduces bit-identically to
    /// [`dynmo_model::DeviceSpec::transfer_time`] when both endpoints are
    /// the same device and contention is off.
    pub fn edge_transfer_time(&self, bytes: f64, from: usize, to: usize) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let intra = self.cluster.same_node(from, to);
        let latency = self
            .cluster
            .device_of(from)
            .link_latency
            .max(self.cluster.device_of(to).link_latency);
        latency + bytes / self.link_bandwidth(from, to, intra)
    }

    /// Bytes of one micro-batch's activations at a pipeline stage boundary.
    pub fn activation_bytes(&self, model: &ModelConfig) -> u64 {
        (model.micro_batch_size * model.seq_len * model.hidden_size * model.param_bytes) as u64
    }

    /// Time to send one micro-batch's activations from `from_stage` to
    /// `to_stage` (point-to-point, NVLink within a node, InfiniBand across),
    /// at the flat model-level tensor size.  The simulator itself uses the
    /// per-boundary [`CommCostModel::boundary_transfer_time`]; this remains
    /// the reference cost for a dense, un-shrunk boundary.
    pub fn activation_transfer_time(
        &self,
        model: &ModelConfig,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.activation_bytes(model) as f64;
        self.edge_transfer_time(bytes, from_stage, to_stage)
    }

    /// Bytes of the hidden-state tensor leaving `sender`: the stage's own
    /// [`StageLoad::boundary_bytes`] when set, else the model's unshrunk
    /// residual-stream tensor ([`CommCostModel::activation_bytes`]).  A
    /// released (bypassed) stage carries no `boundary_bytes` and so
    /// forwards the tensor unchanged.
    pub fn boundary_activation_bytes(&self, model: &ModelConfig, sender: &StageLoad) -> u64 {
        if sender.boundary_bytes > 0 {
            sender.boundary_bytes
        } else {
            self.activation_bytes(model)
        }
    }

    /// Bytes of the input gradient returned across a stage boundary on the
    /// backward path: the gradient of the boundary tensor, so it matches
    /// [`CommCostModel::boundary_activation_bytes`] of the stage that
    /// *produced* the forward activation at that boundary.
    pub fn gradient_bytes(&self, model: &ModelConfig, boundary_sender: &StageLoad) -> u64 {
        self.boundary_activation_bytes(model, boundary_sender)
    }

    /// Time to hand the forward boundary tensor produced by `sender` from
    /// `from_stage` to `to_stage`.
    pub fn boundary_transfer_time(
        &self,
        model: &ModelConfig,
        sender: &StageLoad,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.boundary_activation_bytes(model, sender) as f64;
        self.edge_transfer_time(bytes, from_stage, to_stage)
    }

    /// Time to return the input gradient across the boundary whose forward
    /// tensor was produced by `boundary_sender`, from `from_stage` back to
    /// `to_stage`.  This is the backward-path counterpart of
    /// [`CommCostModel::boundary_transfer_time`]; the legacy simulator
    /// mis-charged the *forward* activation cost here.
    pub fn gradient_transfer_time(
        &self,
        model: &ModelConfig,
        boundary_sender: &StageLoad,
        from_stage: usize,
        to_stage: usize,
    ) -> f64 {
        let bytes = self.gradient_bytes(model, boundary_sender) as f64;
        self.edge_transfer_time(bytes, from_stage, to_stage)
    }

    /// Time for a ring all-reduce of `bytes` across `replicas` data-parallel
    /// workers holding pipeline stage `stage`: `2·(n−1)/n · bytes /
    /// bandwidth` plus per-step latencies.
    ///
    /// Replica `r`'s copy of stage `s` sits at global slot `r·p + s` under
    /// the consecutive Megatron-style placement, so the replica group is
    /// *strided* across the job, not packed.  The slot→node map is
    /// monotone, so checking the two extreme members of the group covers
    /// its whole span — an earlier version checked `same_node(0,
    /// replicas−1)` over group-relative slots, which priced groups that
    /// straddle a node boundary in the middle at NVLink bandwidth.
    pub fn allreduce_time(&self, bytes: u64, replicas: usize, stage: usize) -> f64 {
        if replicas <= 1 || bytes == 0 {
            return 0.0;
        }
        let n = replicas as f64;
        let device = self.cluster.device_of(stage);
        let span_end = (replicas - 1) * self.cluster.pipeline_stages + stage;
        let bw = if self.cluster.same_node(stage, span_end) {
            device.intra_node_bandwidth
        } else {
            device.inter_node_bandwidth / self.cluster.inter_contention_factor()
        };
        let steps = 2.0 * (n - 1.0);
        steps * device.link_latency + 2.0 * (n - 1.0) / n * bytes as f64 / bw
    }

    /// Time for an all-to-all exchange of `bytes_per_peer` with each of
    /// `peers` ranks (the MoE token shuffle).
    pub fn alltoall_time(&self, bytes_per_peer: u64, peers: usize) -> f64 {
        if peers <= 1 || bytes_per_peer == 0 {
            return 0.0;
        }
        let n = peers as f64;
        let bw = self.cluster.device.inter_node_bandwidth;
        (n - 1.0) * (self.cluster.device.link_latency + bytes_per_peer as f64 / bw)
    }

    /// Time to migrate `bytes` of layer state from stage `from` to stage
    /// `to` during rebalancing.
    pub fn migration_time(&self, bytes: u64, from_stage: usize, to_stage: usize) -> f64 {
        if from_stage == to_stage || bytes == 0 {
            return 0.0;
        }
        self.edge_transfer_time(bytes as f64, from_stage, to_stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::DeviceSpec;

    fn model() -> ModelConfig {
        ModelConfig::gpt(24)
    }

    fn comm() -> CommCostModel {
        CommCostModel::new(ClusterConfig::homogeneous(4, 8, 2, DeviceSpec::h100_sxm5()))
    }

    #[test]
    fn activation_bytes_match_tensor_shape() {
        let c = comm();
        // 2 sequences × 2048 tokens × 1024 hidden × 2 bytes = 8 MiB.
        assert_eq!(c.activation_bytes(&model()), 2 * 2048 * 1024 * 2);
    }

    #[test]
    fn cross_node_activation_transfer_is_slower() {
        let c = comm();
        let within = c.activation_transfer_time(&model(), 0, 1);
        let across = c.activation_transfer_time(&model(), 3, 4);
        assert!(across > within);
        assert!(within > 0.0);
    }

    #[test]
    fn allreduce_time_scales_with_bytes_and_replicas() {
        let c = comm();
        assert_eq!(c.allreduce_time(1_000_000, 1, 0), 0.0);
        assert_eq!(c.allreduce_time(0, 8, 0), 0.0);
        let t2 = c.allreduce_time(1_000_000_000, 2, 0);
        let t8 = c.allreduce_time(1_000_000_000, 8, 0);
        assert!(t8 > t2);
        let small = c.allreduce_time(1_000_000, 8, 0);
        assert!(small < t8);
    }

    #[test]
    fn allreduce_uses_nvlink_when_the_replica_group_fits_in_a_node() {
        // A short pipeline on fat nodes: p = 2 stages, 8 GPUs per node, so
        // stage 0's replica group occupies slots {0, 2, 4, ...}.
        let c = CommCostModel::new(ClusterConfig::homogeneous(8, 2, 4, DeviceSpec::h100_sxm5()));
        let d = c.cluster().device;
        let bytes = 1_000_000_000u64;
        // 4 replicas → slots {0, 2, 4, 6}, all inside node 0 → NVLink.
        let within = c.allreduce_time(bytes, 4, 0);
        let expected_within =
            6.0 * d.link_latency + 2.0 * 3.0 / 4.0 * bytes as f64 / d.intra_node_bandwidth;
        assert!((within - expected_within).abs() < 1e-12);
        // 5 replicas → slots up to 8, spilling into node 1 → InfiniBand.
        let across = c.allreduce_time(bytes, 5, 0);
        let expected_across =
            8.0 * d.link_latency + 2.0 * 4.0 / 5.0 * bytes as f64 / d.inter_node_bandwidth;
        assert!((across - expected_across).abs() < 1e-12);
        assert!(across > within);
    }

    #[test]
    fn allreduce_group_straddling_a_node_in_the_middle_pays_interconnect() {
        // Regression for the endpoint-only locality check: with p = 8 the
        // replica group of stage 0 sits at slots {0, 8, 16, 24} — every
        // member on a *different* node — yet `same_node(0, replicas − 1)`
        // over group-relative slots claimed the group fit in one node.
        let c = comm(); // gpus_per_node = 4, pipeline_stages = 8
        let d = c.cluster().device;
        let bytes = 1_000_000_000u64;
        let t = c.allreduce_time(bytes, 4, 0);
        let expected =
            6.0 * d.link_latency + 2.0 * 3.0 / 4.0 * bytes as f64 / d.inter_node_bandwidth;
        assert!((t - expected).abs() < 1e-12);
    }

    fn stage_with_boundary(boundary_bytes: u64) -> StageLoad {
        StageLoad {
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 100,
            static_bytes: 1_000,
            activation_bytes: 10_000,
            boundary_bytes,
            num_layers: 6,
        }
    }

    #[test]
    fn boundary_bytes_follow_the_sender_stage_profile() {
        let c = comm();
        let m = model();
        let flat = c.activation_bytes(&m);
        // A dense stage (no explicit boundary size) sends the flat tensor.
        assert_eq!(
            c.boundary_activation_bytes(&m, &stage_with_boundary(0)),
            flat
        );
        // A stage that dropped half its tokens sends half the bytes.
        let shrunk = stage_with_boundary(flat / 2);
        assert_eq!(c.boundary_activation_bytes(&m, &shrunk), flat / 2);
        // An empty (bypassed) stage forwards the tensor unchanged.
        assert_eq!(c.boundary_activation_bytes(&m, &StageLoad::default()), flat);
        // The gradient of a boundary matches the boundary tensor.
        assert_eq!(c.gradient_bytes(&m, &shrunk), flat / 2);
    }

    #[test]
    fn boundary_and_gradient_transfers_respect_link_locality() {
        let c = comm();
        let m = model();
        let sender = stage_with_boundary(c.activation_bytes(&m));
        let within = c.boundary_transfer_time(&m, &sender, 0, 1);
        let across = c.boundary_transfer_time(&m, &sender, 3, 4);
        assert!(across > within && within > 0.0);
        // Gradient hand-off pays the same boundary, in the reverse direction.
        assert_eq!(
            c.gradient_transfer_time(&m, &sender, 1, 0),
            c.boundary_transfer_time(&m, &sender, 0, 1)
        );
        // A shrunk boundary is cheaper to cross in both directions.
        let shrunk = stage_with_boundary(c.activation_bytes(&m) / 4);
        assert!(c.boundary_transfer_time(&m, &shrunk, 0, 1) < within);
        assert!(c.gradient_transfer_time(&m, &shrunk, 1, 0) < within);
    }

    #[test]
    fn alltoall_time_scales_with_peer_count() {
        let c = comm();
        assert_eq!(c.alltoall_time(1_000_000, 1), 0.0);
        let t4 = c.alltoall_time(1_000_000, 4);
        let t16 = c.alltoall_time(1_000_000, 16);
        assert!(t16 > t4);
    }

    #[test]
    fn hetero_edges_are_bounded_by_the_slower_endpoint() {
        let m = model();
        let uniform =
            CommCostModel::new(ClusterConfig::homogeneous(2, 4, 1, DeviceSpec::h100_sxm5()));
        let mixed = CommCostModel::new(ClusterConfig::hetero_two_gen(2, 4, 1));
        // Stage 1 → 2 crosses the H100/A100 divide and the node boundary:
        // the A100's slower NVLink/IB must bound the edge.
        let fast = uniform.activation_transfer_time(&m, 1, 2);
        let slow = mixed.activation_transfer_time(&m, 1, 2);
        assert!(slow >= fast);
        // An all-H100 edge of the mixed cluster matches the uniform one
        // bit-for-bit.
        assert_eq!(
            mixed.activation_transfer_time(&m, 0, 1).to_bits(),
            uniform.activation_transfer_time(&m, 0, 1).to_bits()
        );
    }

    #[test]
    fn shared_link_contention_slows_only_inter_node_edges() {
        let m = model();
        let base = comm();
        let contended =
            CommCostModel::new(base.cluster().clone().with_shared_link_contention(true));
        // Intra-node edge 0→1 is untouched.
        assert_eq!(
            contended.activation_transfer_time(&m, 0, 1).to_bits(),
            base.activation_transfer_time(&m, 0, 1).to_bits()
        );
        // Inter-node edge 3→4 shares the NIC among 3 streams (fwd + grad +
        // the dp = 2 allreduce).
        assert!(
            contended.activation_transfer_time(&m, 3, 4) > base.activation_transfer_time(&m, 3, 4)
        );
    }

    #[test]
    fn migration_is_free_within_the_same_stage() {
        let c = comm();
        assert_eq!(c.migration_time(1_000_000, 3, 3), 0.0);
        assert_eq!(c.migration_time(0, 0, 1), 0.0);
        assert!(c.migration_time(1_000_000, 0, 1) > 0.0);
        assert!(c.migration_time(1_000_000, 0, 7) > c.migration_time(1_000_000, 0, 1));
    }
}
