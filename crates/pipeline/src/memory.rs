//! Per-stage memory accounting and OOM detection.
//!
//! Re-packing (Algorithm 2) and the balancers both operate "subject to the
//! constraints of memory capacity per worker" (§3.1).  This module converts
//! a stage assignment plus per-layer loads into per-stage byte totals and
//! flags stages that exceed the device capacity — the `OOM` entries shown in
//! the paper's Figure 4 when a model no longer fits on 2 or 4 GPUs.

use serde::{Deserialize, Serialize};

use crate::load::{aggregate_stage_loads, LayerLoad};
use crate::schedule::ScheduleKind;
use crate::stage::StageAssignment;

/// Memory accounting for every stage of a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMemoryReport {
    /// Total bytes required on each stage.
    pub per_stage_bytes: Vec<u64>,
    /// The device capacity the stages were checked against.
    pub capacity: u64,
    /// Whether each stage fits within the capacity.
    pub fits: Vec<bool>,
}

impl StageMemoryReport {
    /// Whether every stage fits in memory.
    pub fn all_fit(&self) -> bool {
        self.fits.iter().all(|&f| f)
    }

    /// Indices of stages that exceed the capacity.
    pub fn oom_stages(&self) -> Vec<usize> {
        self.fits
            .iter()
            .enumerate()
            .filter(|(_, &f)| !f)
            .map(|(s, _)| s)
            .collect()
    }

    /// Fraction of the capacity used by the most loaded stage.
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            return f64::INFINITY;
        }
        let peak = self.per_stage_bytes.iter().copied().max().unwrap_or(0);
        peak as f64 / self.capacity as f64
    }
}

/// Number of micro-batches whose activations are simultaneously alive on
/// `stage` under the given schedule (`p` stages, `m` micro-batches).
/// For GPipe every forward activation is held until its backward; for 1F1B
/// stage `s` holds at most `min(p − s, m)`.
pub fn inflight_microbatches(
    schedule: ScheduleKind,
    stage: usize,
    num_stages: usize,
    num_microbatches: usize,
) -> usize {
    match schedule {
        ScheduleKind::GPipe => num_microbatches,
        ScheduleKind::OneFOneB => (num_stages - stage).min(num_microbatches),
    }
}

/// Compute per-stage memory usage for `assignment` over `loads` and check it
/// against `capacity`.
pub fn check_stage_memory(
    assignment: &StageAssignment,
    loads: &[LayerLoad],
    capacity: u64,
    schedule: ScheduleKind,
    num_microbatches: usize,
) -> StageMemoryReport {
    let stages = aggregate_stage_loads(loads, assignment.layer_to_stage(), assignment.num_stages());
    let p = assignment.num_stages();
    let per_stage_bytes: Vec<u64> = stages
        .iter()
        .enumerate()
        .map(|(s, load)| {
            let inflight = inflight_microbatches(schedule, s, p, num_microbatches) as u64;
            load.static_bytes + load.activation_bytes * inflight
        })
        .collect();
    let fits: Vec<bool> = per_stage_bytes.iter().map(|&b| b <= capacity).collect();
    StageMemoryReport {
        per_stage_bytes,
        capacity,
        fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize, static_bytes: u64, act: u64) -> LayerLoad {
        LayerLoad {
            layer_id: id,
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 10,
            static_bytes,
            activation_bytes: act,
            migration_bytes: static_bytes,
        }
    }

    #[test]
    fn inflight_counts_follow_the_schedule() {
        // 1F1B: the first stage holds the most in-flight activations.
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 0, 4, 32), 4);
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 3, 4, 32), 1);
        // ...capped by the micro-batch count.
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 0, 8, 2), 2);
        // GPipe holds everything.
        assert_eq!(inflight_microbatches(ScheduleKind::GPipe, 2, 4, 32), 32);
    }

    #[test]
    fn memory_report_flags_oom_stages() {
        let loads = vec![
            load(0, 600, 10),
            load(1, 600, 10),
            load(2, 100, 10),
            load(3, 100, 10),
        ];
        // Stage 0 gets the two big layers → 1200 + activations; capacity 1000.
        let assignment = StageAssignment::from_counts(&[2, 2]);
        let report = check_stage_memory(&assignment, &loads, 1000, ScheduleKind::OneFOneB, 4);
        assert!(!report.all_fit());
        assert_eq!(report.oom_stages(), vec![0]);
        assert!(report.fits[1]);
        assert!(report.peak_utilization() > 1.0);
    }

    #[test]
    fn activation_memory_depends_on_stage_depth_under_1f1b() {
        let loads = vec![load(0, 0, 100), load(1, 0, 100)];
        let assignment = StageAssignment::from_counts(&[1, 1]);
        let report = check_stage_memory(&assignment, &loads, u64::MAX, ScheduleKind::OneFOneB, 8);
        // Stage 0 holds 2 in-flight, stage 1 holds 1.
        assert_eq!(report.per_stage_bytes, vec![200, 100]);
    }

    #[test]
    fn gpipe_holds_all_microbatch_activations() {
        let loads = vec![load(0, 0, 100)];
        let assignment = StageAssignment::from_counts(&[1]);
        let report = check_stage_memory(&assignment, &loads, u64::MAX, ScheduleKind::GPipe, 8);
        assert_eq!(report.per_stage_bytes, vec![800]);
    }

    #[test]
    fn all_fit_when_capacity_is_large() {
        let loads = vec![load(0, 100, 10), load(1, 100, 10)];
        let assignment = StageAssignment::from_counts(&[1, 1]);
        let report = check_stage_memory(&assignment, &loads, 1 << 40, ScheduleKind::OneFOneB, 4);
        assert!(report.all_fit());
        assert!(report.oom_stages().is_empty());
        assert!(report.peak_utilization() < 1e-6);
    }

    #[test]
    fn zero_capacity_reports_infinite_utilization() {
        let loads = vec![load(0, 100, 10)];
        let assignment = StageAssignment::from_counts(&[1]);
        let report = check_stage_memory(&assignment, &loads, 0, ScheduleKind::OneFOneB, 1);
        assert!(report.peak_utilization().is_infinite());
        assert!(!report.all_fit());
    }
}
