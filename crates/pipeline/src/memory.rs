//! Per-stage memory accounting and OOM detection.
//!
//! Re-packing (Algorithm 2) and the balancers both operate "subject to the
//! constraints of memory capacity per worker" (§3.1).  This module converts
//! a stage assignment plus per-layer loads into per-stage byte totals and
//! flags stages that exceed the device capacity — the `OOM` entries shown in
//! the paper's Figure 4 when a model no longer fits on 2 or 4 GPUs.

use serde::{Deserialize, Serialize};

use crate::load::{aggregate_stage_loads, LayerLoad};
use crate::schedule::ScheduleKind;
use crate::stage::StageAssignment;

/// Memory accounting for every stage of a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMemoryReport {
    /// Total bytes required on each stage.
    pub per_stage_bytes: Vec<u64>,
    /// The device capacity the stages were checked against.
    pub capacity: u64,
    /// Whether each stage fits within the capacity.
    pub fits: Vec<bool>,
}

impl StageMemoryReport {
    /// Whether every stage fits in memory.
    pub fn all_fit(&self) -> bool {
        self.fits.iter().all(|&f| f)
    }

    /// Indices of stages that exceed the capacity.
    pub fn oom_stages(&self) -> Vec<usize> {
        self.fits
            .iter()
            .enumerate()
            .filter(|(_, &f)| !f)
            .map(|(s, _)| s)
            .collect()
    }

    /// Fraction of the capacity used by the most loaded stage.
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            return f64::INFINITY;
        }
        let peak = self.per_stage_bytes.iter().copied().max().unwrap_or(0);
        peak as f64 / self.capacity as f64
    }
}

/// Number of micro-batches whose activations are simultaneously alive on
/// `stage` under the given schedule (`p` stages, `m` micro-batches).
///
/// * GPipe holds every forward activation until its backward.
/// * 1F1B stage `s` holds at most `min(p − s, m)`.
/// * Interleaved 1F1B holds `warmup + 1` micro-batch *chunks*, each `1/v`
///   of the stage, so the stage-equivalent count is `⌈(2·(p−s−1) +
///   (v−1)·p + 1) / v⌉` (capped at `m`) — strictly more than 1F1B: the
///   shorter bubble is bought with a deeper ramp-up.  When `m == p` the
///   schedule has no steady state (all forwards run before any backward)
///   and every stage holds all `m` micro-batches, like GPipe.
/// * ZB-H1 preserves 1F1B's activation footprint by design (the weight
///   half of each backward runs immediately after the input half, while
///   the activations are still required).
pub fn inflight_microbatches(
    schedule: ScheduleKind,
    stage: usize,
    num_stages: usize,
    num_microbatches: usize,
) -> usize {
    let m = num_microbatches;
    let p = num_stages;
    // A worker holds the activations of its warm-up forwards plus the one
    // micro-batch (chunk) in flight through its steady-state alternation;
    // deriving the count from the schedule's own warm-up depth keeps the
    // memory model and the op order coupled by construction.
    let v = schedule.effective_virtual_stages(p, m);
    let chunks_held = (schedule.warmup_ops(stage, p, m) + 1).min(m * v);
    // Each chunk holds 1/v of the stage's activations; round the
    // stage-equivalent count up.
    chunks_held.div_ceil(v).min(m).max(1)
}

/// Compute per-stage memory usage for `assignment` over `loads` and check it
/// against `capacity`.
pub fn check_stage_memory(
    assignment: &StageAssignment,
    loads: &[LayerLoad],
    capacity: u64,
    schedule: ScheduleKind,
    num_microbatches: usize,
) -> StageMemoryReport {
    let stages = aggregate_stage_loads(loads, assignment.layer_to_stage(), assignment.num_stages());
    let p = assignment.num_stages();
    let per_stage_bytes: Vec<u64> = stages
        .iter()
        .enumerate()
        .map(|(s, load)| {
            let inflight = inflight_microbatches(schedule, s, p, num_microbatches) as u64;
            load.static_bytes + load.activation_bytes * inflight
        })
        .collect();
    let fits: Vec<bool> = per_stage_bytes.iter().map(|&b| b <= capacity).collect();
    StageMemoryReport {
        per_stage_bytes,
        capacity,
        fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize, static_bytes: u64, act: u64) -> LayerLoad {
        LayerLoad {
            layer_id: id,
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 10,
            static_bytes,
            activation_bytes: act,
            migration_bytes: static_bytes,
        }
    }

    #[test]
    fn inflight_counts_follow_the_schedule() {
        // 1F1B: the first stage holds the most in-flight activations.
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 0, 4, 32), 4);
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 3, 4, 32), 1);
        // ...capped by the micro-batch count.
        assert_eq!(inflight_microbatches(ScheduleKind::OneFOneB, 0, 8, 2), 2);
        // GPipe holds everything.
        assert_eq!(inflight_microbatches(ScheduleKind::GPipe, 2, 4, 32), 32);
        // ZB-H1 matches 1F1B's footprint by construction.
        for stage in 0..4 {
            assert_eq!(
                inflight_microbatches(ScheduleKind::ZeroBubbleH1, stage, 4, 32),
                inflight_microbatches(ScheduleKind::OneFOneB, stage, 4, 32)
            );
        }
        // Interleaving (v=2, p=4): stage 0 holds ⌈(6+4+1)/2⌉ = 6 stage-
        // equivalents — more than 1F1B's 4; the last stage holds ⌈5/2⌉ = 3.
        let inter = ScheduleKind::Interleaved1F1B { virtual_stages: 2 };
        assert_eq!(inflight_microbatches(inter, 0, 4, 32), 6);
        assert_eq!(inflight_microbatches(inter, 3, 4, 32), 3);
        assert!(
            inflight_microbatches(inter, 0, 4, 32)
                > inflight_microbatches(ScheduleKind::OneFOneB, 0, 4, 32)
        );
        // A single chunk degenerates to 1F1B, and m caps everything.
        let inter1 = ScheduleKind::Interleaved1F1B { virtual_stages: 1 };
        assert_eq!(inflight_microbatches(inter1, 1, 4, 32), 3);
        assert_eq!(inflight_microbatches(inter, 0, 8, 2), 2);
        // m == p has no steady state (all-forwards-then-all-backwards):
        // every stage holds all m micro-batches, like GPipe.
        for stage in 0..4 {
            assert_eq!(inflight_microbatches(inter, stage, 4, 4), 4);
        }
    }

    #[test]
    fn memory_report_flags_oom_stages() {
        let loads = vec![
            load(0, 600, 10),
            load(1, 600, 10),
            load(2, 100, 10),
            load(3, 100, 10),
        ];
        // Stage 0 gets the two big layers → 1200 + activations; capacity 1000.
        let assignment = StageAssignment::from_counts(&[2, 2]);
        let report = check_stage_memory(&assignment, &loads, 1000, ScheduleKind::OneFOneB, 4);
        assert!(!report.all_fit());
        assert_eq!(report.oom_stages(), vec![0]);
        assert!(report.fits[1]);
        assert!(report.peak_utilization() > 1.0);
    }

    #[test]
    fn activation_memory_depends_on_stage_depth_under_1f1b() {
        let loads = vec![load(0, 0, 100), load(1, 0, 100)];
        let assignment = StageAssignment::from_counts(&[1, 1]);
        let report = check_stage_memory(&assignment, &loads, u64::MAX, ScheduleKind::OneFOneB, 8);
        // Stage 0 holds 2 in-flight, stage 1 holds 1.
        assert_eq!(report.per_stage_bytes, vec![200, 100]);
    }

    #[test]
    fn gpipe_holds_all_microbatch_activations() {
        let loads = vec![load(0, 0, 100)];
        let assignment = StageAssignment::from_counts(&[1]);
        let report = check_stage_memory(&assignment, &loads, u64::MAX, ScheduleKind::GPipe, 8);
        assert_eq!(report.per_stage_bytes, vec![800]);
    }

    #[test]
    fn all_fit_when_capacity_is_large() {
        let loads = vec![load(0, 100, 10), load(1, 100, 10)];
        let assignment = StageAssignment::from_counts(&[1, 1]);
        let report = check_stage_memory(&assignment, &loads, 1 << 40, ScheduleKind::OneFOneB, 4);
        assert!(report.all_fit());
        assert!(report.oom_stages().is_empty());
        assert!(report.peak_utilization() < 1e-6);
    }

    #[test]
    fn zero_capacity_reports_infinite_utilization() {
        let loads = vec![load(0, 100, 10)];
        let assignment = StageAssignment::from_counts(&[1]);
        let report = check_stage_memory(&assignment, &loads, 0, ScheduleKind::OneFOneB, 1);
        assert!(report.peak_utilization().is_infinite());
        assert!(!report.all_fit());
    }
}
