//! Profiled per-layer load snapshots.
//!
//! A [`LayerLoad`] is what DynMo's profiling iteration produces for every
//! layer after a dynamism event: its *current* forward/backward execution
//! time, parameter count, and memory footprint.  Both balancer families
//! consume this structure — the "by parameters" variants read
//! `param_count`, the "by execution time" variants read the time fields —
//! and the re-packing algorithm reads the memory fields.

use serde::{Deserialize, Serialize};

/// The profiled cost of one layer at a specific training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerLoad {
    /// The layer's id (index within the model).
    pub layer_id: usize,
    /// Forward-pass execution time for one micro-batch, in seconds.
    pub fwd_time: f64,
    /// Backward-pass execution time for one micro-batch, in seconds.
    pub bwd_time: f64,
    /// Parameters currently held by the layer (after pruning, this is the
    /// retained count).
    pub param_count: u64,
    /// Static memory footprint in bytes (weights + gradients + optimizer
    /// state, plus CSR index storage for pruned layers).
    pub static_bytes: u64,
    /// Activation memory per in-flight micro-batch, in bytes.
    pub activation_bytes: u64,
    /// Bytes that must be transferred to migrate this layer to another
    /// worker (weights + optimizer state + sparse indices).
    pub migration_bytes: u64,
}

impl LayerLoad {
    /// Total compute time (forward + backward) for one micro-batch.
    pub fn total_time(&self) -> f64 {
        self.fwd_time + self.bwd_time
    }

    /// A zero-cost placeholder load for a layer (used for frozen layers and
    /// in tests).
    pub fn zero(layer_id: usize) -> Self {
        LayerLoad {
            layer_id,
            fwd_time: 0.0,
            bwd_time: 0.0,
            param_count: 0,
            static_bytes: 0,
            activation_bytes: 0,
            migration_bytes: 0,
        }
    }
}

/// Aggregate the loads of a set of layers (one pipeline stage's layers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageLoad {
    /// Sum of forward times of the stage's layers (seconds per micro-batch).
    pub fwd_time: f64,
    /// Sum of backward times of the stage's layers (seconds per micro-batch).
    pub bwd_time: f64,
    /// Sum of parameter counts.
    pub param_count: u64,
    /// Sum of static memory bytes.
    pub static_bytes: u64,
    /// Sum of activation bytes per in-flight micro-batch.
    pub activation_bytes: u64,
    /// Number of layers on the stage.
    pub num_layers: usize,
}

impl StageLoad {
    /// Accumulate one layer into the stage.
    pub fn add_layer(&mut self, load: &LayerLoad) {
        self.fwd_time += load.fwd_time;
        self.bwd_time += load.bwd_time;
        self.param_count += load.param_count;
        self.static_bytes += load.static_bytes;
        self.activation_bytes += load.activation_bytes;
        self.num_layers += 1;
    }

    /// Total compute time (forward + backward) per micro-batch.
    pub fn total_time(&self) -> f64 {
        self.fwd_time + self.bwd_time
    }
}

/// Aggregate per-layer loads into per-stage loads given a layer→stage map.
pub fn aggregate_stage_loads(
    loads: &[LayerLoad],
    layer_to_stage: &[usize],
    num_stages: usize,
) -> Vec<StageLoad> {
    assert_eq!(
        loads.len(),
        layer_to_stage.len(),
        "one stage index per layer load"
    );
    let mut stages = vec![StageLoad::default(); num_stages];
    for (load, &stage) in loads.iter().zip(layer_to_stage.iter()) {
        assert!(stage < num_stages, "stage index {stage} out of range");
        stages[stage].add_layer(load);
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize, fwd: f64, params: u64) -> LayerLoad {
        LayerLoad {
            layer_id: id,
            fwd_time: fwd,
            bwd_time: 2.0 * fwd,
            param_count: params,
            static_bytes: params * 16,
            activation_bytes: 1000,
            migration_bytes: params * 18,
        }
    }

    #[test]
    fn total_time_sums_fwd_and_bwd() {
        let l = load(0, 0.5, 10);
        assert_eq!(l.total_time(), 1.5);
        assert_eq!(LayerLoad::zero(3).total_time(), 0.0);
        assert_eq!(LayerLoad::zero(3).layer_id, 3);
    }

    #[test]
    fn stage_load_accumulates_layers() {
        let mut s = StageLoad::default();
        s.add_layer(&load(0, 1.0, 100));
        s.add_layer(&load(1, 2.0, 200));
        assert_eq!(s.num_layers, 2);
        assert_eq!(s.fwd_time, 3.0);
        assert_eq!(s.bwd_time, 6.0);
        assert_eq!(s.param_count, 300);
        assert_eq!(s.static_bytes, 4800);
        assert_eq!(s.activation_bytes, 2000);
        assert_eq!(s.total_time(), 9.0);
    }

    #[test]
    fn aggregation_groups_layers_by_stage() {
        let loads = vec![load(0, 1.0, 10), load(1, 2.0, 20), load(2, 3.0, 30)];
        let stages = aggregate_stage_loads(&loads, &[0, 0, 1], 2);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].num_layers, 2);
        assert_eq!(stages[0].fwd_time, 3.0);
        assert_eq!(stages[1].num_layers, 1);
        assert_eq!(stages[1].param_count, 30);
    }

    #[test]
    fn aggregation_allows_empty_stages() {
        let loads = vec![load(0, 1.0, 10)];
        let stages = aggregate_stage_loads(&loads, &[2], 4);
        assert_eq!(stages[0].num_layers, 0);
        assert_eq!(stages[2].num_layers, 1);
        assert_eq!(stages[3].total_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one stage index per layer load")]
    fn aggregation_requires_matching_lengths() {
        let loads = vec![load(0, 1.0, 10)];
        let _ = aggregate_stage_loads(&loads, &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aggregation_rejects_out_of_range_stage() {
        let loads = vec![load(0, 1.0, 10)];
        let _ = aggregate_stage_loads(&loads, &[5], 2);
    }
}
