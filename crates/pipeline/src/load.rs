//! Profiled per-layer load snapshots.
//!
//! A [`LayerLoad`] is what DynMo's profiling iteration produces for every
//! layer after a dynamism event: its *current* forward/backward execution
//! time, parameter count, and memory footprint.  Both balancer families
//! consume this structure — the "by parameters" variants read
//! `param_count`, the "by execution time" variants read the time fields —
//! and the re-packing algorithm reads the memory fields.

use serde::{Deserialize, Serialize};

/// The profiled cost of one layer at a specific training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerLoad {
    /// The layer's id (index within the model).
    pub layer_id: usize,
    /// Forward-pass execution time for one micro-batch, in seconds.
    pub fwd_time: f64,
    /// Backward-pass execution time for one micro-batch, in seconds.
    pub bwd_time: f64,
    /// Parameters currently held by the layer (after pruning, this is the
    /// retained count).
    pub param_count: u64,
    /// Static memory footprint in bytes (weights + gradients + optimizer
    /// state, plus CSR index storage for pruned layers).
    pub static_bytes: u64,
    /// Activation memory per in-flight micro-batch, in bytes.
    pub activation_bytes: u64,
    /// Bytes that must be transferred to migrate this layer to another
    /// worker (weights + optimizer state + sparse indices).
    pub migration_bytes: u64,
}

impl LayerLoad {
    /// Total compute time (forward + backward) for one micro-batch.
    pub fn total_time(&self) -> f64 {
        self.fwd_time + self.bwd_time
    }

    /// A zero-cost placeholder load for a layer (used for frozen layers and
    /// in tests).
    pub fn zero(layer_id: usize) -> Self {
        LayerLoad {
            layer_id,
            fwd_time: 0.0,
            bwd_time: 0.0,
            param_count: 0,
            static_bytes: 0,
            activation_bytes: 0,
            migration_bytes: 0,
        }
    }
}

/// Aggregate the loads of a set of layers (one pipeline stage's layers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageLoad {
    /// Sum of forward times of the stage's layers (seconds per micro-batch).
    pub fwd_time: f64,
    /// Sum of backward times of the stage's layers (seconds per micro-batch).
    pub bwd_time: f64,
    /// Sum of parameter counts.
    pub param_count: u64,
    /// Sum of static memory bytes.
    pub static_bytes: u64,
    /// Sum of activation bytes per in-flight micro-batch.
    pub activation_bytes: u64,
    /// Bytes of the hidden-state tensor this stage hands to the next one
    /// (the boundary tensor the comm model prices per stage).  `0` means
    /// the model's unshrunk residual-stream tensor — the dense default; a
    /// profiler or sweep that models token dropping sets the shrunk size
    /// here.  Deliberately *not* derived from `activation_bytes`: a
    /// stage's internal activation footprint mixes layer types (the
    /// embedding and head hold ~1/17 of a transformer block's
    /// activations), so normalizing the boundary by the mean per-layer
    /// footprint would mis-price every stage containing a special layer.
    pub boundary_bytes: u64,
    /// Number of layers on the stage.
    pub num_layers: usize,
}

impl StageLoad {
    /// Accumulate one layer into the stage.
    pub fn add_layer(&mut self, load: &LayerLoad) {
        self.fwd_time += load.fwd_time;
        self.bwd_time += load.bwd_time;
        self.param_count += load.param_count;
        self.static_bytes += load.static_bytes;
        self.activation_bytes += load.activation_bytes;
        self.num_layers += 1;
    }

    /// Total compute time (forward + backward) per micro-batch.
    pub fn total_time(&self) -> f64 {
        self.fwd_time + self.bwd_time
    }

    /// Whether the stage hosts no layers at all — the state a worker is
    /// left in after DynMo's re-packing releases it.  The simulator
    /// bypasses empty stages with a single direct transfer between their
    /// non-empty neighbours.
    pub fn is_empty(&self) -> bool {
        self.num_layers == 0
    }

    /// Input-gradient half of the backward pass (zero-bubble split
    /// backward).  For transformer blocks the activation-gradient and
    /// weight-gradient matmuls are the same size, so the split is modeled
    /// as an even halving of the profiled backward time.
    pub fn bwd_input_time(&self) -> f64 {
        0.5 * self.bwd_time
    }

    /// Weight-gradient half of the backward pass (zero-bubble split
    /// backward); see [`StageLoad::bwd_input_time`].
    pub fn bwd_weight_time(&self) -> f64 {
        0.5 * self.bwd_time
    }
}

/// Aggregate per-layer loads into per-stage loads given a layer→stage map.
pub fn aggregate_stage_loads(
    loads: &[LayerLoad],
    layer_to_stage: &[usize],
    num_stages: usize,
) -> Vec<StageLoad> {
    assert_eq!(
        loads.len(),
        layer_to_stage.len(),
        "one stage index per layer load"
    );
    let mut stages = vec![StageLoad::default(); num_stages];
    for (load, &stage) in loads.iter().zip(layer_to_stage.iter()) {
        assert!(stage < num_stages, "stage index {stage} out of range");
        stages[stage].add_layer(load);
    }
    stages
}

/// Per-stage boundary retention from a per-layer token-retention profile:
/// a stage hands downstream the residual stream of its *last* layer, so its
/// boundary carries that layer's retention.  Stages hosting no layers stay
/// at 1.0 (they pass the incoming tensor through unchanged).
///
/// The profile may come from a single mechanism or from a composed stack's
/// *merged* update (the element-wise product of the sub-engines'
/// retentions) — either way it is applied to the boundary exactly once
/// here, so stacked token-dropping mechanisms never double-shrink a wire.
pub fn boundary_retention_profile(
    layer_to_stage: &[usize],
    token_retention: &[f64],
    num_stages: usize,
) -> Vec<f64> {
    assert_eq!(
        token_retention.len(),
        layer_to_stage.len(),
        "one retention value per layer"
    );
    let mut retention = vec![1.0f64; num_stages];
    for (layer, &stage) in layer_to_stage.iter().enumerate() {
        assert!(stage < num_stages, "stage index {stage} out of range");
        // Layers arrive in id order, so the last write per stage wins —
        // exactly the stage's boundary layer.
        retention[stage] = token_retention[layer].clamp(0.0, 1.0);
    }
    retention
}

/// Size every stage's outgoing boundary tensor from a per-layer
/// token-retention profile (see [`boundary_retention_profile`]): each
/// stage's boundary is `flat_boundary_bytes` scaled by its boundary
/// layer's retention.  Layerless stages are left at 0 (the flat
/// passthrough default).  `token_retention` comes from the dynamism
/// engine's `LoadUpdate`; an all-ones profile sets every boundary to the
/// flat tensor — the same cost the 0 default prices.
pub fn apply_boundary_sizes(
    stages: &mut [StageLoad],
    layer_to_stage: &[usize],
    token_retention: &[f64],
    flat_boundary_bytes: u64,
) {
    assert!(
        layer_to_stage.iter().all(|&s| s < stages.len()),
        "stage index out of range"
    );
    let retention = boundary_retention_profile(layer_to_stage, token_retention, stages.len());
    for (stage, load) in stages.iter_mut().enumerate() {
        if load.is_empty() {
            continue; // released stage: keep the 0 passthrough default
        }
        load.boundary_bytes = (flat_boundary_bytes as f64 * retention[stage]) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize, fwd: f64, params: u64) -> LayerLoad {
        LayerLoad {
            layer_id: id,
            fwd_time: fwd,
            bwd_time: 2.0 * fwd,
            param_count: params,
            static_bytes: params * 16,
            activation_bytes: 1000,
            migration_bytes: params * 18,
        }
    }

    #[test]
    fn total_time_sums_fwd_and_bwd() {
        let l = load(0, 0.5, 10);
        assert_eq!(l.total_time(), 1.5);
        assert_eq!(LayerLoad::zero(3).total_time(), 0.0);
        assert_eq!(LayerLoad::zero(3).layer_id, 3);
    }

    #[test]
    fn stage_load_accumulates_layers() {
        let mut s = StageLoad::default();
        s.add_layer(&load(0, 1.0, 100));
        s.add_layer(&load(1, 2.0, 200));
        assert_eq!(s.num_layers, 2);
        assert_eq!(s.fwd_time, 3.0);
        assert_eq!(s.bwd_time, 6.0);
        assert_eq!(s.param_count, 300);
        assert_eq!(s.static_bytes, 4800);
        assert_eq!(s.activation_bytes, 2000);
        assert_eq!(s.total_time(), 9.0);
    }

    #[test]
    fn split_backward_halves_sum_to_the_fused_backward() {
        let mut s = StageLoad::default();
        s.add_layer(&load(0, 1.5, 10));
        assert_eq!(s.bwd_input_time() + s.bwd_weight_time(), s.bwd_time);
        assert_eq!(s.bwd_input_time(), s.bwd_weight_time());
    }

    #[test]
    fn only_layerless_stages_are_empty() {
        assert!(StageLoad::default().is_empty());
        let mut s = StageLoad::default();
        s.add_layer(&LayerLoad::zero(0));
        // A stage of frozen/zero-cost layers still hosts layers.
        assert!(!s.is_empty());
    }

    #[test]
    fn aggregation_groups_layers_by_stage() {
        let loads = vec![load(0, 1.0, 10), load(1, 2.0, 20), load(2, 3.0, 30)];
        let stages = aggregate_stage_loads(&loads, &[0, 0, 1], 2);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].num_layers, 2);
        assert_eq!(stages[0].fwd_time, 3.0);
        assert_eq!(stages[1].num_layers, 1);
        assert_eq!(stages[1].param_count, 30);
    }

    #[test]
    fn boundary_sizes_follow_the_last_layer_of_each_stage() {
        let mut stages = vec![StageLoad::default(); 3];
        stages[0].num_layers = 2;
        stages[1].num_layers = 2;
        // Stage 2 is layerless (released) and must keep the 0 default.
        let layer_to_stage = [0, 0, 1, 1];
        // Tokens exit after layers 1 and 3.
        let retention = [1.0, 0.8, 0.8, 0.5];
        apply_boundary_sizes(&mut stages, &layer_to_stage, &retention, 1_000);
        assert_eq!(stages[0].boundary_bytes, 800);
        assert_eq!(stages[1].boundary_bytes, 500);
        assert_eq!(stages[2].boundary_bytes, 0);
        // An all-ones profile prices the flat tensor.
        apply_boundary_sizes(&mut stages, &layer_to_stage, &[1.0; 4], 1_000);
        assert_eq!(stages[0].boundary_bytes, 1_000);
        assert_eq!(stages[1].boundary_bytes, 1_000);
    }

    #[test]
    fn boundary_retention_profile_takes_each_stages_last_layer() {
        let layer_to_stage = [0, 0, 1, 1];
        // A composed (non-monotone) retention product: MoD keeps 1.0 while
        // early exit shrinks — the profile must follow the merged values,
        // clamped into [0, 1].
        let retention = [1.0, 0.7, 1.2, 0.35];
        let profile = boundary_retention_profile(&layer_to_stage, &retention, 3);
        assert_eq!(profile, vec![0.7, 0.35, 1.0]);
    }

    #[test]
    fn aggregation_allows_empty_stages() {
        let loads = vec![load(0, 1.0, 10)];
        let stages = aggregate_stage_loads(&loads, &[2], 4);
        assert_eq!(stages[0].num_layers, 0);
        assert_eq!(stages[2].num_layers, 1);
        assert_eq!(stages[3].total_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one stage index per layer load")]
    fn aggregation_requires_matching_lengths() {
        let loads = vec![load(0, 1.0, 10)];
        let _ = aggregate_stage_loads(&loads, &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aggregation_rejects_out_of_range_stage() {
        let loads = vec![load(0, 1.0, 10)];
        let _ = aggregate_stage_loads(&loads, &[5], 2);
    }
}
