//! # dynmo-resilience
//!
//! Fault tolerance for DynMo's elastic training loop.
//!
//! The paper (§3.4.2) releases GPUs elastically but assumes the remaining
//! fleet never fails; this crate supplies the missing half of a
//! production-shaped story:
//!
//! * [`checkpoint`] — versioned, serde-serialized snapshots of trainer
//!   state: the stage→layer assignment, per-layer weight/optimizer proxies,
//!   pruning masks, frozen flags, and RNG stream positions, guarded by a
//!   checksum so a torn write is detected at restore time.
//! * [`store`] — the [`CheckpointStore`] trait with an in-memory store (for
//!   simulations and tests) and an on-disk store (JSON files, newest-wins),
//!   both round-tripping through the same serialized representation.
//!
//! The recovery *coordinator* — which rebuilds the communicator over the
//! survivors, re-balances for the new world size, and replays from the last
//! checkpoint — lives in `dynmo-core` (`dynmo_core::recovery`), because it
//! drives the balancer and the overhead accounting; this crate deliberately
//! stays below `dynmo-core` in the dependency order so both the trainer and
//! the coordinator can use these types.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod store;

pub use checkpoint::{
    fnv1a, Checkpoint, CheckpointCostModel, CheckpointError, Fnv1a, LayerState, TrainerState,
    CHECKPOINT_VERSION,
};
pub use store::{CheckpointStore, DiskCheckpointStore, MemoryCheckpointStore, TimedStore};
