//! Checkpoint stores: where snapshots live between failure and recovery.
//!
//! Both implementations persist the *serialized* JSON text (not the live
//! struct), so every `save → load` round-trip exercises the full
//! serialize/deserialize path and a checkpoint read back from memory is
//! byte-identical to one read back from disk.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use dynmo_telemetry::Stopwatch;

use crate::checkpoint::{Checkpoint, CheckpointError};

/// Storage backend for trainer checkpoints, keyed by iteration.
pub trait CheckpointStore {
    /// Persist a checkpoint (overwrites any existing one for the same
    /// iteration).
    fn save(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError>;

    /// Load and verify the checkpoint taken at exactly `iteration`.
    fn load(&self, iteration: u64) -> Result<Checkpoint, CheckpointError>;

    /// Load and verify the newest checkpoint, if any exist.
    fn latest(&self) -> Result<Option<Checkpoint>, CheckpointError>;

    /// Iterations with a stored checkpoint, ascending.
    fn iterations(&self) -> Vec<u64>;

    /// Drop all but the newest `keep` checkpoints; returns how many were
    /// removed.  Bounds storage during long runs.
    fn retain_last(&mut self, keep: usize) -> usize;
}

/// An in-memory store (simulations, tests, and the multi-rank harness,
/// where it stands in for a reachable parallel file system).
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpointStore {
    serialized: BTreeMap<u64, String>,
}

impl MemoryCheckpointStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.serialized.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.serialized.is_empty()
    }
}

fn decode_and_verify(text: &str) -> Result<Checkpoint, CheckpointError> {
    let checkpoint = Checkpoint::from_json(text)?;
    checkpoint.verify()?;
    Ok(checkpoint)
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        checkpoint.verify()?;
        self.serialized
            .insert(checkpoint.iteration(), checkpoint.to_json()?);
        Ok(())
    }

    fn load(&self, iteration: u64) -> Result<Checkpoint, CheckpointError> {
        let text = self
            .serialized
            .get(&iteration)
            .ok_or(CheckpointError::NotFound(iteration))?;
        decode_and_verify(text)
    }

    fn latest(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        match self.serialized.iter().next_back() {
            Some((_, text)) => decode_and_verify(text).map(Some),
            None => Ok(None),
        }
    }

    fn iterations(&self) -> Vec<u64> {
        self.serialized.keys().copied().collect()
    }

    fn retain_last(&mut self, keep: usize) -> usize {
        let excess = self.serialized.len().saturating_sub(keep);
        let drop_keys: Vec<u64> = self.serialized.keys().copied().take(excess).collect();
        for key in &drop_keys {
            self.serialized.remove(key);
        }
        drop_keys.len()
    }
}

/// An on-disk store writing one `ckpt-<iteration>.json` file per snapshot.
#[derive(Debug, Clone)]
pub struct DiskCheckpointStore {
    directory: PathBuf,
}

impl DiskCheckpointStore {
    /// Open (creating if needed) a store rooted at `directory`.
    pub fn open(directory: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let directory = directory.into();
        std::fs::create_dir_all(&directory).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(DiskCheckpointStore { directory })
    }

    /// The directory the store writes into.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    fn path_for(&self, iteration: u64) -> PathBuf {
        self.directory.join(format!("ckpt-{iteration:010}.json"))
    }

    fn scan(&self) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(&self.directory) else {
            return Vec::new();
        };
        let mut iterations: Vec<u64> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name();
                let name = name.to_str()?;
                let digits = name.strip_prefix("ckpt-")?.strip_suffix(".json")?;
                digits.parse().ok()
            })
            .collect();
        iterations.sort_unstable();
        iterations
    }
}

impl CheckpointStore for DiskCheckpointStore {
    fn save(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        checkpoint.verify()?;
        let path = self.path_for(checkpoint.iteration());
        // Write-then-rename so a crash mid-write can never leave a torn
        // file under the final name.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, checkpoint.to_json()?)
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    fn load(&self, iteration: u64) -> Result<Checkpoint, CheckpointError> {
        let path = self.path_for(iteration);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::NotFound(iteration)
            } else {
                CheckpointError::Io(e.to_string())
            }
        })?;
        decode_and_verify(&text)
    }

    fn latest(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        match self.scan().last() {
            Some(&iteration) => self.load(iteration).map(Some),
            None => Ok(None),
        }
    }

    fn iterations(&self) -> Vec<u64> {
        self.scan()
    }

    fn retain_last(&mut self, keep: usize) -> usize {
        let iterations = self.scan();
        let excess = iterations.len().saturating_sub(keep);
        let mut removed = 0;
        for &iteration in iterations.iter().take(excess) {
            if std::fs::remove_file(self.path_for(iteration)).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Wraps any [`CheckpointStore`] and accumulates the wall-clock seconds
/// spent inside it, using a `dynmo-telemetry` stopwatch around every
/// save/load/latest/retention call.
///
/// The measured seconds are *diagnostic*: they feed the `measured`
/// companion of the overhead breakdown and never touch simulated costs,
/// checksums, or determinism pins.  Read-side calls (`load`, `latest`)
/// take `&self`, so the accumulator lives in [`Cell`]s — callers that
/// share a `TimedStore` across threads must wrap it in a lock (as the
/// recovery coordinator's shared state already does).
#[derive(Debug, Clone, Default)]
pub struct TimedStore<S> {
    inner: S,
    seconds: Cell<f64>,
    ops: Cell<u64>,
}

impl<S> TimedStore<S> {
    /// Wrap a store with a fresh (zeroed) stopwatch accumulator.
    pub fn new(inner: S) -> Self {
        TimedStore {
            inner,
            seconds: Cell::new(0.0),
            ops: Cell::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the accumulator.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Total wall-clock seconds spent in store calls so far.
    pub fn io_seconds(&self) -> f64 {
        self.seconds.get()
    }

    /// Number of timed store calls so far.
    pub fn io_ops(&self) -> u64 {
        self.ops.get()
    }

    fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let (out, seconds) = Stopwatch::time(f);
        self.seconds.set(self.seconds.get() + seconds);
        self.ops.set(self.ops.get() + 1);
        out
    }
}

impl<S: CheckpointStore> CheckpointStore for TimedStore<S> {
    fn save(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        let (out, seconds) = Stopwatch::time(|| self.inner.save(checkpoint));
        self.seconds.set(self.seconds.get() + seconds);
        self.ops.set(self.ops.get() + 1);
        out
    }

    fn load(&self, iteration: u64) -> Result<Checkpoint, CheckpointError> {
        self.time(|| self.inner.load(iteration))
    }

    fn latest(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        self.time(|| self.inner.latest())
    }

    fn iterations(&self) -> Vec<u64> {
        // A metadata scan, not checkpoint I/O: left untimed.
        self.inner.iterations()
    }

    fn retain_last(&mut self, keep: usize) -> usize {
        let (out, seconds) = Stopwatch::time(|| self.inner.retain_last(keep));
        self.seconds.set(self.seconds.get() + seconds);
        self.ops.set(self.ops.get() + 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{LayerState, TrainerState};
    use dynmo_pipeline::StageAssignment;
    use std::collections::BTreeMap;

    fn state(iteration: u64) -> TrainerState {
        TrainerState {
            iteration,
            world_size: 2,
            assignment: StageAssignment::uniform(4, 2),
            layers: (0..4)
                .map(|layer_id| LayerState {
                    layer_id,
                    weights: vec![iteration as f32, layer_id as f32 * 0.5],
                    optimizer: vec![0.0, -0.25],
                    pruning_mask: vec![true, layer_id % 2 == 0],
                    frozen: false,
                    rng_state: iteration ^ layer_id as u64,
                })
                .collect(),
            metrics: BTreeMap::new(),
            engine: None,
        }
    }

    fn checkpoint(iteration: u64) -> Checkpoint {
        Checkpoint::new(state(iteration)).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dynmo-resilience-{tag}-{}", std::process::id()))
    }

    fn exercise_store(store: &mut dyn CheckpointStore) {
        assert!(store.latest().unwrap().is_none());
        assert_eq!(store.load(5).unwrap_err(), CheckpointError::NotFound(5));

        for iteration in [100, 50, 150, 200] {
            store.save(&checkpoint(iteration)).unwrap();
        }
        assert_eq!(store.iterations(), vec![50, 100, 150, 200]);
        assert_eq!(store.latest().unwrap().unwrap().iteration(), 200);
        let loaded = store.load(100).unwrap();
        assert_eq!(loaded.verify().unwrap(), &state(100));

        // Overwrite is idempotent on the key set.
        store.save(&checkpoint(100)).unwrap();
        assert_eq!(store.iterations().len(), 4);

        assert_eq!(store.retain_last(2), 2);
        assert_eq!(store.iterations(), vec![150, 200]);
        assert_eq!(store.load(50).unwrap_err(), CheckpointError::NotFound(50));
        assert_eq!(store.retain_last(10), 0);
    }

    #[test]
    fn memory_store_full_protocol() {
        let mut store = MemoryCheckpointStore::new();
        exercise_store(&mut store);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn disk_store_full_protocol() {
        let dir = temp_dir("protocol");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskCheckpointStore::open(&dir).unwrap();
        exercise_store(&mut store);
        // A fresh handle over the same directory sees the same snapshots.
        let reopened = DiskCheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.iterations(), vec![150, 200]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_rejects_corrupted_files() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskCheckpointStore::open(&dir).unwrap();
        store.save(&checkpoint(7)).unwrap();
        let path = dir.join("ckpt-0000000007.json");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"iteration\": 7", "\"iteration\": 8");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            store.load(7),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timed_store_passes_the_protocol_and_accumulates_io_time() {
        let mut store = TimedStore::new(MemoryCheckpointStore::new());
        exercise_store(&mut store);
        // Every save/load/latest/retain call above was timed.
        assert!(store.io_ops() >= 10, "ops: {}", store.io_ops());
        assert!(store.io_seconds() >= 0.0);
        assert!(store.io_seconds().is_finite());
        // The wrapper is transparent: the inner store holds the same data.
        assert_eq!(store.inner().len(), 2);
        assert_eq!(store.into_inner().iterations(), vec![150, 200]);
    }

    #[test]
    fn stores_agree_byte_for_byte() {
        let dir = temp_dir("parity");
        let _ = std::fs::remove_dir_all(&dir);
        let mut memory = MemoryCheckpointStore::new();
        let mut disk = DiskCheckpointStore::open(&dir).unwrap();
        let ckpt = checkpoint(42);
        memory.save(&ckpt).unwrap();
        disk.save(&ckpt).unwrap();
        assert_eq!(memory.load(42).unwrap(), disk.load(42).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
