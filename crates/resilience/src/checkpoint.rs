//! Versioned trainer-state snapshots.
//!
//! A [`Checkpoint`] captures everything needed to resume a DynMo training
//! job after a rank failure or an elastic re-scale: the layer→stage
//! assignment, per-layer weight and optimizer proxies, pruning masks, frozen
//! flags, and per-layer RNG stream positions.  The snapshot is
//! serde-serialized (JSON through the workspace shims), versioned, and
//! checksummed, so an incompatible or torn checkpoint is rejected at restore
//! time instead of silently corrupting the run.

use std::collections::BTreeMap;
use std::fmt;

use dynmo_dynamics::EngineState;
use dynmo_pipeline::StageAssignment;
use serde::{Deserialize, Serialize};

/// Current checkpoint format version.  Bump on any incompatible change to
/// [`TrainerState`]'s serialized shape.
///
/// * v1 — assignment, per-layer proxies, metrics.
/// * v2 — adds the optional `engine` snapshot: the dynamism stack's own
///   state (each sub-engine's RNG streams and masks versioned
///   independently), so composite runs replay bit-for-bit after recovery.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Errors raised by checkpoint creation, validation, and the stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the serialized checkpoint.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The state does not hash to the recorded checksum (torn/corrupt data).
    ChecksumMismatch {
        /// Checksum recorded in the checkpoint.
        recorded: u64,
        /// Checksum recomputed from the state.
        computed: u64,
    },
    /// The serialized form could not be parsed back into a checkpoint.
    Corrupt(String),
    /// No checkpoint exists for the requested iteration.
    NotFound(u64),
    /// Filesystem failure in the on-disk store.
    Io(String),
    /// The trainer state violates a structural invariant.
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} is not the supported {expected}"
                )
            }
            CheckpointError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "checkpoint checksum mismatch: recorded {recorded:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::NotFound(iteration) => {
                write!(f, "no checkpoint stored for iteration {iteration}")
            }
            CheckpointError::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            CheckpointError::Invalid(msg) => write!(f, "invalid trainer state: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshot of one model layer's training state.
///
/// The weight and optimizer vectors are *proxies*: the simulation does not
/// train a real network, but the recovery protocol must still move, restore,
/// and verify per-layer payloads of realistic shape, so each layer carries a
/// small dense state that evolves deterministically during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerState {
    /// Model layer id (position in the model).
    pub layer_id: usize,
    /// Weight proxy values.
    pub weights: Vec<f32>,
    /// Optimizer first-moment proxy, same shape as `weights`.
    pub optimizer: Vec<f32>,
    /// Pruning mask: `true` = parameter kept, same shape as `weights`.
    pub pruning_mask: Vec<bool>,
    /// Whether the layer is frozen (no longer updated).
    pub frozen: bool,
    /// The layer's RNG stream position (SplitMix64 state), so replayed
    /// iterations draw the same noise the original run drew.
    pub rng_state: u64,
}

impl LayerState {
    /// Fraction of parameters still present under the pruning mask.
    pub fn retention(&self) -> f64 {
        if self.pruning_mask.is_empty() {
            return 1.0;
        }
        self.pruning_mask.iter().filter(|&&k| k).count() as f64 / self.pruning_mask.len() as f64
    }

    /// Approximate serialized payload size in bytes (weights + optimizer at
    /// 4 bytes each, mask at 1, plus fixed fields).
    pub fn size_bytes(&self) -> u64 {
        (self.weights.len() * 4 + self.optimizer.len() * 4 + self.pruning_mask.len()) as u64 + 24
    }
}

/// The complete restorable state of a training job at an iteration
/// boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerState {
    /// The next iteration to execute: the snapshot contains every update up
    /// to (excluding) this iteration, so a restore resumes exactly here.
    pub iteration: u64,
    /// Number of pipeline workers active when the snapshot was taken.
    pub world_size: usize,
    /// Layer→stage assignment in effect.
    pub assignment: StageAssignment,
    /// Per-layer state, indexed by layer id.
    pub layers: Vec<LayerState>,
    /// Scalar training metrics carried across recovery (loss, imbalance,
    /// tokens processed, ...), keyed by metric name.
    pub metrics: BTreeMap<String, f64>,
    /// Snapshot of the dynamism engine (or composed stack) driving the run:
    /// every sub-engine's RNG stream positions, masks, and counters, each
    /// versioned independently.  `None` for runs that restore the model
    /// state only (the v1 behaviour).
    pub engine: Option<EngineState>,
}

impl TrainerState {
    /// Validate structural invariants before checkpointing or after restore.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.world_size == 0 {
            return Err(CheckpointError::Invalid(
                "world_size must be positive".into(),
            ));
        }
        if self.assignment.num_layers() != self.layers.len() {
            return Err(CheckpointError::Invalid(format!(
                "assignment covers {} layers but {} layer states are present",
                self.assignment.num_layers(),
                self.layers.len()
            )));
        }
        for (index, layer) in self.layers.iter().enumerate() {
            if layer.layer_id != index {
                return Err(CheckpointError::Invalid(format!(
                    "layer state {index} carries id {}",
                    layer.layer_id
                )));
            }
            if layer.optimizer.len() != layer.weights.len()
                || layer.pruning_mask.len() != layer.weights.len()
            {
                return Err(CheckpointError::Invalid(format!(
                    "layer {index}: weights/optimizer/mask lengths differ"
                )));
            }
            // Non-finite values serialize to JSON `null` and can never be
            // restored — reject them at save time, where the failure is
            // loud and the run is still healthy, instead of at recovery
            // time, when the checkpoint is the only copy left.
            if layer
                .weights
                .iter()
                .chain(&layer.optimizer)
                .any(|v| !v.is_finite())
            {
                return Err(CheckpointError::Invalid(format!(
                    "layer {index}: non-finite weight/optimizer value"
                )));
            }
        }
        if let Some((name, _)) = self.metrics.iter().find(|(_, v)| !v.is_finite()) {
            return Err(CheckpointError::Invalid(format!(
                "metric {name} is non-finite"
            )));
        }
        Ok(())
    }

    /// Approximate serialized size in bytes, the quantity the checkpoint
    /// cost model charges for.
    pub fn size_bytes(&self) -> u64 {
        self.layers.iter().map(LayerState::size_bytes).sum::<u64>()
            + (self.assignment.num_layers() * 8) as u64
            + (self.metrics.len() * 16) as u64
            + self.engine.as_ref().map_or(0, engine_state_bytes)
            + 64
    }
}

/// Approximate serialized size of an engine snapshot (recursing into a
/// composite stack's children).
fn engine_state_bytes(state: &EngineState) -> u64 {
    (state.name.len()
        + state.rng_streams.len() * 8
        + state.flags.len()
        + state.counters.len() * 8
        + state.scalars.len() * 8
        + 16) as u64
        + state.children.iter().map(engine_state_bytes).sum::<u64>()
}

/// A versioned, checksummed [`TrainerState`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// FNV-1a checksum of the canonical serialized state.
    pub checksum: u64,
    /// The snapshot itself.
    pub state: TrainerState,
}

impl Checkpoint {
    /// Wrap `state` into a checkpoint, stamping the current format version
    /// and the state's checksum.  Fails if the state is structurally
    /// invalid.
    pub fn new(state: TrainerState) -> Result<Self, CheckpointError> {
        state.validate()?;
        let checksum = state_checksum(&state);
        Ok(Checkpoint {
            version: CHECKPOINT_VERSION,
            checksum,
            state,
        })
    }

    /// The iteration this checkpoint was captured after.
    pub fn iteration(&self) -> u64 {
        self.state.iteration
    }

    /// Verify version and checksum, returning the state on success.
    pub fn verify(&self) -> Result<&TrainerState, CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: self.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let computed = state_checksum(&self.state);
        if computed != self.checksum {
            return Err(CheckpointError::ChecksumMismatch {
                recorded: self.checksum,
                computed,
            });
        }
        self.state.validate()?;
        Ok(&self.state)
    }

    /// Serialize to the canonical JSON text the stores persist.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }

    /// Parse a checkpoint back from its JSON text (does not verify; call
    /// [`Checkpoint::verify`] on the result).
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        serde_json::from_str(text).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }
}

/// Incremental FNV-1a writer — the streaming form of [`fnv1a`], for
/// consumers (the trainer's trajectory checksum) that hash across many
/// calls and checkpoint the running state in between.  Keeping the
/// constants in one place means every subsystem's "bit-identical" claim is
/// backed by the same primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A writer at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Rebuild a writer at a running state captured with [`Fnv1a::state`]
    /// (checkpoint restore).
    pub fn from_state(state: u64) -> Self {
        Fnv1a(state)
    }

    /// Fold `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The current hash value / resumable running state.
    pub fn state(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over a byte stream — the checksum primitive shared by the
/// checkpoint subsystem and the recovery harness in `dynmo-core`.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = Fnv1a::new();
    for byte in bytes {
        hash.write(&[byte]);
    }
    hash.state()
}

/// FNV-1a over the canonical (compact) JSON serialization of the state.
/// Serializing before hashing keeps the checksum stable across in-memory
/// representations and exactly matches what the stores persist.
fn state_checksum(state: &TrainerState) -> u64 {
    fnv1a(serde_json::to_string(state).unwrap_or_default().bytes())
}

/// Analytic cost model for checkpoint writes and restores, mirroring the
/// style of the pipeline crate's communication model: a fixed coordination
/// overhead plus bytes over bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCostModel {
    /// Sustained checkpoint write bandwidth in bytes/second (parallel file
    /// system or object store).
    pub write_bandwidth: f64,
    /// Sustained restore read bandwidth in bytes/second.
    pub read_bandwidth: f64,
    /// Fixed per-operation overhead in seconds (quiesce + metadata commit).
    pub fixed_overhead: f64,
}

impl Default for CheckpointCostModel {
    /// Defaults shaped after a DGX-class node writing to a parallel FS:
    /// 2 GB/s write, 5 GB/s read, 50 ms coordination overhead.
    fn default() -> Self {
        CheckpointCostModel {
            write_bandwidth: 2.0e9,
            read_bandwidth: 5.0e9,
            fixed_overhead: 0.05,
        }
    }
}

impl CheckpointCostModel {
    /// Simulated seconds to write a snapshot of `bytes`.
    pub fn write_cost(&self, bytes: u64) -> f64 {
        self.fixed_overhead + bytes as f64 / self.write_bandwidth.max(1.0)
    }

    /// Simulated seconds to read a snapshot of `bytes` back.
    pub fn read_cost(&self, bytes: u64) -> f64 {
        self.fixed_overhead + bytes as f64 / self.read_bandwidth.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_serialization_is_stable_across_a_round_trip() {
        // The checksum hashes the compact JSON text, so a state must
        // serialize to byte-identical text before and after a round trip
        // (this is what caught the parser's negative-zero regression).
        let state = sample_state(120, 8, 4);
        let before = serde_json::to_string(&state).unwrap();
        let checkpoint = Checkpoint::new(state).unwrap();
        let back = Checkpoint::from_json(&checkpoint.to_json().unwrap()).unwrap();
        let after = serde_json::to_string(&back.state).unwrap();
        assert_eq!(before, after);
    }

    pub(crate) fn sample_state(iteration: u64, num_layers: usize, stages: usize) -> TrainerState {
        let layers = (0..num_layers)
            .map(|layer_id| LayerState {
                layer_id,
                weights: (0..6).map(|i| (layer_id * 7 + i) as f32 * 0.25).collect(),
                optimizer: (0..6).map(|i| (layer_id + i) as f32 * -0.125).collect(),
                pruning_mask: (0..6).map(|i| (layer_id + i) % 3 != 0).collect(),
                frozen: layer_id % 4 == 0,
                rng_state: 0x1234_5678_9abc_def0 ^ layer_id as u64,
            })
            .collect();
        let mut metrics = BTreeMap::new();
        metrics.insert("loss".to_string(), 2.75);
        metrics.insert("imbalance".to_string(), 0.0625);
        TrainerState {
            iteration,
            world_size: stages,
            assignment: StageAssignment::uniform(num_layers, stages),
            layers,
            metrics,
            engine: None,
        }
    }

    #[test]
    fn checkpoint_round_trips_and_verifies() {
        let state = sample_state(120, 8, 4);
        let checkpoint = Checkpoint::new(state.clone()).unwrap();
        assert_eq!(checkpoint.version, CHECKPOINT_VERSION);
        assert_eq!(checkpoint.iteration(), 120);
        let text = checkpoint.to_json().unwrap();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back.verify().unwrap(), &state);
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn tampered_state_fails_the_checksum() {
        let mut checkpoint = Checkpoint::new(sample_state(10, 4, 2)).unwrap();
        checkpoint.state.layers[1].weights[0] += 1.0;
        assert!(matches!(
            checkpoint.verify(),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut checkpoint = Checkpoint::new(sample_state(10, 4, 2)).unwrap();
        checkpoint.version = CHECKPOINT_VERSION + 1;
        assert_eq!(
            checkpoint.verify().unwrap_err(),
            CheckpointError::VersionMismatch {
                found: CHECKPOINT_VERSION + 1,
                expected: CHECKPOINT_VERSION,
            }
        );
    }

    #[test]
    fn structural_invariants_are_enforced() {
        let mut state = sample_state(5, 4, 2);
        state.layers[2].optimizer.pop();
        assert!(matches!(
            Checkpoint::new(state),
            Err(CheckpointError::Invalid(_))
        ));

        let mut state = sample_state(5, 4, 2);
        state.layers.swap(0, 1);
        assert!(Checkpoint::new(state).is_err());

        let mut state = sample_state(5, 4, 2);
        state.world_size = 0;
        assert!(Checkpoint::new(state).is_err());

        // Non-finite values would serialize to `null` and be unrestorable;
        // they must be rejected while the run is still healthy.
        let mut state = sample_state(5, 4, 2);
        state.layers[1].weights[2] = f32::NAN;
        assert!(Checkpoint::new(state).is_err());
        let mut state = sample_state(5, 4, 2);
        state.layers[0].optimizer[0] = f32::INFINITY;
        assert!(Checkpoint::new(state).is_err());
        let mut state = sample_state(5, 4, 2);
        state.metrics.insert("loss".to_string(), f64::NAN);
        assert!(Checkpoint::new(state).is_err());
    }

    #[test]
    fn retention_tracks_the_mask() {
        let state = sample_state(1, 3, 1);
        for layer in &state.layers {
            let kept = layer.pruning_mask.iter().filter(|&&k| k).count();
            assert!((layer.retention() - kept as f64 / 6.0).abs() < 1e-12);
        }
        let empty = LayerState {
            layer_id: 0,
            weights: vec![],
            optimizer: vec![],
            pruning_mask: vec![],
            frozen: false,
            rng_state: 0,
        };
        assert_eq!(empty.retention(), 1.0);
    }

    #[test]
    fn cost_model_scales_with_size() {
        let model = CheckpointCostModel::default();
        let state = sample_state(1, 16, 4);
        let small = model.write_cost(state.size_bytes());
        let large = model.write_cost(state.size_bytes() * 1000);
        assert!(small >= model.fixed_overhead);
        assert!(large > small);
        assert!(model.read_cost(state.size_bytes()) < model.write_cost(state.size_bytes()));
    }

    #[test]
    fn corrupt_json_is_reported_not_panicked() {
        assert!(matches!(
            Checkpoint::from_json("{\"version\": 1, \"checksum\": oops"),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
