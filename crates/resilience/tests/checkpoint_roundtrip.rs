//! Property tests: `checkpoint → serialize → restore` preserves trainer
//! state bit-for-bit, through both the in-memory and the on-disk store.

use std::collections::BTreeMap;

use dynmo_pipeline::StageAssignment;
use dynmo_resilience::{
    Checkpoint, CheckpointStore, DiskCheckpointStore, LayerState, MemoryCheckpointStore,
    TrainerState,
};
use proptest::prelude::*;

/// Build a structurally valid state from free-form generated inputs.
fn build_state(
    iteration: u64,
    stages: usize,
    per_layer: &[Vec<f32>],
    mask_seed: u64,
    metrics: &[f64],
) -> TrainerState {
    let num_layers = per_layer.len().max(1);
    let layers: Vec<LayerState> = (0..num_layers)
        .map(|layer_id| {
            let weights = per_layer.get(layer_id).cloned().unwrap_or_default();
            let optimizer: Vec<f32> = weights.iter().map(|w| w * -0.5 + 0.125).collect();
            let pruning_mask: Vec<bool> = (0..weights.len())
                .map(|i| (mask_seed >> (i % 64)) & 1 == 0)
                .collect();
            LayerState {
                layer_id,
                weights,
                optimizer,
                pruning_mask,
                frozen: layer_id % 3 == 0,
                rng_state: mask_seed.wrapping_mul(layer_id as u64 + 1),
            }
        })
        .collect();
    let mut named = BTreeMap::new();
    for (i, &value) in metrics.iter().enumerate() {
        named.insert(format!("metric_{i}"), value);
    }
    TrainerState {
        iteration,
        world_size: stages,
        assignment: StageAssignment::uniform(num_layers, stages),
        layers,
        metrics: named,
        engine: None,
    }
}

/// Equality plus explicit bit-level comparison of every float, so the
/// "bit-for-bit" claim does not hide behind `PartialEq` edge cases
/// (e.g. `-0.0 == 0.0`).
fn assert_bit_identical(a: &TrainerState, b: &TrainerState) {
    assert_eq!(a, b);
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&la.weights), bits(&lb.weights));
        assert_eq!(bits(&la.optimizer), bits(&lb.optimizer));
        assert_eq!(la.rng_state, lb.rng_state);
    }
    for (ka, va) in &a.metrics {
        assert_eq!(va.to_bits(), b.metrics[ka].to_bits(), "metric {ka}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_store_round_trip_is_bit_for_bit(
        iteration in 0u64..1_000_000,
        stages in 1usize..9,
        flat in prop::collection::vec(-1.0e6f32..1.0e6, 8..96),
        layer_count in 1usize..13,
        mask_seed in 0u64..u64::MAX,
        metrics in prop::collection::vec(-1.0e9f64..1.0e9, 0..5),
    ) {
        let chunk = (flat.len() / layer_count).max(1);
        let per_layer: Vec<Vec<f32>> = (0..layer_count)
            .map(|l| flat.iter().copied().skip(l * chunk).take(chunk).collect())
            .collect();
        let state = build_state(iteration, stages, &per_layer, mask_seed, &metrics);
        let checkpoint = Checkpoint::new(state.clone()).unwrap();

        let mut store = MemoryCheckpointStore::new();
        store.save(&checkpoint).unwrap();
        let restored = store.load(iteration).unwrap();
        let restored_state = restored.verify().unwrap();
        assert_bit_identical(&state, restored_state);

        // The latest() path must agree with the direct load.
        let latest = store.latest().unwrap().unwrap();
        assert_bit_identical(&state, latest.verify().unwrap());
    }

    #[test]
    fn json_text_round_trip_is_bit_for_bit(
        iteration in 0u64..1_000_000,
        stages in 1usize..5,
        weights in prop::collection::vec(-1.0e12f32..1.0e12, 1..48),
        mask_seed in 0u64..u64::MAX,
    ) {
        let state = build_state(iteration, stages, &[weights], mask_seed, &[0.25]);
        let checkpoint = Checkpoint::new(state.clone()).unwrap();
        let text = checkpoint.to_json().unwrap();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_bit_identical(&state, back.verify().unwrap());
    }
}

#[test]
fn disk_store_round_trip_is_bit_for_bit() {
    let dir =
        std::env::temp_dir().join(format!("dynmo-resilience-proptest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DiskCheckpointStore::open(&dir).unwrap();
    // Awkward values on purpose: subnormal-adjacent, huge, tiny, negative.
    let weights = vec![1.1754944e-38f32, -3.4e38, 1.0e-7, -0.015625, 123456.78];
    let state = build_state(
        77,
        3,
        &[weights.clone(), weights],
        0xdead_beef,
        &[1.0 / 3.0],
    );
    let checkpoint = Checkpoint::new(state.clone()).unwrap();
    store.save(&checkpoint).unwrap();
    let restored = store.load(77).unwrap();
    assert_bit_identical(&state, restored.verify().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}
