//! Centralized contiguous partitioning (paper §3.3, first balancer).
//!
//! "The first is centralized parameter-based partitioning that balances
//! partitions based on the number of parameters.  The load balancing
//! algorithm is built on top of DeepSpeed's load balancing utility functions
//! for partitioning in model parallelism" — i.e. DeepSpeed's
//! `partition_balanced`, which finds the contiguous split of the layer
//! sequence that minimizes the heaviest stage.  DynMo runs the same
//! algorithm on either parameter counts or measured layer times.
//!
//! The implementation is the textbook "minimize the maximum contiguous
//! partition sum": binary search on the bottleneck value with a greedy
//! feasibility probe, which is exactly binary search + linear probing as
//! described in the paper's §5.

use dynmo_pipeline::StageAssignment;

use super::{BalanceOutcome, BalanceRequest, LoadBalancer};

/// The centralized partitioning balancer.
#[derive(Debug, Clone, Default)]
pub struct PartitionBalancer;

impl PartitionBalancer {
    /// Create a partition balancer.
    pub fn new() -> Self {
        PartitionBalancer
    }
}

/// Greedy probe: can `weights` be split into at most `parts` contiguous
/// groups each of sum ≤ `limit`?
fn feasible(weights: &[f64], parts: usize, limit: f64) -> bool {
    let mut used = 1usize;
    let mut current = 0.0f64;
    for &w in weights {
        if w > limit {
            return false;
        }
        if current + w > limit {
            used += 1;
            current = w;
            if used > parts {
                return false;
            }
        } else {
            current += w;
        }
    }
    true
}

/// Split `weights` into exactly `parts` contiguous groups minimizing the
/// maximum group sum; returns per-group counts.
pub fn partition_balanced(weights: &[f64], parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    if weights.is_empty() {
        return vec![0; parts];
    }
    let total: f64 = weights.iter().sum();
    let max_single = weights.iter().copied().fold(0.0, f64::max);
    // Binary search on the bottleneck value.
    let mut lo = max_single.max(total / parts as f64);
    let mut hi = total;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if feasible(weights, parts, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let limit = hi * (1.0 + 1e-12);
    // Greedy assignment under the found bottleneck, then pad to exactly
    // `parts` groups (trailing empty stages are allowed: they correspond to
    // workers left idle, which re-packing later releases).
    let mut counts = Vec::with_capacity(parts);
    let mut current = 0.0f64;
    let mut count = 0usize;
    for &w in weights {
        if count > 0 && current + w > limit && counts.len() < parts - 1 {
            counts.push(count);
            count = 0;
            current = 0.0;
        }
        count += 1;
        current += w;
    }
    counts.push(count);
    while counts.len() < parts {
        counts.push(0);
    }
    counts
}

/// Device-weighted greedy probe: can `weights` be split into contiguous
/// groups, one per entry of `speeds`, such that every stage `s` carries at
/// most `limit · speeds[s]` weight (i.e. at most `limit` *time*)?  Stages
/// may be skipped — a slow stage whose cap cannot hold the next layer alone
/// is left empty when some later stage can — which reduces to the
/// homogeneous probe when every speed is 1.0 (all caps equal, so a skip is
/// never taken and the stage walk mirrors the group counter).
fn feasible_weighted(weights: &[f64], speeds: &[f64], limit: f64) -> bool {
    let parts = speeds.len();
    let mut stage = 0usize;
    let mut current = 0.0f64;
    let mut count = 0usize;
    for &w in weights {
        loop {
            let cap = limit * speeds[stage];
            if count > 0 && current + w > cap {
                stage += 1;
                if stage >= parts {
                    return false;
                }
                current = 0.0;
                count = 0;
                continue;
            }
            if count == 0 && w > cap {
                // The layer does not fit this stage even alone: feasible
                // only by leaving the stage empty for a later, faster one.
                if !speeds[stage + 1..].iter().any(|&s| w <= limit * s) {
                    return false;
                }
                stage += 1;
                // `any` found a later stage, so this cannot run off the end.
                continue;
            }
            current += w;
            count += 1;
            break;
        }
    }
    true
}

/// Device-weighted [`partition_balanced`]: split `weights` into
/// `speeds.len()` contiguous groups minimizing the maximum *stage time*
/// `sum(group) / speeds[s]`; returns per-group counts.
///
/// With every speed exactly 1.0 this reproduces [`partition_balanced`]
/// bit-for-bit: the search bounds, the probe's booleans, the bisection
/// trajectory and the final greedy walk all collapse onto the homogeneous
/// algorithm's exact arithmetic.
pub fn partition_balanced_weighted(weights: &[f64], speeds: &[f64]) -> Vec<usize> {
    let parts = speeds.len();
    assert!(parts > 0, "need at least one part");
    assert!(
        speeds.iter().all(|&s| s > 0.0),
        "stage speeds must be positive"
    );
    if weights.is_empty() {
        return vec![0; parts];
    }
    let total: f64 = weights.iter().sum();
    let max_single = weights.iter().copied().fold(0.0, f64::max);
    let max_speed = speeds.iter().copied().fold(0.0, f64::max);
    let min_speed = speeds.iter().copied().fold(f64::INFINITY, f64::min);
    let sum_speeds: f64 = speeds.iter().sum();
    // Binary search on the bottleneck *time*.  `total / min_speed` (all
    // layers on the slowest stage) is always feasible; the biggest layer on
    // the fastest stage and the perfectly-spread time bound it below.
    let mut lo = (max_single / max_speed).max(total / sum_speeds);
    let mut hi = total / min_speed;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if feasible_weighted(weights, speeds, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let limit = hi * (1.0 + 1e-12);
    let mut counts = vec![0usize; parts];
    let mut stage = 0usize;
    let mut current = 0.0f64;
    for &w in weights {
        loop {
            let cap = limit * speeds[stage];
            let can_close = stage < parts - 1;
            if counts[stage] > 0 && current + w > cap && can_close {
                stage += 1;
                current = 0.0;
                continue;
            }
            if counts[stage] == 0
                && w > cap
                && can_close
                && speeds[stage + 1..].iter().any(|&s| w <= limit * s)
            {
                stage += 1;
                current = 0.0;
                continue;
            }
            counts[stage] += 1;
            current += w;
            break;
        }
    }
    counts
}

impl LoadBalancer for PartitionBalancer {
    fn name(&self) -> String {
        "partition".to_string()
    }

    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome {
        let weights: Vec<f64> = (0..request.loads.len())
            .map(|l| request.weight(l))
            .collect();
        let mut counts = match &request.stage_speeds {
            Some(speeds) => partition_balanced_weighted(&weights, speeds),
            None => partition_balanced(&weights, request.num_stages),
        };

        // Memory feasibility pass: if the weight-balanced split blows a
        // worker's memory budget, fall back to partitioning by memory bytes
        // (feasibility dominates optimality, as in the paper's "subject to
        // the constraints of memory capacity per worker").  A layer's stage
        // — and with it the schedule's per-stage in-flight depth — is not
        // known until after the split, so each layer is priced at the
        // *worst-case* in-flight depth across stages, consistent with the
        // per-stage accounting `stage_memory` applies afterwards: a split
        // balanced under the worst case can only over-provision, never
        // overflow a deep stage the way pricing every layer at stage 0's
        // depth did (1F1B/ZB-H1 depths vary per stage, and after an elastic
        // re-scale stage 0 need not be the deepest).
        if !memory_ok(request, &counts) {
            let worst_inflight = request.inflight.iter().copied().max().unwrap_or(1) as u64;
            let mem_weights: Vec<f64> = (0..request.loads.len())
                .map(|l| {
                    (request.loads[l].static_bytes
                        + request.loads[l].activation_bytes * worst_inflight)
                        as f64
                })
                .collect();
            counts = match &request.stage_capacities {
                // Uneven memory: give each stage a byte cap proportional to
                // its capacity (the probe's limit scaling absorbs units).
                Some(caps) => {
                    let cap_speeds: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
                    partition_balanced_weighted(&mem_weights, &cap_speeds)
                }
                None => partition_balanced(&mem_weights, request.num_stages),
            };
        }

        let assignment = StageAssignment::from_counts(&counts);
        let bottleneck = match &request.stage_speeds {
            Some(speeds) => stage_bottleneck_weighted(&weights, speeds, &counts),
            None => stage_bottleneck(&weights, &counts),
        };
        BalanceOutcome {
            assignment,
            rounds: 1,
            bottleneck,
        }
    }
}

fn stage_bottleneck(weights: &[f64], counts: &[usize]) -> f64 {
    let mut best = 0.0f64;
    let mut idx = 0usize;
    for &c in counts {
        let sum: f64 = weights[idx..idx + c].iter().sum();
        best = best.max(sum);
        idx += c;
    }
    best
}

/// Max per-stage *time* (`sum of weights / speed`) of a weighted split.
fn stage_bottleneck_weighted(weights: &[f64], speeds: &[f64], counts: &[usize]) -> f64 {
    let mut best = 0.0f64;
    let mut idx = 0usize;
    for (stage, &c) in counts.iter().enumerate() {
        let sum: f64 = weights[idx..idx + c].iter().sum();
        best = best.max(sum / speeds[stage]);
        idx += c;
    }
    best
}

fn memory_ok(request: &BalanceRequest<'_>, counts: &[usize]) -> bool {
    let mut idx = 0usize;
    for (stage, &c) in counts.iter().enumerate() {
        let layers: Vec<usize> = (idx..idx + c).collect();
        if request.stage_memory(stage, &layers) > request.capacity_of(stage) {
            return false;
        }
        idx += c;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::super::test_support::loads_from_times;
    use super::super::{stage_weights, BalanceObjective};
    use super::*;
    use crate::imbalance::load_imbalance;

    #[test]
    fn feasibility_probe_matches_hand_cases() {
        let w = [1.0, 2.0, 3.0, 4.0];
        assert!(feasible(&w, 2, 6.0));
        assert!(!feasible(&w, 2, 5.9));
        assert!(feasible(&w, 4, 4.0));
        assert!(!feasible(&w, 1, 9.9));
        assert!(feasible(&w, 1, 10.0));
    }

    #[test]
    fn partition_minimizes_the_bottleneck_on_uniform_weights() {
        let weights = vec![1.0; 24];
        let counts = partition_balanced(&weights, 4);
        assert_eq!(counts, vec![6, 6, 6, 6]);
    }

    #[test]
    fn partition_handles_skewed_weights() {
        // One huge layer: it must sit alone on a stage.
        let mut weights = vec![1.0; 7];
        weights.push(10.0);
        let counts = partition_balanced(&weights, 3);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        let bottleneck = stage_bottleneck(&weights, &counts);
        assert_eq!(bottleneck, 10.0); // cannot do better than the single big layer
    }

    #[test]
    fn partition_with_more_parts_than_layers_pads_empty_stages() {
        let weights = vec![5.0, 5.0];
        let counts = partition_balanced(&weights, 4);
        assert_eq!(counts.iter().sum::<usize>(), 2);
        assert_eq!(counts.len(), 4);
        assert_eq!(stage_bottleneck(&weights, &counts), 5.0);
    }

    #[test]
    fn partition_of_empty_weights_is_all_empty() {
        assert_eq!(partition_balanced(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    fn rebalance_reduces_imbalance_versus_uniform_split() {
        // Strongly decaying layer times (an early-exit-like profile).
        let times: Vec<f64> = (0..24).map(|i| 1.0 / (1.0 + i as f64 * 0.2)).collect();
        let loads = loads_from_times(&times);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime);
        let outcome = PartitionBalancer::new().rebalance(&request);
        assert!(outcome.assignment.is_contiguous());
        assert_eq!(outcome.assignment.num_layers(), 24);
        assert_eq!(outcome.rounds, 1);

        let uniform = dynmo_pipeline::StageAssignment::uniform(24, 4);
        let uniform_imb =
            load_imbalance(&stage_weights(&uniform, &loads, BalanceObjective::ByTime));
        let balanced_imb = load_imbalance(&stage_weights(
            &outcome.assignment,
            &loads,
            BalanceObjective::ByTime,
        ));
        assert!(
            balanced_imb < uniform_imb * 0.5,
            "balanced {balanced_imb} vs uniform {uniform_imb}"
        );
    }

    #[test]
    fn by_param_and_by_time_objectives_can_differ() {
        // Times skewed toward late layers, params uniform.
        let mut loads = loads_from_times(&[1.0; 12]);
        for (i, load) in loads.iter_mut().enumerate() {
            load.fwd_time = (i as f64 + 1.0) / 3.0;
            load.bwd_time = 2.0 * (i as f64 + 1.0) / 3.0;
            load.param_count = 1_000_000;
        }
        let by_time = PartitionBalancer::new().rebalance(&BalanceRequest::new(
            &loads,
            3,
            u64::MAX,
            BalanceObjective::ByTime,
        ));
        let by_param = PartitionBalancer::new().rebalance(&BalanceRequest::new(
            &loads,
            3,
            u64::MAX,
            BalanceObjective::ByParams,
        ));
        // By-param sees uniform weights → even 4/4/4 split.
        assert_eq!(by_param.assignment.counts(), vec![4, 4, 4]);
        // By-time puts fewer (heavy) layers on later stages.
        let counts = by_time.assignment.counts();
        assert!(counts[0] > counts[2], "counts {counts:?}");
    }

    #[test]
    fn memory_constraint_falls_back_to_memory_partitioning() {
        // Layer times are extremely skewed toward the first layer, but the
        // memory budget cannot hold more than 3 layers per stage.
        let mut loads = loads_from_times(&[1.0; 8]);
        for (i, load) in loads.iter_mut().enumerate() {
            load.fwd_time = if i == 0 { 100.0 } else { 0.001 };
            load.bwd_time = 0.0;
            load.static_bytes = 1_000;
            load.activation_bytes = 0;
        }
        // By time, the optimizer would put layers 1..7 all on stage 1 (7
        // layers × 1000 bytes = 7000 > 3500 capacity).
        let request = BalanceRequest::new(&loads, 2, 3_500, BalanceObjective::ByTime)
            .with_inflight(vec![0, 0]);
        let outcome = PartitionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        // The memory fallback gives a 4/4 split that fits.
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| c <= 4), "counts {counts:?}");
    }

    #[test]
    fn memory_fallback_prices_layers_at_the_worst_case_inflight_depth() {
        // Regression: the fallback used to weight every layer with stage
        // 0's in-flight count (`request.inflight.first()`).  In-flight
        // depth varies per stage (1F1B/ZB-H1 taper it; after an elastic
        // re-scale the deep stage need not be stage 0), so pricing
        // activation-heavy layers at a shallow stage's depth packs them
        // onto a deep stage and overflows it.
        //
        // Layers 0..3 are static-heavy (4000 B, no activations); layers
        // 4..7 are activation-heavy (1000 B per in-flight micro-batch).
        // Stage 1 holds 4 in-flight micro-batches, stage 0 only 1.
        let mut loads = loads_from_times(&[1.0; 8]);
        for (i, load) in loads.iter_mut().enumerate() {
            load.fwd_time = if i == 7 { 10.0 } else { 1.0 };
            load.bwd_time = 0.0;
            if i < 4 {
                load.static_bytes = 4_000;
                load.activation_bytes = 0;
            } else {
                load.static_bytes = 0;
                load.activation_bytes = 1_000;
            }
        }
        let capacity = 17_000;
        let request = BalanceRequest::new(&loads, 2, capacity, BalanceObjective::ByTime)
            .with_inflight(vec![1, 4]);

        // The by-time split ([7, 1]) blows stage 0's budget, so the memory
        // fallback must engage.
        let time_weights: Vec<f64> = (0..8).map(|l| request.weight(l)).collect();
        assert_eq!(partition_balanced(&time_weights, 2), vec![7, 1]);
        assert!(!memory_ok(&request, &[7, 1]));

        // Old behaviour, reproduced inline: weighting by stage 0's
        // in-flight depth (1) splits [3, 5] and overflows the *late* deep
        // stage — 4000 B static + 4 × 4 × 1000 B activations = 20 kB > 17 kB.
        let stage0_inflight = *request.inflight.first().unwrap() as u64;
        let old_weights: Vec<f64> = loads
            .iter()
            .map(|l| (l.static_bytes + l.activation_bytes * stage0_inflight) as f64)
            .collect();
        let old_counts = partition_balanced(&old_weights, 2);
        assert_eq!(old_counts, vec![3, 5]);
        assert!(
            !memory_ok(&request, &old_counts),
            "the old weighting must overflow the deep late stage for this regression test"
        );

        // The fixed fallback prices every layer at the worst-case depth,
        // splits [4, 4], and both stages fit.
        let outcome = PartitionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment.counts(), vec![4, 4]);
        assert!(memory_ok(&request, &outcome.assignment.counts()));
    }

    #[test]
    fn balancer_name_is_stable() {
        assert_eq!(PartitionBalancer::new().name(), "partition");
    }

    #[test]
    fn weighted_partition_with_unit_speeds_is_bit_identical_to_homogeneous() {
        let weights: Vec<f64> = (0..24)
            .map(|i| 1.0 + (i as f64 * 0.37).sin().abs())
            .collect();
        for parts in [1, 2, 3, 4, 7, 24, 30] {
            let speeds = vec![1.0; parts];
            assert_eq!(
                partition_balanced_weighted(&weights, &speeds),
                partition_balanced(&weights, parts),
                "parts = {parts}"
            );
        }
    }

    #[test]
    fn weighted_partition_gives_fast_stages_more_layers() {
        let weights = vec![1.0; 24];
        // Stage 0 is 3× faster than stage 2.
        let speeds = vec![3.0, 2.0, 1.0];
        let counts = partition_balanced_weighted(&weights, &speeds);
        assert_eq!(counts.iter().sum::<usize>(), 24);
        assert!(counts[0] > counts[2], "counts {counts:?}");
        // The weighted bottleneck beats the speed-blind even split's time on
        // the slow stage (8 layers / speed 1.0 = 8.0).
        let t = stage_bottleneck_weighted(&weights, &speeds, &counts);
        assert!(t < 8.0, "bottleneck {t}");
    }

    #[test]
    fn weighted_probe_can_leave_a_slow_stage_empty() {
        // One layer that only fits the fast stage: the probe must skip the
        // slow stage rather than fail.
        let weights = vec![10.0];
        let speeds = vec![0.1, 1.0];
        assert!(feasible_weighted(&weights, &speeds, 10.0));
        assert!(!feasible_weighted(&weights, &speeds, 9.0));
        let counts = partition_balanced_weighted(&weights, &speeds);
        assert_eq!(counts, vec![0, 1]);
    }

    #[test]
    fn hetero_request_routes_through_the_weighted_partition() {
        let loads = loads_from_times(&[1.0; 12]);
        let slow_last = BalanceRequest::new(&loads, 3, u64::MAX, BalanceObjective::ByTime)
            .with_stage_speeds(Some(vec![1.0, 1.0, 0.25]));
        let outcome = PartitionBalancer::new().rebalance(&slow_last);
        let counts = outcome.assignment.counts();
        assert_eq!(counts.iter().sum::<usize>(), 12);
        assert!(counts[2] < counts[0], "counts {counts:?}");
    }

    #[test]
    fn per_stage_capacities_bound_the_memory_fallback() {
        // All layers identical; stage 1's memory is a quarter of stage 0's,
        // so the fallback must shift layers onto stage 0.
        let mut loads = loads_from_times(&[1.0; 8]);
        for load in loads.iter_mut() {
            load.static_bytes = 1_000;
            load.activation_bytes = 0;
        }
        let request = BalanceRequest::new(&loads, 2, 8_000, BalanceObjective::ByTime)
            .with_inflight(vec![0, 0])
            .with_stage_capacities(Some(vec![8_000, 2_000]));
        let outcome = PartitionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts[1] <= 2, "counts {counts:?}");
        assert!(memory_ok(&request, &counts));
    }
}
