//! Decentralized diffusion-based balancing (paper §3.3, second balancer,
//! Lemma 2).
//!
//! The diffusion balancer starts from the assignment currently in effect and
//! iteratively moves layers from overloaded stages to underloaded *adjacent*
//! stages (moving a boundary layer keeps the assignment contiguous, so only
//! neighbor-to-neighbor transfers are ever needed — exactly the neighbor
//! averaging of the paper's analysis).  Each round the pair with the largest
//! workload gap acts first; a move is committed only if it decreases the
//! potential function
//!
//! ```text
//!   φ(r) = Σ_{u,v} |x_u(r) − x_v(r)|
//! ```
//!
//! and respects the destination's memory capacity.  φ is monotonically
//! non-increasing, and the number of rounds to γ-convergence is bounded by
//! Õ(N²) (Lemma 2), which the property tests and the `lemma2_convergence`
//! bench verify empirically.

use dynmo_pipeline::StageAssignment;

use super::{stage_weights, BalanceOutcome, BalanceRequest, LoadBalancer};

/// The decentralized iterative diffusion balancer.
#[derive(Debug, Clone)]
pub struct DiffusionBalancer {
    /// Maximum number of rounds before giving up (a safety valve; the
    /// Lemma 2 bound is far below this for the stage counts simulated).
    pub max_rounds: u64,
    /// Convergence threshold γ on the potential function, expressed as a
    /// fraction of the total load (so it is scale-free).
    pub gamma_fraction: f64,
}

impl Default for DiffusionBalancer {
    fn default() -> Self {
        DiffusionBalancer {
            max_rounds: 100_000,
            gamma_fraction: 1e-3,
        }
    }
}

impl DiffusionBalancer {
    /// Create a balancer with default convergence parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The theoretical round bound of Lemma 2 for `n` workers:
    /// `O(N² log(S·N/γ) log N)`, with the constant taken as 60 ln(2n) from
    /// the proof.  Used by tests and the convergence bench to check the
    /// empirical round counts stay below the bound.
    pub fn lemma2_round_bound(&self, num_stages: usize, total_load: f64) -> f64 {
        let n = num_stages.max(2) as f64;
        let gamma = (self.gamma_fraction * total_load).max(f64::MIN_POSITIVE);
        let s = total_load.max(gamma);
        60.0 * n * n * (2.0 * n).ln() * (s * n / gamma).ln().max(1.0)
    }
}

/// The potential function φ of Lemma 2: the sum of absolute pairwise load
/// gaps across all worker pairs.
pub fn potential(stage_loads: &[f64]) -> f64 {
    let mut phi = 0.0;
    for i in 0..stage_loads.len() {
        for j in (i + 1)..stage_loads.len() {
            phi += (stage_loads[i] - stage_loads[j]).abs();
        }
    }
    phi
}

impl LoadBalancer for DiffusionBalancer {
    fn name(&self) -> String {
        "diffusion".to_string()
    }

    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome {
        let num_layers = request.loads.len();
        let mut assignment = match request.current {
            Some(current) if current.num_stages() == request.num_stages => current.clone(),
            _ => StageAssignment::uniform(num_layers, request.num_stages),
        };
        let weights: Vec<f64> = (0..num_layers).map(|l| request.weight(l)).collect();
        let total: f64 = weights.iter().sum();
        let gamma = self.gamma_fraction * total;

        let mut loads = stage_weights(&assignment, request.loads, request.objective);
        let mut phi = potential(&loads);
        let mut rounds = 0u64;

        while rounds < self.max_rounds && phi > gamma {
            rounds += 1;
            // Find the adjacent pair with the largest gap (the "max
            // neighbor" strategy of the proof).
            let mut best_pair: Option<(usize, usize, f64)> = None;
            for s in 0..request.num_stages.saturating_sub(1) {
                let gap = (loads[s] - loads[s + 1]).abs();
                if best_pair.is_none_or(|(_, _, g)| gap > g) {
                    best_pair = Some((s, s + 1, gap));
                }
            }
            let Some((left, right, _)) = best_pair else {
                break;
            };

            // Move one boundary layer from the heavier to the lighter stage,
            // if it decreases φ and fits in memory.
            let (from, to) = if loads[left] >= loads[right] {
                (left, right)
            } else {
                (right, left)
            };
            let candidate = boundary_layer(&assignment, from, to);
            let mut improved = false;
            if let Some(layer) = candidate {
                let w = weights[layer];
                let mut new_loads = loads.clone();
                new_loads[from] -= w;
                new_loads[to] += w;
                let new_phi = potential(&new_loads);
                // Memory check on the destination stage.
                let mut dest_layers = assignment.layers_of(to);
                dest_layers.push(layer);
                let fits = request.stage_memory(to, &dest_layers) <= request.memory_capacity;
                if new_phi < phi - 1e-15 && fits {
                    assignment.move_layer(layer, to).expect("valid move");
                    loads = new_loads;
                    phi = new_phi;
                    improved = true;
                }
            }
            if !improved {
                // The max-gap pair cannot improve; try any other adjacent
                // pair before declaring convergence.
                let mut any = false;
                for s in 0..request.num_stages.saturating_sub(1) {
                    let (from, to) = if loads[s] >= loads[s + 1] {
                        (s, s + 1)
                    } else {
                        (s + 1, s)
                    };
                    if let Some(layer) = boundary_layer(&assignment, from, to) {
                        let w = weights[layer];
                        let mut new_loads = loads.clone();
                        new_loads[from] -= w;
                        new_loads[to] += w;
                        let new_phi = potential(&new_loads);
                        let mut dest_layers = assignment.layers_of(to);
                        dest_layers.push(layer);
                        let fits =
                            request.stage_memory(to, &dest_layers) <= request.memory_capacity;
                        if new_phi < phi - 1e-15 && fits {
                            assignment.move_layer(layer, to).expect("valid move");
                            loads = new_loads;
                            phi = new_phi;
                            any = true;
                            break;
                        }
                    }
                }
                if !any {
                    break; // no single-layer move improves φ: converged
                }
            }
        }

        let bottleneck = loads.iter().copied().fold(0.0, f64::max);
        BalanceOutcome {
            assignment,
            rounds,
            bottleneck,
        }
    }
}

/// The layer of stage `from` adjacent to stage `to` (its first layer if `to`
/// precedes it, its last layer otherwise).  Returns `None` when `from` holds
/// no layers.
fn boundary_layer(assignment: &StageAssignment, from: usize, to: usize) -> Option<usize> {
    let layers = assignment.layers_of(from);
    if layers.is_empty() {
        return None;
    }
    if to < from {
        layers.first().copied()
    } else {
        layers.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::loads_from_times;
    use super::super::{BalanceObjective, PartitionBalancer};
    use super::*;
    use crate::imbalance::load_imbalance;

    #[test]
    fn potential_is_zero_only_when_balanced() {
        assert_eq!(potential(&[2.0, 2.0, 2.0]), 0.0);
        assert!(potential(&[1.0, 3.0]) > 0.0);
        assert_eq!(potential(&[]), 0.0);
        assert_eq!(potential(&[5.0]), 0.0);
    }

    #[test]
    fn diffusion_improves_a_skewed_starting_assignment() {
        // Layer times decay sharply (early-exit-like); start from uniform.
        let times: Vec<f64> = (0..32).map(|i| (1.0 + i as f64 * 0.3).recip()).collect();
        let loads = loads_from_times(&times);
        let current = StageAssignment::uniform(32, 8);
        let request = BalanceRequest::new(&loads, 8, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let before = load_imbalance(&stage_weights(&current, &loads, BalanceObjective::ByTime));
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let after = load_imbalance(&stage_weights(
            &outcome.assignment,
            &loads,
            BalanceObjective::ByTime,
        ));
        assert!(after < before * 0.5, "before {before} after {after}");
        assert!(outcome.assignment.is_contiguous());
        assert_eq!(outcome.assignment.num_layers(), 32);
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn diffusion_matches_partition_quality_within_a_factor() {
        // Both balancers should land near the same bottleneck (the paper
        // proves both converge to the optimal balance).
        let times: Vec<f64> = (0..26)
            .map(|i| if i % 5 == 0 { 3.0 } else { 1.0 })
            .collect();
        let loads = loads_from_times(&times);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime);
        let partition = PartitionBalancer::new().rebalance(&request);
        let diffusion = DiffusionBalancer::new().rebalance(&request);
        assert!(
            diffusion.bottleneck <= partition.bottleneck * 1.3 + 1e-12,
            "diffusion {} vs partition {}",
            diffusion.bottleneck,
            partition.bottleneck
        );
    }

    #[test]
    fn rounds_stay_within_the_lemma2_bound() {
        let times: Vec<f64> = (0..48)
            .map(|i| 0.3 + ((i * 37) % 17) as f64 * 0.2)
            .collect();
        let loads = loads_from_times(&times);
        for stages in [2usize, 4, 8, 16] {
            let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime);
            let balancer = DiffusionBalancer::new();
            let outcome = balancer.rebalance(&request);
            let total: f64 = times.iter().sum();
            let bound = balancer.lemma2_round_bound(stages, total);
            assert!(
                (outcome.rounds as f64) < bound,
                "stages {stages}: rounds {} exceeds bound {bound}",
                outcome.rounds
            );
        }
    }

    #[test]
    fn already_balanced_input_converges_immediately() {
        let loads = loads_from_times(&[1.0; 16]);
        let current = StageAssignment::uniform(16, 4);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment, current);
        assert!(outcome.rounds <= 1);
    }

    #[test]
    fn memory_capacity_blocks_overfilling_a_stage() {
        // Stage 1's layers are tiny in time, so diffusion wants to push
        // everything there — but memory only fits 5 layers per stage.
        let mut loads = loads_from_times(&[1.0; 8]);
        for (i, l) in loads.iter_mut().enumerate() {
            l.fwd_time = if i < 4 { 3.0 } else { 0.1 };
            l.bwd_time = 0.0;
            l.static_bytes = 1_000;
            l.activation_bytes = 0;
        }
        let request = BalanceRequest::new(&loads, 2, 5_000, BalanceObjective::ByTime)
            .with_inflight(vec![0, 0]);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        assert!(counts.iter().all(|&c| c <= 5), "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 8);
    }

    #[test]
    fn mismatched_current_stage_count_restarts_from_uniform() {
        let loads = loads_from_times(&[1.0; 12]);
        let current = StageAssignment::uniform(12, 6);
        // Request only 3 stages: the 6-stage current assignment is ignored.
        let request = BalanceRequest::new(&loads, 3, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment.num_stages(), 3);
        assert_eq!(outcome.assignment.counts(), vec![4, 4, 4]);
    }

    #[test]
    fn balancer_name_is_stable() {
        assert_eq!(DiffusionBalancer::new().name(), "diffusion");
    }
}
