//! Decentralized diffusion-based balancing (paper §3.3, second balancer,
//! Lemma 2).
//!
//! The diffusion balancer starts from the assignment currently in effect and
//! iteratively moves layers from overloaded stages to underloaded *adjacent*
//! stages (moving a boundary layer keeps the assignment contiguous, so only
//! neighbor-to-neighbor transfers are ever needed — exactly the neighbor
//! averaging of the paper's analysis).  Each round the pair with the largest
//! workload gap acts first; a move is committed only if it decreases the
//! potential function
//!
//! ```text
//!   φ(r) = Σ_{u,v} |x_u(r) − x_v(r)|
//! ```
//!
//! and respects the destination's memory capacity.  φ is monotonically
//! non-increasing, and the number of rounds to γ-convergence is bounded by
//! Õ(N²) (Lemma 2), which the property tests and the `lemma2_convergence`
//! bench verify empirically.

use dynmo_pipeline::StageAssignment;

use super::{stage_weights, BalanceOutcome, BalanceRequest, LoadBalancer};

/// The decentralized iterative diffusion balancer.
#[derive(Debug, Clone)]
pub struct DiffusionBalancer {
    /// Maximum number of rounds before giving up (a safety valve; the
    /// Lemma 2 bound is far below this for the stage counts simulated).
    pub max_rounds: u64,
    /// Convergence threshold γ on the potential function, expressed as a
    /// fraction of the total load (so it is scale-free).
    pub gamma_fraction: f64,
    /// Evaluate candidate moves with the O(p) incremental potential update
    /// ([`potential_after_move`]) instead of cloning the stage loads and
    /// recomputing the full O(p²) pairwise sum per candidate.  On by
    /// default; the `lemma2_convergence` bench flips it off to measure the
    /// win, and the property tests pin both paths to identical outcomes.
    pub use_incremental_potential: bool,
}

impl Default for DiffusionBalancer {
    fn default() -> Self {
        DiffusionBalancer {
            max_rounds: 100_000,
            gamma_fraction: 1e-3,
            use_incremental_potential: true,
        }
    }
}

impl DiffusionBalancer {
    /// Create a balancer with default convergence parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The theoretical round bound of Lemma 2 for `n` workers:
    /// `O(N² log(S·N/γ) log N)`, with the constant taken as 60 ln(2n) from
    /// the proof.  Used by tests and the convergence bench to check the
    /// empirical round counts stay below the bound.
    pub fn lemma2_round_bound(&self, num_stages: usize, total_load: f64) -> f64 {
        let n = num_stages.max(2) as f64;
        let gamma = (self.gamma_fraction * total_load).max(f64::MIN_POSITIVE);
        let s = total_load.max(gamma);
        60.0 * n * n * (2.0 * n).ln() * (s * n / gamma).ln().max(1.0)
    }
}

/// The potential function φ of Lemma 2: the sum of absolute pairwise load
/// gaps across all worker pairs.  O(p²) — use [`potential_after_move`] to
/// evaluate a candidate boundary move in O(p).
pub fn potential(stage_loads: &[f64]) -> f64 {
    let mut phi = 0.0;
    for i in 0..stage_loads.len() {
        for j in (i + 1)..stage_loads.len() {
            phi += (stage_loads[i] - stage_loads[j]).abs();
        }
    }
    phi
}

/// φ after moving weight `w` from stage `from` to stage `to`, computed
/// incrementally from the current `phi`: a boundary move only changes two
/// stage loads, so only the O(p) pairwise terms touching those two stages
/// change — the remaining O(p²) terms cancel.  With exactly-representable
/// loads (integer-valued f64s, as the property test uses) the result is
/// bit-equal to recomputing [`potential`] on the moved load vector.
pub fn potential_after_move(stage_loads: &[f64], phi: f64, from: usize, to: usize, w: f64) -> f64 {
    potential_after_asymmetric_move(stage_loads, phi, from, to, w, w)
}

/// [`potential_after_move`] for heterogeneous stages, where one layer's
/// *time* differs between the source and destination device: the source
/// sheds `dw_from` and the destination gains `dw_to`.  With `dw_from ==
/// dw_to` this is exactly the symmetric update (the homogeneous path calls
/// it with the raw weight on both sides).
pub fn potential_after_asymmetric_move(
    stage_loads: &[f64],
    phi: f64,
    from: usize,
    to: usize,
    dw_from: f64,
    dw_to: f64,
) -> f64 {
    debug_assert_ne!(from, to);
    let old_from = stage_loads[from];
    let old_to = stage_loads[to];
    let new_from = old_from - dw_from;
    let new_to = old_to + dw_to;
    let mut delta = (new_from - new_to).abs() - (old_from - old_to).abs();
    for (j, &load) in stage_loads.iter().enumerate() {
        if j == from || j == to {
            continue;
        }
        delta += (new_from - load).abs() - (old_from - load).abs();
        delta += (new_to - load).abs() - (old_to - load).abs();
    }
    phi + delta
}

impl LoadBalancer for DiffusionBalancer {
    fn name(&self) -> String {
        "diffusion".to_string()
    }

    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome {
        let num_layers = request.loads.len();
        // The current assignment seeds the iteration only when it still
        // matches the request's shape: stage count AND layer count.  A
        // stale assignment after a layer-count change (pruned or released
        // layers, a grown model) would index `weights[layer]` out of
        // bounds — or, worse, silently balance the wrong layers.
        let mut assignment = match request.current {
            Some(current)
                if current.num_stages() == request.num_stages
                    && current.num_layers() == num_layers =>
            {
                current.clone()
            }
            _ => StageAssignment::uniform(num_layers, request.num_stages),
        };
        let weights: Vec<f64> = (0..num_layers).map(|l| request.weight(l)).collect();
        let total: f64 = weights.iter().sum();
        // γ is scale-free against the total *time*; on a heterogeneous
        // cluster the fastest device sets the time scale of the load vector
        // below.  (With all speeds 1.0 both divisions are exact no-ops, so
        // the homogeneous bits are untouched.)
        let gamma = match &request.stage_speeds {
            Some(speeds) => {
                let max_speed = speeds.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
                self.gamma_fraction * (total / max_speed)
            }
            None => self.gamma_fraction * total,
        };

        // Stage loads in the time domain: raw objective weight over the
        // stage's effective speed.
        let mut loads = stage_weights(&assignment, request.loads, request.objective);
        if let Some(speeds) = &request.stage_speeds {
            for (s, load) in loads.iter_mut().enumerate() {
                *load /= speeds[s];
            }
        }
        let mut phi = potential(&loads);
        let mut rounds = 0u64;

        // Evaluate moving the boundary layer of `from` to `to`: the new φ
        // (incremental O(p) delta, or the legacy full O(p²) recompute) and
        // the layer moved, when the move improves φ and fits in memory.
        let evaluate = |assignment: &StageAssignment,
                        loads: &[f64],
                        phi: f64,
                        from: usize,
                        to: usize|
         -> Option<(usize, f64, f64, f64)> {
            let layer = boundary_layer(assignment, from, to)?;
            let w = weights[layer];
            // The layer's *time* on each endpoint's device.
            let (dw_from, dw_to) = match &request.stage_speeds {
                Some(speeds) => (w / speeds[from], w / speeds[to]),
                None => (w, w),
            };
            let new_phi = if self.use_incremental_potential {
                potential_after_asymmetric_move(loads, phi, from, to, dw_from, dw_to)
            } else {
                let mut new_loads = loads.to_vec();
                new_loads[from] -= dw_from;
                new_loads[to] += dw_to;
                potential(&new_loads)
            };
            // Memory check on the destination stage.
            let mut dest_layers = assignment.layers_of(to);
            dest_layers.push(layer);
            let fits = request.stage_memory(to, &dest_layers) <= request.capacity_of(to);
            (new_phi < phi - 1e-15 && fits).then_some((layer, new_phi, dw_from, dw_to))
        };

        while rounds < self.max_rounds && phi > gamma {
            rounds += 1;
            // Find the adjacent pair with the largest gap (the "max
            // neighbor" strategy of the proof).
            let mut best_pair: Option<(usize, usize, f64)> = None;
            for s in 0..request.num_stages.saturating_sub(1) {
                let gap = (loads[s] - loads[s + 1]).abs();
                if best_pair.is_none_or(|(_, _, g)| gap > g) {
                    best_pair = Some((s, s + 1, gap));
                }
            }
            let Some((left, right, _)) = best_pair else {
                break;
            };

            // Move one boundary layer from the heavier to the lighter stage,
            // if it decreases φ and fits in memory.
            let (from, to) = if loads[left] >= loads[right] {
                (left, right)
            } else {
                (right, left)
            };
            let mut committed = evaluate(&assignment, &loads, phi, from, to)
                .map(|(layer, new_phi, dw_from, dw_to)| (layer, new_phi, dw_from, dw_to, from, to));
            if committed.is_none() {
                // The max-gap pair cannot improve; try any other adjacent
                // pair before declaring convergence.
                for s in 0..request.num_stages.saturating_sub(1) {
                    let (from, to) = if loads[s] >= loads[s + 1] {
                        (s, s + 1)
                    } else {
                        (s + 1, s)
                    };
                    if let Some((layer, new_phi, dw_from, dw_to)) =
                        evaluate(&assignment, &loads, phi, from, to)
                    {
                        committed = Some((layer, new_phi, dw_from, dw_to, from, to));
                        break;
                    }
                }
            }
            let Some((layer, new_phi, dw_from, dw_to, from, to)) = committed else {
                break; // no single-layer move improves φ: converged
            };
            assignment.move_layer(layer, to).expect("valid move");
            loads[from] -= dw_from;
            loads[to] += dw_to;
            phi = new_phi;
        }

        let bottleneck = loads.iter().copied().fold(0.0, f64::max);
        BalanceOutcome {
            assignment,
            rounds,
            bottleneck,
        }
    }
}

/// The layer of stage `from` adjacent to stage `to` (its first layer if `to`
/// precedes it, its last layer otherwise).  Returns `None` when `from` holds
/// no layers.
fn boundary_layer(assignment: &StageAssignment, from: usize, to: usize) -> Option<usize> {
    let layers = assignment.layers_of(from);
    if layers.is_empty() {
        return None;
    }
    if to < from {
        layers.first().copied()
    } else {
        layers.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::loads_from_times;
    use super::super::{BalanceObjective, PartitionBalancer};
    use super::*;
    use crate::imbalance::load_imbalance;

    #[test]
    fn potential_is_zero_only_when_balanced() {
        assert_eq!(potential(&[2.0, 2.0, 2.0]), 0.0);
        assert!(potential(&[1.0, 3.0]) > 0.0);
        assert_eq!(potential(&[]), 0.0);
        assert_eq!(potential(&[5.0]), 0.0);
    }

    #[test]
    fn diffusion_improves_a_skewed_starting_assignment() {
        // Layer times decay sharply (early-exit-like); start from uniform.
        let times: Vec<f64> = (0..32).map(|i| (1.0 + i as f64 * 0.3).recip()).collect();
        let loads = loads_from_times(&times);
        let current = StageAssignment::uniform(32, 8);
        let request = BalanceRequest::new(&loads, 8, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let before = load_imbalance(&stage_weights(&current, &loads, BalanceObjective::ByTime));
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let after = load_imbalance(&stage_weights(
            &outcome.assignment,
            &loads,
            BalanceObjective::ByTime,
        ));
        assert!(after < before * 0.5, "before {before} after {after}");
        assert!(outcome.assignment.is_contiguous());
        assert_eq!(outcome.assignment.num_layers(), 32);
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn diffusion_matches_partition_quality_within_a_factor() {
        // Both balancers should land near the same bottleneck (the paper
        // proves both converge to the optimal balance).
        let times: Vec<f64> = (0..26)
            .map(|i| if i % 5 == 0 { 3.0 } else { 1.0 })
            .collect();
        let loads = loads_from_times(&times);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime);
        let partition = PartitionBalancer::new().rebalance(&request);
        let diffusion = DiffusionBalancer::new().rebalance(&request);
        assert!(
            diffusion.bottleneck <= partition.bottleneck * 1.3 + 1e-12,
            "diffusion {} vs partition {}",
            diffusion.bottleneck,
            partition.bottleneck
        );
    }

    #[test]
    fn rounds_stay_within_the_lemma2_bound() {
        let times: Vec<f64> = (0..48)
            .map(|i| 0.3 + ((i * 37) % 17) as f64 * 0.2)
            .collect();
        let loads = loads_from_times(&times);
        for stages in [2usize, 4, 8, 16] {
            let request = BalanceRequest::new(&loads, stages, u64::MAX, BalanceObjective::ByTime);
            let balancer = DiffusionBalancer::new();
            let outcome = balancer.rebalance(&request);
            let total: f64 = times.iter().sum();
            let bound = balancer.lemma2_round_bound(stages, total);
            assert!(
                (outcome.rounds as f64) < bound,
                "stages {stages}: rounds {} exceeds bound {bound}",
                outcome.rounds
            );
        }
    }

    #[test]
    fn already_balanced_input_converges_immediately() {
        let loads = loads_from_times(&[1.0; 16]);
        let current = StageAssignment::uniform(16, 4);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment, current);
        assert!(outcome.rounds <= 1);
    }

    #[test]
    fn memory_capacity_blocks_overfilling_a_stage() {
        // Stage 1's layers are tiny in time, so diffusion wants to push
        // everything there — but memory only fits 5 layers per stage.
        let mut loads = loads_from_times(&[1.0; 8]);
        for (i, l) in loads.iter_mut().enumerate() {
            l.fwd_time = if i < 4 { 3.0 } else { 0.1 };
            l.bwd_time = 0.0;
            l.static_bytes = 1_000;
            l.activation_bytes = 0;
        }
        let request = BalanceRequest::new(&loads, 2, 5_000, BalanceObjective::ByTime)
            .with_inflight(vec![0, 0]);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        assert!(counts.iter().all(|&c| c <= 5), "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 8);
    }

    #[test]
    fn mismatched_current_stage_count_restarts_from_uniform() {
        let loads = loads_from_times(&[1.0; 12]);
        let current = StageAssignment::uniform(12, 6);
        // Request only 3 stages: the 6-stage current assignment is ignored.
        let request = BalanceRequest::new(&loads, 3, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment.num_stages(), 3);
        assert_eq!(outcome.assignment.counts(), vec![4, 4, 4]);
    }

    #[test]
    fn stale_layer_count_restarts_from_uniform_instead_of_indexing_oob() {
        // Regression: the fast path used to accept any current assignment
        // with a matching *stage* count.  After a layer-count change (e.g.
        // fully released layers dropped from the profile) the stale
        // 16-layer assignment would index `weights[layer]` out of bounds
        // for the 10-layer request — or mis-balance if it happened to fit.
        let loads = loads_from_times(&(0..10).map(|i| 1.0 + i as f64 * 0.3).collect::<Vec<_>>());
        let stale = StageAssignment::uniform(16, 4);
        let request =
            BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime).with_current(&stale);
        let outcome = DiffusionBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment.num_layers(), 10);
        assert_eq!(outcome.assignment.num_stages(), 4);
        assert!(outcome.assignment.is_contiguous());
        // And it matches a run that never saw the stale assignment.
        let fresh = DiffusionBalancer::new().rebalance(&BalanceRequest::new(
            &loads,
            4,
            u64::MAX,
            BalanceObjective::ByTime,
        ));
        assert_eq!(outcome.assignment, fresh.assignment);
    }

    #[test]
    fn incremental_potential_matches_full_recompute_bit_for_bit() {
        // Integer-valued f64 loads keep every sum/difference exact, so the
        // O(p) delta and the O(p²) recompute must agree to the last bit.
        let loads: Vec<f64> = (0..24).map(|i| f64::from(((i * 37) % 17) + 1)).collect();
        let phi = potential(&loads);
        for from in 0..loads.len() {
            for to in 0..loads.len() {
                if from == to {
                    continue;
                }
                for w in [1.0f64, 2.0, 5.0, 13.0] {
                    let incremental = potential_after_move(&loads, phi, from, to, w);
                    let mut moved = loads.clone();
                    moved[from] -= w;
                    moved[to] += w;
                    let full = potential(&moved);
                    assert_eq!(
                        incremental.to_bits(),
                        full.to_bits(),
                        "from {from} to {to} w {w}: {incremental} vs {full}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_and_full_paths_produce_identical_outcomes() {
        // The toggle only changes how candidate φ values are computed; the
        // committed moves — and hence the final assignment, round count,
        // and bottleneck — must be identical on realistic (non-dyadic)
        // workloads.
        for seed in 0..6u64 {
            let times: Vec<f64> = (0..40)
                .map(|i| 0.25 + (((i as u64 + 1) * (seed + 3) * 2654435761) % 997) as f64 / 300.0)
                .collect();
            let loads = loads_from_times(&times);
            let current = StageAssignment::uniform(40, 8);
            let request = BalanceRequest::new(&loads, 8, u64::MAX, BalanceObjective::ByTime)
                .with_current(&current);
            let incremental = DiffusionBalancer::new().rebalance(&request);
            let full = DiffusionBalancer {
                use_incremental_potential: false,
                ..DiffusionBalancer::new()
            }
            .rebalance(&request);
            assert_eq!(incremental.assignment, full.assignment, "seed {seed}");
            assert_eq!(incremental.rounds, full.rounds);
            assert_eq!(incremental.bottleneck.to_bits(), full.bottleneck.to_bits());
        }
    }

    #[test]
    fn balancer_name_is_stable() {
        assert_eq!(DiffusionBalancer::new().name(), "diffusion");
    }

    #[test]
    fn unit_speeds_are_bit_identical_to_the_homogeneous_path() {
        let times: Vec<f64> = (0..40)
            .map(|i| 0.25 + (((i as u64 + 1) * 2654435761) % 997) as f64 / 300.0)
            .collect();
        let loads = loads_from_times(&times);
        let current = StageAssignment::uniform(40, 8);
        let plain = BalanceRequest::new(&loads, 8, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current);
        let unit = plain.clone().with_stage_speeds(Some(vec![1.0; 8]));
        let a = DiffusionBalancer::new().rebalance(&plain);
        let b = DiffusionBalancer::new().rebalance(&unit);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.bottleneck.to_bits(), b.bottleneck.to_bits());
    }

    #[test]
    fn slow_stages_end_up_with_fewer_layers() {
        let loads = loads_from_times(&[1.0; 24]);
        let current = StageAssignment::uniform(24, 4);
        // Stage 3 runs at a quarter speed: diffusion should drain it.
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current)
            .with_stage_speeds(Some(vec![1.0, 1.0, 1.0, 0.25]));
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        assert_eq!(counts.iter().sum::<usize>(), 24);
        assert!(counts[3] < counts[0], "counts {counts:?}");
        // The time bottleneck beats the uniform split's slow stage (6
        // layers / 0.25 = 24).
        assert!(
            outcome.bottleneck < 24.0,
            "bottleneck {}",
            outcome.bottleneck
        );
    }

    #[test]
    fn per_stage_capacities_gate_diffusion_moves() {
        // Stage 1 is fast but tiny: diffusion may not overfill it.
        let mut loads = loads_from_times(&[1.0; 8]);
        for l in loads.iter_mut() {
            l.static_bytes = 1_000;
            l.activation_bytes = 0;
        }
        let current = StageAssignment::uniform(8, 2);
        let request = BalanceRequest::new(&loads, 2, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current)
            .with_inflight(vec![0, 0])
            .with_stage_speeds(Some(vec![1.0, 8.0]))
            .with_stage_capacities(Some(vec![u64::MAX, 5_000]));
        let outcome = DiffusionBalancer::new().rebalance(&request);
        let counts = outcome.assignment.counts();
        assert!(counts[1] <= 5, "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 8);
    }
}
